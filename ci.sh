#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Everything runs offline against the vendored dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "CI OK"
