#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Everything runs offline against the vendored dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench smoke (schema check, live epoch streaming on)"
bench_dir="$(mktemp -d)"
trap 'rm -rf "$bench_dir"' EXIT
cargo build --release -q -p rip-bench --bin repro
(cd "$bench_dir" && "$OLDPWD/target/release/repro" bench --quick --live-epochs > /dev/null)
for f in BENCH_sps_throughput.json BENCH_hbm_access.json BENCH_streaming_memory.json \
         BENCH_telemetry_overhead.json; do
  grep -o '"[a-z_0-9]*":' "$bench_dir/$f" | sort -u > "$bench_dir/$f.keys"
done
cat "$bench_dir"/BENCH_sps_throughput.json.keys "$bench_dir"/BENCH_hbm_access.json.keys \
  "$bench_dir"/BENCH_streaming_memory.json.keys \
  "$bench_dir"/BENCH_telemetry_overhead.json.keys \
  | sort -u > "$bench_dir/bench.keys"
diff -u tests/bench_schema_expected.txt "$bench_dir/bench.keys" \
  || { echo "BENCH_*.json schema drifted from tests/bench_schema_expected.txt"; exit 1; }
test -s "$bench_dir/BENCH_sps_epochs.jsonl" \
  || { echo "bench --live-epochs produced no BENCH_sps_epochs.jsonl"; exit 1; }

echo "==> streaming soak smoke (bounded in-flight memory + live epoch determinism)"
for d in soak_a soak_b; do
  mkdir "$bench_dir/$d"
  (cd "$bench_dir/$d" && "$OLDPWD/target/release/repro" soak --quick --live-epochs)
done
cmp "$bench_dir/soak_a/SOAK_epochs.jsonl" "$bench_dir/soak_b/SOAK_epochs.jsonl" \
  || { echo "same-seed live soak streams are not byte-identical"; exit 1; }

echo "CI OK"
