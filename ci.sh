#!/usr/bin/env bash
# Repository CI gate: formatting, lints, and the full test suite.
# Everything runs offline against the vendored dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench smoke (schema check, live epoch streaming on)"
bench_dir="$(mktemp -d)"
trap 'rm -rf "$bench_dir"' EXIT
cargo build --release -q -p rip-bench --bin repro --bin ripsim

# The sorted set of JSON keys a BENCH file emits — the schema contract
# pinned by tests/bench_schema_expected.txt.
bench_keys() {
  grep -o '"[a-z_0-9]*":' "$1" | sort -u
}

# scrape_metrics <port-file> <out-file> <required-regex>... — wait for
# the port file, then scrape the Prometheus endpoint with retries and
# exponential backoff (0.1 s doubling to a 1.6 s cap) until one
# response carries every required regex. A freshly bound endpoint or a
# family that appears only after the first epoch flush is a retry, not
# a flake.
scrape_metrics() {
  local port_file="$1" out="$2" port delay pat ok
  shift 2
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    sleep 0.1
  done
  test -s "$port_file" || return 1
  port="$(tr -d '[:space:]' < "$port_file")"
  delay=0.1
  for _ in $(seq 1 40); do
    if exec 3<>"/dev/tcp/127.0.0.1/$port" 2> /dev/null; then
      printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
      cat <&3 > "$out"
      exec 3<&- 3>&-
      ok=yes
      for pat in "$@"; do
        grep -q "$pat" "$out" || ok=""
      done
      if [ -n "$ok" ]; then
        return 0
      fi
    fi
    sleep "$delay"
    delay="$(awk -v d="$delay" 'BEGIN { printf "%.1f", (d * 2 > 1.6) ? 1.6 : d * 2 }')"
  done
  return 1
}

(cd "$bench_dir" && "$OLDPWD/target/release/repro" bench --quick --live-epochs > /dev/null)
# kernel-speed runs in full mode: the wheel-vs-heap ratio needs enough
# ops to amortize the wheel's initial cascade, and the regression gate
# below needs a stable number.
(cd "$bench_dir" && "$OLDPWD/target/release/repro" kernel-speed > /dev/null)
# parallel-speed also runs in full mode: it asserts byte-identical
# reports across engines and its speedup ratio feeds the gate below.
(cd "$bench_dir" && "$OLDPWD/target/release/repro" parallel-speed > /dev/null)
# fleet asserts the collector's merged stream is byte-identical to the
# single-process oracle across several worker partitionings.
(cd "$bench_dir" && "$OLDPWD/target/release/repro" fleet --quick > /dev/null)
# profile-overhead asserts byte-identical outputs with the profiler on
# and exits nonzero above 3% overhead; the gate below re-checks the
# emitted file so a stale artifact can never pass.
(cd "$bench_dir" && "$OLDPWD/target/release/repro" profile-overhead --quick > /dev/null)
for f in BENCH_sps_throughput.json BENCH_hbm_access.json BENCH_streaming_memory.json \
         BENCH_telemetry_overhead.json BENCH_kernel_speed.json BENCH_parallel_speed.json \
         BENCH_fleet_collector.json BENCH_profile_overhead.json; do
  bench_keys "$bench_dir/$f" > "$bench_dir/$f.keys"
done
cat "$bench_dir"/BENCH_sps_throughput.json.keys "$bench_dir"/BENCH_hbm_access.json.keys \
  "$bench_dir"/BENCH_streaming_memory.json.keys \
  "$bench_dir"/BENCH_telemetry_overhead.json.keys \
  "$bench_dir"/BENCH_kernel_speed.json.keys \
  "$bench_dir"/BENCH_parallel_speed.json.keys \
  "$bench_dir"/BENCH_fleet_collector.json.keys \
  "$bench_dir"/BENCH_profile_overhead.json.keys \
  | sort -u > "$bench_dir/bench.keys"
diff -u tests/bench_schema_expected.txt "$bench_dir/bench.keys" \
  || { echo "BENCH_*.json schema drifted from tests/bench_schema_expected.txt"; exit 1; }
test -s "$bench_dir/BENCH_sps_epochs.jsonl" \
  || { echo "bench --live-epochs produced no BENCH_sps_epochs.jsonl"; exit 1; }

echo "==> event-kernel speed gate (wheel vs heap, >10% regression fails)"
# The gated quantity is the dimensionless microkernel speedup ratio —
# absolute events/sec vary with the machine, the ratio does not. The
# committed baseline is a deliberately conservative measured run.
base_ratio="$(grep -o '"speedup_vs_heap": *[0-9.]*' tests/bench_kernel_speed_baseline.json \
  | grep -o '[0-9.]*$')"
cur_ratio="$(grep -o '"speedup_vs_heap": *[0-9.]*' "$bench_dir/BENCH_kernel_speed.json" \
  | grep -o '[0-9.]*$')"
test -n "$base_ratio" && test -n "$cur_ratio" \
  || { echo "kernel-speed ratio missing from bench or baseline"; exit 1; }
awk -v c="$cur_ratio" -v b="$base_ratio" 'BEGIN { exit !(c >= 0.9 * b) }' \
  || { echo "kernel speedup regressed: $cur_ratio vs baseline $base_ratio (>10% slowdown)"; exit 1; }
echo "kernel speedup_vs_heap $cur_ratio (baseline $base_ratio)"

echo "==> sharded-engine speed gate (vs sequential oracle, >10% regression fails)"
# Same shape as the kernel gate: the gated quantity is the 4-shard
# wall-clock ratio against the sequential engine. The committed
# baseline was measured on a single-core host (cores_available=1,
# recorded in the bench file), where the ratio captures coordination
# overhead under time-slicing — a conservative floor that a real
# serialization regression would still fall through.
base_par="$(grep -o '"speedup_sharded4": *[0-9.]*' tests/bench_parallel_speed_baseline.json \
  | grep -o '[0-9.]*$')"
cur_par="$(grep -o '"speedup_sharded4": *[0-9.]*' "$bench_dir/BENCH_parallel_speed.json" \
  | grep -o '[0-9.]*$')"
test -n "$base_par" && test -n "$cur_par" \
  || { echo "parallel-speed ratio missing from bench or baseline"; exit 1; }
awk -v c="$cur_par" -v b="$base_par" 'BEGIN { exit !(c >= 0.9 * b) }' \
  || { echo "sharded-engine speedup regressed: $cur_par vs baseline $base_par (>10% slowdown)"; exit 1; }
echo "sharded speedup_sharded4 $cur_par (baseline $base_par)"

echo "==> self-profiler overhead gate (<3%, outputs byte-identical)"
grep -q '"byte_identical": true' "$bench_dir/BENCH_profile_overhead.json" \
  || { echo "profiler changed a deterministic output"; exit 1; }
prof_frac="$(grep -o '"overhead_frac": *[-0-9.e]*' "$bench_dir/BENCH_profile_overhead.json" \
  | grep -o '[-0-9.e]*$')"
test -n "$prof_frac" || { echo "overhead_frac missing from BENCH_profile_overhead.json"; exit 1; }
awk -v o="$prof_frac" 'BEGIN { exit !(o < 0.03) }' \
  || { echo "self-profiler overhead $prof_frac is at or above the 3% budget"; exit 1; }
echo "profiler overhead_frac $prof_frac (budget < 0.03)"

echo "==> kernel + engine equivalence suite (engines x kernels, byte-identical outputs)"
cargo test --release -q -p rip-integration-tests --test kernel_equivalence \
  || { echo "kernel/engine equivalence suite failed"; exit 1; }

echo "==> streaming soak smoke (bounded in-flight memory + live epoch determinism)"
for d in soak_a soak_b; do
  mkdir "$bench_dir/$d"
  (cd "$bench_dir/$d" && "$OLDPWD/target/release/repro" soak --quick --live-epochs)
done
cmp "$bench_dir/soak_a/SOAK_epochs.jsonl" "$bench_dir/soak_b/SOAK_epochs.jsonl" \
  || { echo "same-seed live soak streams are not byte-identical"; exit 1; }

echo "==> chrome trace export (same-seed byte identity)"
target/release/ripsim trace --chrome "$bench_dir/trace_a.json" configs/soak_live.json 2> /dev/null
target/release/ripsim trace --chrome "$bench_dir/trace_b.json" configs/soak_live.json 2> /dev/null
cmp "$bench_dir/trace_a.json" "$bench_dir/trace_b.json" \
  || { echo "same-seed chrome trace exports are not byte-identical"; exit 1; }
grep -q '"ph":"X"' "$bench_dir/trace_a.json" \
  || { echo "chrome trace export carries no duration events"; exit 1; }
grep -q '"name":"ch00/b00"' "$bench_dir/trace_a.json" \
  || { echo "chrome trace export carries no per-bank HBM tracks"; exit 1; }

echo "==> metrics endpoint smoke (live scrape during soak, profiler on)"
target/release/ripsim soak configs/soak_live.json --profile \
  --metrics 127.0.0.1:0 --metrics-port-file "$bench_dir/metrics.port" \
  --metrics-hold-ms 8000 \
  > "$bench_dir/soak_live.jsonl" 2> "$bench_dir/soak_live.log" &
soak_pid=$!
scrape_metrics "$bench_dir/metrics.port" "$bench_dir/scrape.txt" \
  '^rip_switch_packets_delivered_total{source="switch"} [0-9]' \
  '^ripsim_profile_phase_seconds_total{source="engine"' \
  || true # asserted below, after the soak is reaped
wait "$soak_pid" || { echo "healthy live soak exited nonzero"; exit 1; }
grep -q '^rip_switch_packets_delivered_total{source="switch"} [0-9]' "$bench_dir/scrape.txt" \
  || { echo "metrics scrape never returned switch totals"; exit 1; }
# The profiler's wall-clock families ride the same endpoint, on their
# own ripsim_profile_* names.
grep -q '^ripsim_profile_phase_seconds_total{source="engine"' "$bench_dir/scrape.txt" \
  || { echo "metrics scrape carries no ripsim_profile_* families"; exit 1; }
grep -q '^ripsim_profile_records_total{source="engine"} [0-9]' "$bench_dir/scrape.txt" \
  || { echo "metrics scrape is missing ripsim_profile_records_total"; exit 1; }
# Exposition grammar spot-checks: HELP and TYPE exactly once per family.
grep -q '^# HELP rip_switch_packets_delivered_total ' "$bench_dir/scrape.txt" \
  || { echo "scrape is missing HELP lines"; exit 1; }
test "$(grep -c '^# TYPE rip_switch_packets_delivered_total counter$' "$bench_dir/scrape.txt")" = 1 \
  || { echo "scrape repeats TYPE for a family"; exit 1; }
test "$(grep -c '^# TYPE ripsim_profile_phase_seconds_total counter$' "$bench_dir/scrape.txt")" = 1 \
  || { echo "scrape repeats TYPE for the profile family"; exit 1; }
grep -q 'le="+Inf"' "$bench_dir/scrape.txt" \
  || { echo "scrape is missing histogram +Inf buckets"; exit 1; }

echo "==> SLO watchdog smoke (injected channel fault must fail the soak)"
if target/release/ripsim soak configs/soak_live.json --inject-channel-fault 0 \
     > /dev/null 2> "$bench_dir/soak_fault.log"; then
  echo "fault-injected soak unexpectedly exited zero"; exit 1
fi
grep -q 'DegradedCapacity' "$bench_dir/soak_fault.log" \
  || { echo "fault-injected soak fired no degraded-capacity watchdog"; exit 1; }

echo "==> flight recorder smoke (watchdog trip dumps a parseable bundle)"
mkdir "$bench_dir/flight"
if target/release/ripsim soak configs/soak_live.json --inject-channel-fault 0 \
     --profile --flight-dir "$bench_dir/flight" \
     > /dev/null 2> "$bench_dir/flight_fault.log"; then
  echo "fault-injected soak with flight recorder unexpectedly exited zero"; exit 1
fi
test -f "$bench_dir/flight/flight_watchdog.json" \
  || { echo "watchdog trip left no flight_watchdog.json"; exit 1; }
target/release/ripsim flight-check "$bench_dir/flight/flight_watchdog.json" \
  || { echo "flight bundle failed validation"; exit 1; }

echo "==> checkpoint/resume smoke (SIGKILL mid-soak, byte-identical continuation)"
target/release/ripsim soak configs/soak_ckpt.json \
  > "$bench_dir/ckpt_base.jsonl" 2> /dev/null
# 2-shard soak smoke: the sharded engine must stream the byte-identical
# JSONL the sequential baseline just produced.
target/release/ripsim soak configs/soak_ckpt.json --threads 2 \
  > "$bench_dir/ckpt_sharded.jsonl" 2> /dev/null \
  || { echo "2-shard soak smoke exited nonzero"; exit 1; }
cmp "$bench_dir/ckpt_sharded.jsonl" "$bench_dir/ckpt_base.jsonl" \
  || { echo "2-shard soak stream is not byte-identical to the sequential one"; exit 1; }
# Checkpointing under the sharded engine must be refused with the typed
# error — never a silently wrong resume.
if target/release/ripsim soak configs/soak_ckpt.json --threads 2 --checkpoint-every 25 \
     > /dev/null 2> "$bench_dir/ckpt_sharded_reject.log"; then
  echo "sharded checkpointed soak unexpectedly exited zero"; exit 1
fi
grep -q 'requires the sequential engine' "$bench_dir/ckpt_sharded_reject.log" \
  || { echo "sharded checkpoint produced no typed rejection"; exit 1; }
snap="$bench_dir/soak.snapshot"
target/release/ripsim soak configs/soak_ckpt.json \
  --checkpoint-every 25 --checkpoint-path "$snap" \
  > "$bench_dir/ckpt_part1.jsonl" 2> /dev/null &
ckpt_pid=$!
for _ in $(seq 1 2000); do
  [ -f "$snap" ] && break
  sleep 0.01
done
sleep 0.3
kill -9 "$ckpt_pid" 2> /dev/null || true
wait "$ckpt_pid" 2> /dev/null || true
test -f "$snap" || { echo "checkpointing soak wrote no snapshot"; exit 1; }
target/release/ripsim soak configs/soak_ckpt.json --resume "$snap" \
  > "$bench_dir/ckpt_part2.jsonl" 2> "$bench_dir/ckpt_resume.log" \
  || { echo "resume from snapshot failed"; exit 1; }
keep="$(grep -o 'keep_lines=[0-9]*' "$bench_dir/ckpt_resume.log" | cut -d= -f2)"
test -n "$keep" || { echo "resume reported no keep_lines"; exit 1; }
head -n "$keep" "$bench_dir/ckpt_part1.jsonl" \
  | cat - "$bench_dir/ckpt_part2.jsonl" > "$bench_dir/ckpt_merged.jsonl"
cmp "$bench_dir/ckpt_merged.jsonl" "$bench_dir/ckpt_base.jsonl" \
  || { echo "killed-and-resumed soak stream is not byte-identical"; exit 1; }
# A truncated snapshot (with no .prev fallback) must be rejected cleanly.
head -c 512 "$snap" > "$bench_dir/trunc.snapshot"
if target/release/ripsim soak configs/soak_ckpt.json \
     --resume "$bench_dir/trunc.snapshot" \
     > /dev/null 2> "$bench_dir/ckpt_trunc.log"; then
  echo "resume from a truncated snapshot unexpectedly exited zero"; exit 1
fi
grep -q 'truncated' "$bench_dir/ckpt_trunc.log" \
  || { echo "truncated snapshot produced no typed error"; exit 1; }

echo "==> fleet collector smoke (2 plane workers over TCP, byte-identical merge, profiler on)"
target/release/ripsim collect configs/fleet_small.json --oracle \
  > "$bench_dir/fleet_oracle.jsonl" 2> /dev/null \
  || { echo "fleet oracle run failed"; exit 1; }
target/release/ripsim collect configs/fleet_small.json --profile \
  --listen 127.0.0.1:0 --port-file "$bench_dir/fleet.port" \
  --timeout-ms 60000 \
  --metrics 127.0.0.1:0 --metrics-port-file "$bench_dir/fleet_metrics.port" \
  --metrics-hold-ms 8000 \
  > "$bench_dir/fleet_merged.jsonl" 2> "$bench_dir/fleet_collect.log" &
collect_pid=$!
for _ in $(seq 1 100); do
  [ -s "$bench_dir/fleet.port" ] && break
  sleep 0.1
done
test -s "$bench_dir/fleet.port" || { echo "collector never published its port"; exit 1; }
fleet_port="$(tr -d '[:space:]' < "$bench_dir/fleet.port")"
target/release/ripsim plane-worker configs/fleet_small.json --profile \
  --worker 0 --planes 0,2 --connect "127.0.0.1:$fleet_port" 2> /dev/null &
w0_pid=$!
target/release/ripsim plane-worker configs/fleet_small.json --profile \
  --worker 1 --planes 1,3 --connect "127.0.0.1:$fleet_port" 2> /dev/null &
w1_pid=$!
wait "$w0_pid" || { echo "plane worker 0 exited nonzero"; exit 1; }
wait "$w1_pid" || { echo "plane worker 1 exited nonzero"; exit 1; }
# Scrape the fleet endpoint while the collector holds it open: the
# merged families must carry per-plane source labels, the
# ripsim_build_info / uptime preamble, and — with --profile on both
# ends — the collector's own phases plus the worker records it merged
# under their w<NN>/ source prefix.
scrape_metrics "$bench_dir/fleet_metrics.port" "$bench_dir/fleet_scrape.txt" \
  'source="plane00"' \
  '^ripsim_profile_phase_seconds_total{source="collect"' \
  '^ripsim_profile_records_total{source="w00/plane00"} [0-9]' \
  || true # asserted below, after the collector is reaped
wait "$collect_pid" || { echo "fleet collector exited nonzero"; exit 1; }
grep -q 'source="plane00"' "$bench_dir/fleet_scrape.txt" \
  || { echo "fleet scrape never returned per-plane families"; exit 1; }
grep -q '^ripsim_build_info{version="' "$bench_dir/fleet_scrape.txt" \
  || { echo "fleet scrape is missing ripsim_build_info"; exit 1; }
grep -q '^ripsim_uptime_seconds ' "$bench_dir/fleet_scrape.txt" \
  || { echo "fleet scrape is missing ripsim_uptime_seconds"; exit 1; }
grep -q '^ripsim_profile_phase_seconds_total{source="collect"' "$bench_dir/fleet_scrape.txt" \
  || { echo "fleet scrape carries no collector profile phases"; exit 1; }
grep -q '^ripsim_profile_records_total{source="w00/plane00"} [0-9]' "$bench_dir/fleet_scrape.txt" \
  || { echo "fleet scrape carries no merged per-worker profile records"; exit 1; }
cmp "$bench_dir/fleet_merged.jsonl" "$bench_dir/fleet_oracle.jsonl" \
  || { echo "fleet merged stream is not byte-identical to the single-process oracle"; exit 1; }

echo "==> fleet killed-worker smoke (typed watchdog event, nonzero exit, no hang)"
target/release/ripsim plane-worker configs/fleet_small.json \
  --worker 5 --planes 0,1,2,3 --out "$bench_dir/fleet_w5.bin" 2> /dev/null \
  || { echo "file-mode plane worker failed"; exit 1; }
w5_bytes="$(wc -c < "$bench_dir/fleet_w5.bin")"
head -c "$((w5_bytes / 2))" "$bench_dir/fleet_w5.bin" > "$bench_dir/fleet_w5_cut.bin"
if target/release/ripsim collect configs/fleet_small.json \
     --from "$bench_dir/fleet_w5_cut.bin" \
     > "$bench_dir/fleet_cut.jsonl" 2> "$bench_dir/fleet_cut.log"; then
  echo "collector on a killed worker stream unexpectedly exited zero"; exit 1
fi
grep -q 'worker 5 lost' "$bench_dir/fleet_cut.log" \
  || { echo "killed worker raised no typed collector error"; exit 1; }
grep -q 'WorkerLost' "$bench_dir/fleet_cut.jsonl" \
  || { echo "killed worker emitted no WorkerLost watchdog record"; exit 1; }

echo "CI OK"
