//! Walk the §2.1 design space (Designs 1–4) with the same measuring
//! stick: guaranteed throughput, OEO conversions, and conversion power
//! at the reference package's 1.31 Pb/s of I/O — the argument that
//! leads the paper to the Split-Parallel Switch.
//!
//! ```text
//! cargo run -p rip-examples --bin design_space
//! ```

use rip_analysis::constants;
use rip_baselines::{CentralizedSwitch, DesignPoint, MeshFabric};
use rip_traffic::Packet;
use rip_units::{DataRate, DataSize, SimTime};

fn main() {
    let total_io = DataRate::from_bps(1_310_720_000_000_000);
    println!("design space at {} of package I/O\n", total_io);

    for design in [
        DesignPoint::Centralized,
        DesignPoint::Mesh { k: 10 },
        DesignPoint::ThreeStage,
        DesignPoint::Sps,
    ] {
        println!("{}", design.name());
        println!(
            "  guaranteed throughput : {:.0}%",
            design.guaranteed_throughput() * 100.0
        );
        println!(
            "  OEO conversions/packet: {:.2}  ->  {} of conversion power",
            design.oeo_conversions(),
            design.oeo_power(total_io, constants::oeo_energy())
        );
        match design {
            DesignPoint::Centralized => {
                // Challenge 1, demonstrated: a centralized switch whose
                // memory covers only half the needed rate saturates.
                let mut sw =
                    CentralizedSwitch::new(DataRate::from_gbps(100), DataSize::from_kib(64));
                let trace: Vec<Packet> = (0..20_000u64)
                    .map(|i| {
                        Packet::new(
                            i,
                            (i % 16) as usize,
                            ((i + 1) % 16) as usize,
                            DataSize::from_bytes(1000),
                            SimTime::from_ns(i * 100), // 80 Gb/s offered
                        )
                    })
                    .collect();
                let r = sw.run(&trace);
                println!(
                    "  demo: offered {} -> delivered {} ({:.0}% loss at a rate cap of {})",
                    r.offered_rate,
                    r.delivered_rate,
                    r.loss_fraction * 100.0,
                    sw.capacity()
                );
            }
            DesignPoint::Mesh { k } => {
                let mesh = MeshFabric::new(k, 1.0);
                let tm = mesh.bisection_tm();
                println!(
                    "  demo: adversarial admissible TM sustains {:.0}% (bound {:.0}%), \
                     {:.0}% of work is pass-through",
                    mesh.throughput_factor(&tm) * 100.0,
                    mesh.worst_case_bound() * 100.0,
                    mesh.pass_through_fraction() * 100.0
                );
            }
            DesignPoint::ThreeStage => {
                println!(
                    "  demo: full throughput, but every packet pays 3 OEO stages and \
                     per-packet load balancing + reordering buffers"
                );
            }
            DesignPoint::Sps => {
                println!(
                    "  demo: one OEO stage, no per-packet balancing; see `core_router` \
                     and `quickstart` for the running switch"
                );
            }
        }
        println!();
    }
}
