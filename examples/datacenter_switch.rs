//! Datacenter-switch variant (§5 "Designing datacenter switches"):
//! latency matters more than buffering, so the HBM switch is rebuilt
//! with smaller frames (narrower channel stripes) — and this example
//! measures the latency difference on the packet-level simulator, next
//! to the closed-form sweep.
//!
//! ```text
//! cargo run -p rip-examples --bin datacenter_switch
//! ```

use rip_analysis::datacenter;
use rip_core::{HbmSwitch, RouterConfig};
use rip_traffic::{
    merge_streams, ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::{DataRate, DataSize, SimTime};

fn trace(cfg: &RouterConfig, load: f64, horizon: SimTime, seed: u64) -> Vec<rip_traffic::Packet> {
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let streams: Vec<_> = (0..cfg.ribbons)
        .map(|port| {
            let mut g = PacketGenerator::new(
                port,
                cfg.port_rate(),
                load,
                tm.row(port).to_vec(),
                SizeDistribution::Fixed(DataSize::from_bytes(1500)),
                ArrivalProcess::Poisson,
                256,
                seed + port as u64,
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    merge_streams(streams)
}

fn run_variant(name: &str, cfg: RouterConfig, load: f64) {
    let horizon = SimTime::from_ns(120_000);
    let t = trace(&cfg, load, horizon, 99);
    let sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    let r = sw.run(&t, SimTime::from_ns(900_000));
    println!(
        "{name}: frame {} | mean delay {:.2} us | p99 {:.2} us | delivered {:.2}% | HBM util {:.0}%",
        cfg.frame_size(),
        r.delays_ns.mean().unwrap_or(0.0) / 1e3,
        r.delays_ns.quantile(0.99).unwrap_or(0.0) / 1e3,
        r.delivery_fraction * 100.0,
        r.hbm_utilization * 100.0
    );
}

fn main() {
    println!("--- closed-form frame-size sweep (reference design, 50% load) ---");
    for row in datacenter::sweep(
        128,
        4,
        DataSize::from_kib(1),
        DataRate::from_gbps(2560),
        0.5,
    )
    .iter()
    .take(5)
    {
        println!(
            "stripe {:>3} channels -> frame {:>8} : fill {} + drain {} = {}",
            row.stripe_channels,
            format!("{}", row.frame),
            row.fill_latency,
            row.drain_latency,
            row.total_latency
        );
    }
    let floor = datacenter::min_frame(
        128,
        DataRate::from_gbps(640),
        rip_units::TimeDelta::from_ns(30),
    );
    println!("(full-stripe frame floor at peak rate: {floor})\n");

    println!("--- measured on the packet-level simulator, 60% load ---");
    // WAN-style switch: 8 channels -> K = 32 KiB frames.
    let wan = RouterConfig::small();
    run_variant("WAN   (K = 32 KiB)", wan, 0.6);

    // Datacenter variant: stripe frames over half the channels
    // (T' = 4) -> K = 16 KiB frames at the same port rate; the two
    // channel subsets serve disjoint output sets concurrently, so the
    // memory still covers 2NP in aggregate.
    let mut dc = RouterConfig::small();
    dc.stripe_channels = Some(4);
    dc.validate().expect("valid datacenter variant");
    run_variant("DC    (K = 16 KiB)", dc, 0.6);

    // And quarter-width stripes: K = 8 KiB.
    let mut dc2 = RouterConfig::small();
    dc2.stripe_channels = Some(2);
    dc2.validate().expect("valid datacenter variant");
    run_variant("DC    (K =  8 KiB)", dc2, 0.6);

    println!(
        "\nsmaller frames fill and drain faster at the same load - the §5 trade \
         (radix and buffering shrink with them)."
    );
}
