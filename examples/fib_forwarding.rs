//! Forwarding-plane scenario (§3.2 ➀): the processing chiplet's
//! destination lookup. Generates a core-BGP-like synthetic RIB, compiles
//! it into a linecard-style stride table, routes a packet trace by
//! destination address, and runs the routed trace through the HBM
//! switch.
//!
//! ```text
//! cargo run -p rip-examples --bin fib_forwarding
//! ```

use rip_core::{HbmSwitch, RouterConfig};
use rip_fib::{assign_outputs, SyntheticRib};
use rip_traffic::{
    merge_streams, ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::SimTime;

fn main() {
    let cfg = RouterConfig::small();

    // A synthetic core table: 100k routes over the N egress ribbons.
    let rib = SyntheticRib::generate(100_000, cfg.ribbons, 2026);
    let trie = rib.trie();
    // The classic hardware configuration: DIR-24-8 (16M-entry first
    // level, 256-entry chunks).
    let table = rib.stride_table(24);
    println!(
        "RIB: {} routes over {} outputs; trie nodes: {}; DIR-24-8 table: {} MiB, {} L2 chunks",
        rib.len(),
        rib.outputs(),
        trie.node_count(),
        table.memory_bytes() / (1024 * 1024),
        table.level2_tables()
    );

    // Generate traffic whose destinations are real addresses; the TM
    // row only shapes per-port load here, outputs come from the FIB.
    let horizon = SimTime::from_ns(100_000);
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let streams: Vec<_> = (0..cfg.ribbons)
        .map(|port| {
            let mut g = PacketGenerator::new(
                port,
                cfg.port_rate(),
                0.7,
                tm.row(port).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                512,
                99 + port as u64,
            )
            .expect("valid generator");
            g.generate_until(horizon)
        })
        .collect();
    let raw = merge_streams(streams);
    let routed = assign_outputs(&raw, &table);
    println!("trace: {} packets routed by LPM", routed.len());

    // Per-output demand after routing (FIB-driven skew).
    let mut per_output = vec![0u64; cfg.ribbons];
    for p in &routed {
        per_output[p.output] += p.size.bytes();
    }
    let total: u64 = per_output.iter().sum();
    for (o, b) in per_output.iter().enumerate() {
        println!(
            "  output {o}: {:5.1}% of bytes",
            *b as f64 / total as f64 * 100.0
        );
    }

    // Spot-check: stride table vs trie agree on this trace.
    let disagreements = routed
        .iter()
        .filter(|p| trie.lookup(p.flow.dst_ip).map(|(_, h)| h as usize) != Some(p.output))
        .count();
    assert_eq!(disagreements, 0, "trie and stride table must agree");

    let sw = HbmSwitch::new(cfg).expect("valid config");
    let r = sw.run(&routed, SimTime::from_ns(500_000));
    println!(
        "\nswitch run: delivered {:.2}% ({} packets), mean delay {:.2} us",
        r.delivery_fraction * 100.0,
        r.delivered_packets,
        r.delays_ns.mean().unwrap_or(0.0) / 1e3
    );
}
