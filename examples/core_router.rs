//! Core-router scenario: the full Split-Parallel Switch under the
//! workload §2.1 worries about — incrementally provisioned ribbons
//! where the first fibers carry most of the load — comparing the naive
//! sequential split against the paper's pseudo-random split, and
//! printing the reference package's headline figures.
//!
//! ```text
//! cargo run -p rip-examples --bin core_router
//! ```

use rip_analysis::{buffering, power};
use rip_core::{RouterConfig, SpsRouter, SpsWorkload};
use rip_photonics::SplitPattern;
use rip_traffic::FiberFill;
use rip_units::SimTime;

fn main() {
    let cfg = RouterConfig::small();
    println!(
        "SPS router: {} ribbons x {} fibers, {} HBM switches (alpha = {})",
        cfg.ribbons,
        cfg.fibers_per_ribbon,
        cfg.switches,
        cfg.alpha()
    );

    // Incremental provisioning: only the first quarter of each ribbon's
    // fibers is lit, all near line rate. Offered load per ribbon is
    // moderate; the *placement* is what stresses the split.
    let mut workload = SpsWorkload::uniform(cfg.ribbons, 0.22, 7);
    workload.fill = FiberFill::FirstFilled {
        used: cfg.fibers_per_ribbon / 4,
    };
    let horizon = SimTime::from_ns(100_000);

    for (name, pattern) in [
        ("sequential split", SplitPattern::Sequential),
        ("striped split", SplitPattern::Striped),
        (
            "pseudo-random split",
            SplitPattern::PseudoRandom { seed: 2026 },
        ),
    ] {
        let router = SpsRouter::new(cfg.clone(), pattern).expect("valid router");
        let fluid = router.fluid_loads(&workload);
        let max_load = fluid.iter().flatten().cloned().fold(0.0, f64::max);
        let report = router.run(&workload, horizon);
        println!(
            "\n[{name}]\n  peak per-switch output load (fluid): {max_load:.3}\n  \
             measured loss: {:.3}%  |  per-switch offered imbalance: {:.2}x",
            report.loss_fraction * 100.0,
            report.load_imbalance
        );
        for (i, s) in report.switches.iter().enumerate() {
            println!(
                "  switch {i}: offered {} delivered {} dropped {}",
                s.offered, s.delivered, s.dropped
            );
        }
    }

    // The reference package this scales up to (§2.2/§4).
    let reference = RouterConfig::reference();
    println!("\n--- reference package (paper §2.2/§4) ---");
    println!("total I/O          : {}", reference.total_io());
    println!("per-switch memory  : {}", reference.per_switch_memory_io());
    let b = buffering::reference();
    println!(
        "buffering          : {} ({:.1} ms at full ingress)",
        b.total, b.milliseconds
    );
    let p = power::reference();
    println!(
        "power              : {} per switch, {} total ({:.2}x Cerebras WSE-3)",
        p.per_switch.total(),
        p.total(),
        p.vs_cerebras()
    );
}
