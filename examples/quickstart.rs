//! Quickstart: simulate one HBM switch on a uniform workload and print
//! its report.
//!
//! ```text
//! cargo run -p rip-examples --bin quickstart
//! ```

use rip_core::{HbmSwitch, RouterConfig};
use rip_traffic::{
    merge_streams, ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::SimTime;

fn main() {
    // A ratio-preserving scaled-down configuration: N = 4 ports of
    // 640 Gb/s, one 8-channel HBM stack (2·N·P of memory bandwidth),
    // gamma = 4, S = 1 KiB, k = 1 KiB batches, K = 32 KiB frames.
    let cfg = RouterConfig::small();
    println!("HBM switch: {} ports x {}", cfg.ribbons, cfg.port_rate());
    println!(
        "memory: {} channels, peak {}, frame {}",
        cfg.channels(),
        cfg.hbm_peak(),
        cfg.frame_size()
    );

    // 80% offered load, uniform destinations, IMIX sizes, Poisson
    // arrivals, for 200 us of simulated time.
    let horizon = SimTime::from_ns(200_000);
    let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
    let streams: Vec<_> = (0..cfg.ribbons)
        .map(|port| {
            let mut generator = PacketGenerator::new(
                port,
                cfg.port_rate(),
                0.8,
                tm.row(port).to_vec(),
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                256,
                42 + port as u64,
            )
            .expect("valid generator");
            generator.generate_until(horizon)
        })
        .collect();
    let trace = merge_streams(streams);
    println!("offered: {} packets", trace.len());

    let switch = HbmSwitch::new(cfg).expect("valid config");
    let report = switch.run(&trace, SimTime::from_ns(800_000));

    println!("\n--- report ---");
    println!("delivered packets : {}", report.delivered_packets);
    println!(
        "delivery fraction : {:.3}%",
        report.delivery_fraction * 100.0
    );
    println!("delivered rate    : {}", report.delivered_rate);
    println!(
        "drops (input/HBM) : {}/{}",
        report.dropped_input, report.dropped_frames
    );
    println!("HBM utilization   : {:.1}%", report.hbm_utilization * 100.0);
    println!(
        "delay mean/p99    : {:.2} us / {:.2} us",
        report.delays_ns.mean().unwrap_or(0.0) / 1e3,
        report.delays_ns.quantile(0.99).unwrap_or(0.0) / 1e3
    );
    println!(
        "SRAM peaks        : input {} | tail {} | head {}",
        report.input_peak, report.tail_peak, report.head_peak
    );
    println!("egress lane CV    : {:.3}", report.lane_spread_cv);
}
