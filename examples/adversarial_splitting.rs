//! Adversarial-splitting scenario (§2.1 Challenge 4(2)): an attacker
//! who knows the package geometry tries to overload one internal HBM
//! switch by loading exactly the fibers spliced to it. The
//! manufacturing-time pseudo-random split defeats the attack.
//!
//! ```text
//! cargo run -p rip-examples --bin adversarial_splitting
//! ```

use rip_core::RouterConfig;
use rip_photonics::{SplitMap, SplitPattern};
use rip_traffic::Attacker;

fn main() {
    let cfg = RouterConfig::reference();
    let (n, f, h) = (cfg.ribbons, cfg.fibers_per_ribbon, cfg.switches);
    println!("package geometry: N = {n} ribbons x F = {f} fibers over H = {h} switches");

    // The attacker can muster half of the victim-reachable fiber
    // capacity: 32 fully loaded fibers' worth of traffic.
    let attacker = Attacker::new(32.0);
    println!("attacker budget: 32 fiber-loads, victim: internal switch 0\n");

    let secret =
        SplitMap::new(n, f, h, SplitPattern::PseudoRandom { seed: 0xC0FFEE }).expect("valid split");
    let sequential = SplitMap::new(n, f, h, SplitPattern::Sequential).expect("valid split");
    let guessed =
        SplitMap::new(n, f, h, SplitPattern::PseudoRandom { seed: 0xDEAD }).expect("valid split");

    let scenarios: [(&str, &SplitMap, &SplitMap); 3] = [
        (
            "router built with the SEQUENTIAL split; attacker reads it off the datasheet",
            &sequential,
            &sequential,
        ),
        (
            "router built with a SECRET pseudo-random split; attacker assumes sequential",
            &sequential,
            &secret,
        ),
        (
            "router built with a SECRET pseudo-random split; attacker guesses a seed",
            &guessed,
            &secret,
        ),
    ];
    for (story, believed, truth) in scenarios {
        let outcome = attacker.evaluate(believed, truth, 0);
        println!("{story}:");
        println!(
            "  victim switch load: {:.2} fiber-loads (fair share would be {:.2})",
            outcome.victim_load,
            outcome.total_delivered / h as f64
        );
        println!(
            "  concentration achieved: {:.2}x  ({})\n",
            outcome.concentration,
            if outcome.concentration > h as f64 * 0.8 {
                "attack succeeds - switch overloaded"
            } else {
                "attack diffused across the package"
            }
        );
    }
    println!(
        "conclusion: with a pseudo-random split the attacker's {:.0} fiber-loads land \
         ~uniformly over {h} switches - the paper's Idea 4.",
        attacker.budget
    );
}
