//! Closed-form reproduction of the paper's design analysis (§2.1, §3.1,
//! §4, §5).
//!
//! Every number in the paper's prose is regenerated here from the cited
//! constants ([`constants`]) and first-principles arithmetic:
//!
//! * [`random_access`] — the 2.6× / 39× / 1,250× throughput-reduction
//!   factors of worst-case random DRAM access (§3.1 Challenge 6),
//!   cross-checked against the device simulator in the integration
//!   tests;
//! * [`buffering`] — 4.096 TB ⇒ ≈51.2 ms of buffering, vs the Van
//!   Jacobson, Stanford and Cisco sizing rules (§4);
//! * [`sram`] — the ≈14.5 MB SRAM budget, with worst-case and expected
//!   occupancy breakdowns (§4);
//! * [`power`] — 400 W + 300 W + 94 W = 794 W per HBM switch, 12.7 kW
//!   per router, vs the Cerebras WSE-3 (§4), plus the §5 power shares;
//! * [`area`] — 1,284 mm² per switch, 20,544 mm² per router, <10 % of a
//!   panel substrate (§4);
//! * [`capacity`] — the ≥50× capacity-per-space advantage over a Cisco
//!   8201-32FH (§5);
//! * [`roadmap`] — the §5 projections for future HBM (4×) and
//!   monolithic-3D memory (10×);
//! * [`datacenter`] — the §5 small-frame latency/granularity trade for
//!   datacenter switches;
//! * [`internal_traffic`] — the §5 WAN capacity wasted on
//!   interconnecting smaller routers, removed by a single package;
//! * [`modularity`] — the §2.2 option of shipping the same design as 1,
//!   4 or 16 packages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod buffering;
pub mod capacity;
pub mod constants;
pub mod datacenter;
pub mod internal_traffic;
pub mod modularity;
pub mod power;
pub mod random_access;
pub mod roadmap;
pub mod sram;
