//! The industry datapoints the paper's §4/§5 arithmetic cites.
//!
//! Each constant carries the paper's own citation so the provenance of
//! every reproduced number is auditable.

use rip_units::{Area, DataRate, DataSize, Energy, Power};

/// Broadcom Tomahawk 5 (BCM78900) switch chip — the paper's processing
/// power/area yardstick (\[8, 9\] in the paper).
pub mod tomahawk5 {
    use super::*;

    /// Switching capacity: 51.2 Tb/s.
    pub fn capacity() -> DataRate {
        DataRate::from_gbps(51_200)
    }

    /// Power dissipation: 500 W.
    pub fn power() -> Power {
        Power::from_watts(500.0)
    }

    /// Estimated die size: 800 mm².
    pub fn die_area() -> Area {
        Area::from_mm2(800.0)
    }
}

/// HBM4 stack datapoints (\[3, 19, 27, 34, 39, 52, 58, 65\]).
pub mod hbm4 {
    use super::*;

    /// Bandwidth per stack: 2,048 bits × 10 Gb/s = 20.48 Tb/s.
    pub fn bandwidth() -> DataRate {
        DataRate::from_gbps(20_480)
    }

    /// Capacity per stack: 64 GB.
    pub fn capacity() -> DataSize {
        DataSize::from_gib(64)
    }

    /// Power per stack: ≈75 W (\[52\]).
    pub fn power() -> Power {
        Power::from_watts(75.0)
    }

    /// Footprint: 11 mm × 11 mm (\[21\]).
    pub fn footprint() -> Area {
        Area::from_rect_mm(11.0, 11.0)
    }

    /// Worst-case random-access overhead (activate + precharge): ≈30 ns
    /// (\[34\]).
    pub fn random_access_overhead_ns() -> f64 {
        30.0
    }

    /// One channel: 64 bits at 10 Gb/s/bit = 80 GB/s.
    pub fn channel_rate() -> DataRate {
        DataRate::from_gbps(640)
    }
}

/// Silicon-photonics OEO conversion energy: ≈1.15 pJ/bit
/// (\[16–18, 20, 25, 49\]).
pub fn oeo_energy() -> Energy {
    Energy::from_pj_per_bit(1.15)
}

/// Cerebras WSE-3 wafer-scale processor: 23 kW, with deployed
/// liquid/air cooling (\[36, 41, 51\]).
pub fn cerebras_wse3_power() -> Power {
    Power::from_kw(23.0)
}

/// Panel-scale glass substrate: 500 mm × 500 mm (\[28\]).
pub fn panel_area() -> Area {
    Area::from_rect_mm(500.0, 500.0)
}

/// Cisco 8201-32FH: 32 × 400 Gb/s = 12.8 Tb/s in 1 RU, ≈5 ms of
/// buffering (\[13, 63, 64\]).
pub mod cisco_8201 {
    use super::*;

    /// Aggregate input bandwidth.
    pub fn capacity() -> DataRate {
        DataRate::from_gbps(12_800)
    }

    /// Buffering depth in milliseconds.
    pub fn buffer_ms() -> f64 {
        5.0
    }
}

/// Cisco linecard buffering datapoints (\[63, 64\]).
pub mod cisco_linecards {
    /// Q100-based 400G linecard: up to 18 ms.
    pub const Q100_MS: f64 = 18.0;
    /// Q200-based 400G linecard: up to 13 ms.
    pub const Q200_MS: f64 = 13.0;
    /// Cisco white-paper recommendation for core routers: 5–10 ms.
    pub const RECOMMENDED_RANGE_MS: (f64, f64) = (5.0, 10.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tomahawk_ratio_gives_paper_processing_power() {
        // 500 W x (40.96 / 51.2) = 400 W.
        let per_switch_ingress = DataRate::from_gbps(40_960);
        let p = tomahawk5::power() * per_switch_ingress.fraction_of(tomahawk5::capacity());
        assert!((p.watts() - 400.0).abs() < 0.5, "{}", p.watts());
    }

    #[test]
    fn four_stacks_match_the_switch_io() {
        assert_eq!((hbm4::bandwidth() * 4).tbps(), 81.92);
        assert_eq!(hbm4::capacity() * 4, DataSize::from_gib(256));
    }

    #[test]
    fn panel_is_quarter_square_meter() {
        assert_eq!(panel_area().mm2(), 250_000.0);
    }
}
