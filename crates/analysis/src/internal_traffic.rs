//! Wasted internal traffic (§5): "The ability to scale routers by 1–2
//! orders of magnitude can save a significant fraction of the current
//! WAN capacity that is devoted to internal traffic needed to
//! interconnect smaller routers."
//!
//! When a PoP needs more capacity than one router provides, operators
//! compose smaller routers into a multi-chassis Clos or a mesh; every
//! packet then consumes port capacity on several routers, and all but
//! the first and last traversal is *internal* traffic. A single
//! router-in-a-package with 50× the capacity removes those stages.

use serde::{Deserialize, Serialize};

use rip_baselines::MeshFabric;
use rip_units::DataRate;

/// How a PoP of aggregate external capacity is composed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Composition {
    /// One router-in-a-package: no internal interconnect.
    SinglePackage,
    /// A folded multi-chassis Clos of small routers with the given
    /// number of router stages on each path (3 for a classic
    /// leaf–spine–leaf composition).
    Clos {
        /// Router stages per path.
        stages: u32,
    },
    /// A `k × k` mesh of small routers with XY routing.
    Mesh {
        /// Mesh side.
        k: usize,
    },
}

impl Composition {
    /// Mean router traversals per packet.
    pub fn traversals(self) -> f64 {
        match self {
            Composition::SinglePackage => 1.0,
            Composition::Clos { stages } => stages as f64,
            Composition::Mesh { k } => MeshFabric::new(k, 1.0).mean_hops_uniform().max(1.0),
        }
    }

    /// Fraction of total router-port capacity consumed by *internal*
    /// hops: `1 − 1/traversals`.
    pub fn internal_fraction(self) -> f64 {
        1.0 - 1.0 / self.traversals()
    }

    /// Port capacity (in units of the external capacity served) that
    /// must be purchased to serve 1.0 of external capacity.
    pub fn capacity_multiplier(self) -> f64 {
        self.traversals()
    }

    /// Human-readable name.
    pub fn name(self) -> String {
        match self {
            Composition::SinglePackage => "single router-in-a-package".into(),
            Composition::Clos { stages } => format!("{stages}-stage multi-chassis Clos"),
            Composition::Mesh { k } => format!("{k}x{k} mesh of routers"),
        }
    }
}

/// The §5 savings claim, quantified: serving one reference package's
/// ingress with today's 12.8 Tb/s boxes in a 3-stage Clos.
pub fn reference_savings() -> (f64, DataRate) {
    let clos = Composition::Clos { stages: 3 };
    let saved_fraction = clos.internal_fraction();
    // Absolute WAN-port capacity freed at 655.36 Tb/s of external load.
    let external = DataRate::from_bps(655_360_000_000_000);
    let freed = external.scale(clos.capacity_multiplier() - 1.0);
    (saved_fraction, freed)
}

/// Routers of `small_capacity` needed per Clos stage to carry
/// `external`, versus one package.
pub fn boxes_needed(external: DataRate, small_capacity: DataRate, stages: u32) -> u64 {
    let per_stage = external.bps().div_ceil(small_capacity.bps());
    per_stage * stages as u64
}

/// The E19 table rows.
pub fn table() -> Vec<(String, f64, f64)> {
    [
        Composition::SinglePackage,
        Composition::Clos { stages: 3 },
        Composition::Mesh { k: 10 },
    ]
    .into_iter()
    .map(|c| (c.name(), c.capacity_multiplier(), c.internal_fraction()))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants;

    #[test]
    fn single_package_wastes_nothing() {
        let c = Composition::SinglePackage;
        assert_eq!(c.traversals(), 1.0);
        assert_eq!(c.internal_fraction(), 0.0);
        assert_eq!(c.capacity_multiplier(), 1.0);
    }

    #[test]
    fn three_stage_clos_wastes_two_thirds() {
        let c = Composition::Clos { stages: 3 };
        assert!((c.internal_fraction() - 2.0 / 3.0).abs() < 1e-12);
        let (frac, freed) = reference_savings();
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
        // 2x the external capacity freed: ~1.31 Pb/s of router ports.
        assert!((freed.tbps() - 1310.72).abs() < 0.01);
    }

    #[test]
    fn mesh_wastes_even_more() {
        let mesh = Composition::Mesh { k: 10 };
        assert!(mesh.internal_fraction() > 0.8);
        assert!(mesh.capacity_multiplier() > 6.0);
    }

    #[test]
    fn box_count_math() {
        // 655.36 Tb/s over 12.8 Tb/s boxes: 52 per stage, 156 for Clos.
        let n = boxes_needed(
            DataRate::from_bps(655_360_000_000_000),
            constants::cisco_8201::capacity(),
            3,
        );
        assert_eq!(n, 52 * 3);
    }

    #[test]
    fn table_is_ordered_by_waste() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert!(t[0].2 < t[1].2 && t[1].2 < t[2].2);
    }
}
