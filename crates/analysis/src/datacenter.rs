//! Datacenter variant (§5 "Designing datacenter switches"): latency is
//! more critical, so the HBM switch "may need to be modified to rely on
//! smaller frames" — and there is a floor on how small a full-rate PFI
//! frame can be.

use rip_units::{DataRate, DataSize, TimeDelta};
use serde::{Deserialize, Serialize};

/// One row of the frame-size / latency trade (E16).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrameLatencyRow {
    /// Channels a frame is striped across.
    pub stripe_channels: usize,
    /// Resulting frame size `K' = γ·T'·S`.
    pub frame: DataSize,
    /// Mean frame fill time at the given per-output load (frames fill
    /// at the output's aggregate arrival rate `ρ·P`).
    pub fill_latency: TimeDelta,
    /// Frame drain (serialization) time at the output line rate.
    pub drain_latency: TimeDelta,
    /// Fill + drain: the frame-induced latency floor.
    pub total_latency: TimeDelta,
}

/// The smallest frame that still runs the memory at peak rate when
/// striped over `t` channels: each of the γ staggered banks must absorb
/// a segment long enough that the γ-segment group span covers tRC —
/// i.e. `γ·S ≥ tRC·channel_rate`, so `K'_min = T'·tRC·channel_rate`.
pub fn min_frame(stripe_channels: usize, channel_rate: DataRate, t_rc: TimeDelta) -> DataSize {
    let per_channel = channel_rate.data_in(t_rc);
    DataSize::from_bits(per_channel.bits() * stripe_channels as u64)
}

/// Latency of a `frame`-sized PFI aggregation at per-output `load`
/// (fraction of the port rate `port`).
pub fn frame_latency(
    frame: DataSize,
    port: DataRate,
    load: f64,
    stripe_channels: usize,
) -> FrameLatencyRow {
    assert!(load > 0.0 && load <= 1.0);
    let fill = port.scale(load).transfer_time(frame);
    let drain = port.transfer_time(frame);
    FrameLatencyRow {
        stripe_channels,
        frame,
        fill_latency: fill,
        drain_latency: drain,
        total_latency: fill + drain,
    }
}

/// The E16 sweep: stripe a frame over fewer channels (`T' = T, T/2, …`),
/// shrinking `K' = γ·T'·S` proportionally; multiple frames for
/// different outputs then occupy disjoint channel subsets concurrently,
/// so aggregate memory bandwidth is preserved while per-frame latency
/// falls.
pub fn sweep(
    total_channels: usize,
    gamma: usize,
    segment: DataSize,
    port: DataRate,
    load: f64,
) -> Vec<FrameLatencyRow> {
    let mut rows = Vec::new();
    let mut t = total_channels;
    while t >= 1 {
        let frame = segment * (gamma * t) as u64;
        rows.push(frame_latency(frame, port, load, t));
        if t == 1 {
            break;
        }
        t /= 2;
    }
    rows
}

/// First-order expected in-switch delay of a random packet at
/// per-output `load` with padding/bypass *off* (frames fill naturally):
/// mean residual frame-fill wait (`fill/2`), the HBM write+read pass,
/// and the mean drain position (`drain/2`). A cross-check for the E14
/// measured curves — expected to agree within small factors, since it
/// ignores queueing variance and the batch pipeline.
pub fn expected_switch_delay(
    frame: DataSize,
    port: DataRate,
    load: f64,
    hbm_frame_time: TimeDelta,
) -> TimeDelta {
    let row = frame_latency(frame, port, load, 0);
    row.fill_latency / 2 + hbm_frame_time * 2 + row.drain_latency / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_frame_floor_matches_hand_math() {
        // 80 GB/s channel, tRC = 30 ns -> 2,400 B per channel; 128
        // channels -> 300 KiB floor.
        let m = min_frame(128, DataRate::from_gbps(640), TimeDelta::from_ns(30));
        assert_eq!(m.bytes(), 2_400 * 128);
    }

    #[test]
    fn latency_shrinks_linearly_with_stripe_width() {
        let rows = sweep(
            128,
            4,
            DataSize::from_kib(1),
            DataRate::from_gbps(2560),
            0.5,
        );
        assert_eq!(rows[0].frame, DataSize::from_kib(512));
        // Every halving of the stripe halves the frame and its latency.
        for w in rows.windows(2) {
            assert_eq!(w[0].frame.bits(), w[1].frame.bits() * 2);
            assert!(w[0].total_latency > w[1].total_latency);
        }
        // Reference frame at 50% load: fill 3.2768 us + drain 1.6384 us.
        assert_eq!(rows[0].fill_latency, TimeDelta::from_ps(3_276_800));
        assert_eq!(rows[0].drain_latency, TimeDelta::from_ps(1_638_400));
    }

    #[test]
    fn lower_load_means_longer_fill() {
        let f = DataSize::from_kib(512);
        let p = DataRate::from_gbps(2560);
        let slow = frame_latency(f, p, 0.1, 128);
        let fast = frame_latency(f, p, 0.9, 128);
        assert!(slow.fill_latency > fast.fill_latency);
        assert_eq!(slow.drain_latency, fast.drain_latency);
    }

    #[test]
    fn expected_delay_is_dominated_by_fill_at_low_load() {
        let frame = DataSize::from_kib(32);
        let port = DataRate::from_gbps(640);
        let hbm = TimeDelta::from_ns(51);
        let lo = expected_switch_delay(frame, port, 0.1, hbm);
        let hi = expected_switch_delay(frame, port, 0.9, hbm);
        assert!(lo > hi * 4);
        // At 0.5 load: fill/2 = 409.6 ns, drain/2 = 204.8 ns, +102 ns.
        let mid = expected_switch_delay(frame, port, 0.5, hbm);
        assert_eq!(mid, TimeDelta::from_ps(409_600 + 102_000 + 204_800));
    }

    #[test]
    #[should_panic]
    fn zero_load_is_rejected() {
        frame_latency(DataSize::from_kib(1), DataRate::from_gbps(1), 0.0, 1);
    }
}
