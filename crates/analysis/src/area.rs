//! Area model (§4 "Area estimate"): 1,284 mm² per HBM switch,
//! 20,544 mm² for 16 switches — under 10 % of a panel-scale substrate.

use rip_units::Area;
use serde::{Deserialize, Serialize};

use crate::constants;

/// Area breakdown of the router.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AreaAnalysis {
    /// Processing chiplet area per switch.
    pub chiplet: Area,
    /// HBM stack area per switch.
    pub hbm: Area,
    /// Total per switch.
    pub per_switch: Area,
    /// Total for all switches.
    pub total: Area,
    /// Panel substrate area.
    pub panel: Area,
    /// `total / panel`.
    pub panel_fraction: f64,
}

/// Analyse a router of `switches` switches with `stacks_per_switch`
/// HBM stacks each.
pub fn analyse(switches: usize, stacks_per_switch: usize) -> AreaAnalysis {
    let chiplet = constants::tomahawk5::die_area();
    let hbm = constants::hbm4::footprint() * stacks_per_switch as u64;
    let per_switch = chiplet + hbm;
    let total = per_switch * switches as u64;
    let panel = constants::panel_area();
    AreaAnalysis {
        chiplet,
        hbm,
        per_switch,
        total,
        panel,
        panel_fraction: total.fraction_of(panel),
    }
}

/// The paper's reference: 16 switches × 4 stacks.
pub fn reference() -> AreaAnalysis {
    analyse(16, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_areas() {
        let a = reference();
        assert_eq!(a.per_switch.mm2(), 1_284.0);
        assert_eq!(a.total.mm2(), 20_544.0);
        assert!(a.panel_fraction < 0.10, "{}", a.panel_fraction);
        assert!((a.panel_fraction - 0.0822).abs() < 0.001);
    }

    #[test]
    fn hbm_is_the_smaller_share() {
        let a = reference();
        assert!(a.hbm.mm2() < a.chiplet.mm2());
        assert_eq!(a.hbm.mm2(), 484.0);
    }

    #[test]
    fn area_scales_linearly() {
        let half = analyse(8, 4);
        let full = analyse(16, 4);
        assert!((full.total.mm2() - 2.0 * half.total.mm2()).abs() < 1e-9);
    }
}
