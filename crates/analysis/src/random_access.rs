//! Closed-form throughput-reduction factors of worst-case random DRAM
//! access (§3.1 Challenge 6).
//!
//! "They would still suffer from throughput reduction factors ranging
//! from 2.6× for 1,500-byte packets to 39× for worst-case 64-byte ones.
//! If they don't leverage parallel channels, the reduction can reach
//! 1,250×."

use rip_units::{DataRate, DataSize, TimeDelta};
use serde::{Deserialize, Serialize};

/// One row of the E1 reduction table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReductionRow {
    /// Packet size analysed.
    pub packet: DataSize,
    /// Transfer time of the packet on the access interface.
    pub transfer: TimeDelta,
    /// Fixed per-access overhead (activate + precharge).
    pub overhead: TimeDelta,
    /// Throughput reduction factor `(overhead + transfer) / transfer`.
    pub reduction: f64,
}

/// Reduction factor for per-packet random access on an interface of
/// `rate`, paying `overhead` around every access.
pub fn reduction(packet: DataSize, rate: DataRate, overhead: TimeDelta) -> ReductionRow {
    let transfer = rate.transfer_time(packet);
    let t = transfer.as_ps() as f64;
    ReductionRow {
        packet,
        transfer,
        overhead,
        reduction: (overhead.as_ps() as f64 + t) / t,
    }
}

/// The paper's "with parallel channels" variant: each packet lands on
/// one 64-bit HBM channel (80 GB/s).
pub fn with_parallel_channels(packet: DataSize) -> ReductionRow {
    reduction(
        packet,
        crate::constants::hbm4::channel_rate(),
        TimeDelta::from_ns(crate::constants::hbm4::random_access_overhead_ns() as u64),
    )
}

/// The paper's "without parallel channels" variant: each access is one
/// logical word across a stack's whole 2,048-bit interface (20.48 Tb/s).
pub fn single_logical_interface(packet: DataSize) -> ReductionRow {
    reduction(
        packet,
        crate::constants::hbm4::bandwidth(),
        TimeDelta::from_ns(crate::constants::hbm4::random_access_overhead_ns() as u64),
    )
}

/// The full E1 table: the paper's three headline numbers.
pub fn e1_table() -> Vec<(String, ReductionRow)> {
    vec![
        (
            "parallel channels, 1500 B".into(),
            with_parallel_channels(DataSize::from_bytes(1500)),
        ),
        (
            "parallel channels, 64 B".into(),
            with_parallel_channels(DataSize::from_bytes(64)),
        ),
        (
            "single interface, 64 B".into(),
            single_logical_interface(DataSize::from_bytes(64)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_factors() {
        // 2.6x for 1,500-byte packets.
        let r = with_parallel_channels(DataSize::from_bytes(1500));
        assert!((r.reduction - 2.6).abs() < 0.05, "{}", r.reduction);
        // 39x for 64-byte packets ((30 + 0.8)/0.8 = 38.5).
        let r = with_parallel_channels(DataSize::from_bytes(64));
        assert!((r.reduction - 38.5).abs() < 0.5, "{}", r.reduction);
        // "can reach 1,250x" without parallel channels:
        // (30 + 0.025)/0.025 = 1,201 ~ 1.25e3.
        let r = single_logical_interface(DataSize::from_bytes(64));
        assert!(
            r.reduction > 1_100.0 && r.reduction < 1_300.0,
            "{}",
            r.reduction
        );
    }

    #[test]
    fn reduction_decreases_with_packet_size() {
        let sizes = [64u64, 256, 576, 1500, 4096];
        let rows: Vec<f64> = sizes
            .iter()
            .map(|&s| with_parallel_channels(DataSize::from_bytes(s)).reduction)
            .collect();
        assert!(rows.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn e1_table_has_three_rows() {
        let t = e1_table();
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|(_, r)| r.reduction > 1.0));
    }

    #[test]
    fn transfer_times_match_hand_math() {
        let r = with_parallel_channels(DataSize::from_bytes(1500));
        assert_eq!(r.transfer, TimeDelta::from_ps(18_750));
        let r = single_logical_interface(DataSize::from_bytes(64));
        assert_eq!(r.transfer, TimeDelta::from_ps(25));
    }
}
