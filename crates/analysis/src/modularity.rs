//! Modularity (§2.2): "The SPS architecture enables a modular approach,
//! from a single dense 1.31 Pb/s I/O package with 16 HBM switches, to
//! 16 parallel packages of 1/16th the capacity."
//!
//! Because the HBM switches are fully independent after the split, the
//! same silicon can ship as one big package or as `m` smaller ones; the
//! totals are preserved exactly and only the per-package figures scale.

use rip_units::{Area, DataRate, Power};
use serde::{Deserialize, Serialize};

use crate::{area, power};

/// One deployment option: the reference design sliced into `packages`
/// equal packages.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Deployment {
    /// Number of packages the 16 HBM switches are spread over.
    pub packages: usize,
    /// HBM switches per package.
    pub switches_per_package: usize,
    /// I/O per package (both directions).
    pub io_per_package: DataRate,
    /// Power per package.
    pub power_per_package: Power,
    /// Silicon area per package.
    pub area_per_package: Area,
}

/// Slice the reference design into `packages` packages. `packages` must
/// divide 16.
pub fn deployment(packages: usize) -> Result<Deployment, String> {
    if packages == 0 || 16 % packages != 0 {
        return Err(format!("{packages} does not divide the 16 HBM switches"));
    }
    let per = 16 / packages;
    let total_io = DataRate::from_bps(1_310_720_000_000_000);
    let router = power::reference();
    let a = area::reference();
    Ok(Deployment {
        packages,
        switches_per_package: per,
        io_per_package: total_io / packages as u64,
        power_per_package: router.per_switch.total() * per as u64,
        area_per_package: a.per_switch * per as u64,
    })
}

/// The §2.2 modularity table: 1, 4 and 16 packages.
pub fn table() -> Vec<Deployment> {
    [1, 4, 16]
        .into_iter()
        .map(|p| deployment(p).expect("divides 16"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_invariant_across_slicings() {
        let one = deployment(1).unwrap();
        for p in [2, 4, 8, 16] {
            let d = deployment(p).unwrap();
            assert_eq!(d.switches_per_package * p, 16);
            assert_eq!(d.io_per_package.bps() * p as u64, one.io_per_package.bps());
            assert!(
                (d.power_per_package.watts() * p as f64 - one.power_per_package.watts()).abs()
                    < 1e-6
            );
            assert!(
                (d.area_per_package.mm2() * p as f64 - one.area_per_package.mm2()).abs() < 1e-6
            );
        }
    }

    #[test]
    fn paper_endpoints() {
        let single = deployment(1).unwrap();
        assert!((single.io_per_package.tbps() - 1310.72).abs() < 0.01);
        let sixteen = deployment(16).unwrap();
        assert_eq!(sixteen.switches_per_package, 1);
        // 1/16th the capacity: 81.92 Tb/s of I/O per small package.
        assert!((sixteen.io_per_package.tbps() - 81.92).abs() < 0.01);
        // ~794 W per small package.
        assert!((sixteen.power_per_package.watts() - 794.2).abs() < 1.0);
    }

    #[test]
    fn invalid_slicings_rejected() {
        assert!(deployment(0).is_err());
        assert!(deployment(3).is_err());
        assert!(deployment(32).is_err());
    }

    #[test]
    fn table_has_three_rows() {
        assert_eq!(table().len(), 3);
    }
}
