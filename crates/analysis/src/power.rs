//! Power model (§4 "Power estimate", §5 "the road ahead"):
//! 400 W processing + 300 W HBM + 94 W OEO = 794 W per HBM switch,
//! ≈12.7 kW per router — just above half a Cerebras WSE-3.

use rip_units::{DataRate, Power};
use serde::{Deserialize, Serialize};

use crate::constants;

/// Power breakdown of one HBM switch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwitchPower {
    /// Packet processing + SRAM buffering (Tomahawk-5 scaled).
    pub processing: Power,
    /// HBM stacks.
    pub hbm: Power,
    /// O/E + E/O conversion.
    pub oeo: Power,
}

impl SwitchPower {
    /// Total per-switch power.
    pub fn total(&self) -> Power {
        self.processing + self.hbm + self.oeo
    }
}

/// Power breakdown of the whole router.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouterPower {
    /// Per-switch breakdown.
    pub per_switch: SwitchPower,
    /// Number of HBM switches.
    pub switches: usize,
}

impl RouterPower {
    /// Total router power.
    pub fn total(&self) -> Power {
        self.per_switch.total() * self.switches as u64
    }

    /// Share of total power going to processing (§5: ≈50 %).
    pub fn processing_share(&self) -> f64 {
        self.per_switch
            .processing
            .fraction_of(self.per_switch.total())
    }

    /// Share going to HBM (§5: ≈40 %).
    pub fn hbm_share(&self) -> f64 {
        self.per_switch.hbm.fraction_of(self.per_switch.total())
    }

    /// Share going to OEO conversion.
    pub fn oeo_share(&self) -> f64 {
        self.per_switch.oeo.fraction_of(self.per_switch.total())
    }

    /// Ratio to the Cerebras WSE-3's 23 kW (§4: "just above half").
    pub fn vs_cerebras(&self) -> f64 {
        self.total() / constants::cerebras_wse3_power()
    }
}

/// Model one HBM switch handling `ingress` of incoming traffic with
/// `stacks` HBM stacks and `memory_io` of total OEO I/O.
pub fn switch_power(ingress: DataRate, stacks: usize, oeo_io: DataRate) -> SwitchPower {
    let processing =
        constants::tomahawk5::power() * ingress.fraction_of(constants::tomahawk5::capacity());
    let hbm = constants::hbm4::power() * stacks as u64;
    let oeo = constants::oeo_energy().power_at(oeo_io);
    SwitchPower {
        processing,
        hbm,
        oeo,
    }
}

/// The paper's reference router: 16 switches × (40.96 Tb/s ingress,
/// 4 stacks, 81.92 Tb/s OEO I/O).
pub fn reference() -> RouterPower {
    RouterPower {
        per_switch: switch_power(DataRate::from_gbps(40_960), 4, DataRate::from_gbps(81_920)),
        switches: 16,
    }
}

/// Conversion-power comparison across the §2.1 design space at the
/// router's total I/O (experiment E7): (design name, OEO conversions,
/// OEO power).
pub fn oeo_design_space(total_io: DataRate) -> Vec<(String, f64, Power)> {
    use rip_baselines::DesignPoint;
    [
        DesignPoint::Sps,
        DesignPoint::Centralized,
        DesignPoint::ThreeStage,
        DesignPoint::Mesh { k: 10 },
    ]
    .into_iter()
    .map(|d| {
        (
            d.name(),
            d.oeo_conversions(),
            d.oeo_power(total_io, constants::oeo_energy()),
        )
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_794w_and_12_7kw() {
        let r = reference();
        let p = r.per_switch;
        assert!(
            (p.processing.watts() - 400.0).abs() < 1.0,
            "{}",
            p.processing
        );
        assert!((p.hbm.watts() - 300.0).abs() < 1e-9, "{}", p.hbm);
        assert!((p.oeo.watts() - 94.0).abs() < 0.5, "{}", p.oeo);
        assert!((p.total().watts() - 794.0).abs() < 1.5, "{}", p.total());
        assert!((r.total().kilowatts() - 12.7).abs() < 0.05, "{}", r.total());
    }

    #[test]
    fn just_above_half_a_cerebras() {
        let r = reference();
        let ratio = r.vs_cerebras();
        assert!(ratio > 0.5 && ratio < 0.6, "ratio {ratio}");
    }

    #[test]
    fn section5_power_shares() {
        let r = reference();
        // §5: HBM accounts for 40% of overall power, processing ~50%.
        assert!((r.hbm_share() - 0.40).abs() < 0.03, "{}", r.hbm_share());
        assert!(
            (r.processing_share() - 0.50).abs() < 0.03,
            "{}",
            r.processing_share()
        );
        let sum = r.processing_share() + r.hbm_share() + r.oeo_share();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn design_space_conversion_power_ordering() {
        let rows = oeo_design_space(DataRate::from_bps(1_310_720_000_000_000));
        // SPS first and cheapest.
        assert!(rows[0].0.contains("SPS"));
        let sps = rows[0].2;
        let three_stage = rows[2].2;
        assert!((three_stage / sps - 3.0).abs() < 1e-9);
        // Mesh pays the most (mean hops > 3).
        assert!(rows[3].2.watts() > three_stage.watts());
    }
}
