//! SRAM sizing (§4): "the total needed SRAM size is 14.5 MB … a small
//! cost we pay for assembling the large frames".
//!
//! The paper states the total without a breakdown; we model each SRAM
//! component of the §3.2 pipeline and report both a worst-case and an
//! expected-occupancy figure that bracket the paper's number. The
//! alternative (packet spraying + a reordering buffer, "an order of
//! magnitude higher") is *measured* on the spraying baseline in the
//! repro harness and cross-checked against this budget.

use rip_units::DataSize;
use serde::{Deserialize, Serialize};

/// SRAM budget breakdown for one HBM switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SramBudget {
    /// Input-port SRAM: `N` ports × `N` VOQs × the per-VOQ envelope.
    pub input_ports: DataSize,
    /// Tail SRAM: per-output frame-forming buffers plus staging.
    pub tail: DataSize,
    /// Head SRAM: per-output frame drain buffers.
    pub head: DataSize,
    /// Total.
    pub total: DataSize,
}

/// Worst-case budget: every forming buffer simultaneously full.
///
/// * Input ports: `N × N ×` (one forming batch + one departing batch +
///   one maximum packet straddling in) per VOQ.
/// * Tail: each output can hold one nearly complete forming frame
///   (`K − k`) plus one full frame staged for the HBM writer.
/// * Head: each output holds one draining frame plus one landing frame
///   (double buffering).
pub fn worst_case(n: usize, batch: DataSize, frame: DataSize, max_packet: DataSize) -> SramBudget {
    let per_voq = batch * 2 + max_packet;
    let input_ports = per_voq * (n * n) as u64;
    let tail = (frame - batch + frame) * n as u64;
    let head = frame * (2 * n) as u64;
    SramBudget {
        input_ports,
        tail,
        head,
        total: input_ports + tail + head,
    }
}

/// Expected-occupancy budget: forming and draining buffers are on
/// average half full, and frames staged for the HBM writer leave in
/// ~51 ns (one frame write) versus the ~1.6 µs it takes to fill one, so
/// staging occupancy is negligible.
pub fn expected(n: usize, batch: DataSize, frame: DataSize, max_packet: DataSize) -> SramBudget {
    let per_voq = batch + max_packet / 2;
    let input_ports = per_voq * (n * n) as u64;
    let tail = (frame / 2) * n as u64;
    let head = (frame / 2) * n as u64;
    SramBudget {
        input_ports,
        tail,
        head,
        total: input_ports + tail + head,
    }
}

/// The paper's reference parameters: N = 16, k = 4 KiB, K = 512 KiB,
/// 1,500 B max packets.
pub fn reference() -> (SramBudget, SramBudget) {
    let n = 16;
    let k = DataSize::from_kib(4);
    let frame = DataSize::from_kib(512);
    let mtu = DataSize::from_bytes(1500);
    (worst_case(n, k, frame, mtu), expected(n, k, frame, mtu))
}

/// The paper's stated total: 14.5 MB.
pub fn paper_total() -> DataSize {
    DataSize::from_bytes(14_500_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_budgets_bracket_the_paper() {
        let (worst, exp) = reference();
        let paper = paper_total().bytes() as f64;
        // Expected-occupancy model is below the paper's figure, the
        // worst-case model above it: the 14.5 MB sits in between.
        assert!(
            (exp.total.bytes() as f64) < paper,
            "expected {} !< paper {paper}",
            exp.total
        );
        assert!(
            (worst.total.bytes() as f64) > paper,
            "worst {} !> paper {paper}",
            worst.total
        );
        // And both are the same order of magnitude (within 3x).
        assert!(worst.total.bytes() as f64 / paper < 3.0);
        assert!(paper / (exp.total.bytes() as f64) < 3.0);
    }

    #[test]
    fn frame_buffers_dominate() {
        let (worst, _) = reference();
        assert!(worst.tail > worst.input_ports);
        assert!(worst.head > worst.input_ports);
    }

    #[test]
    fn totals_add_up() {
        let (w, e) = reference();
        assert_eq!(w.total, w.input_ports + w.tail + w.head);
        assert_eq!(e.total, e.input_ports + e.tail + e.head);
    }

    #[test]
    fn budget_scales_with_frame_size() {
        let small = worst_case(
            16,
            DataSize::from_kib(4),
            DataSize::from_kib(128),
            DataSize::from_bytes(1500),
        );
        let big = worst_case(
            16,
            DataSize::from_kib(4),
            DataSize::from_kib(512),
            DataSize::from_bytes(1500),
        );
        assert!(big.total > small.total * 2);
    }
}
