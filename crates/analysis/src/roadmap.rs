//! Router evolution projections (§5 "Router evolution"): future HBM
//! generations are expected to deliver 4× the bandwidth and capacity;
//! monolithic-3D stackable DRAM, 10× — either lets the reference design
//! shed stacks, footprint and power, or scale capacity further.

use rip_units::{Area, DataRate, Power};
use serde::{Deserialize, Serialize};

use crate::constants;

/// One memory-technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryGeneration {
    /// Today's HBM4 baseline.
    Hbm4,
    /// Future HBM (HBM5–8 roadmaps): 4× bandwidth and capacity per
    /// stack (\[52\]).
    FutureHbm,
    /// Monolithic 3-D stackable DRAM: 10× per stack (\[23, 24\]).
    Monolithic3d,
}

impl MemoryGeneration {
    /// Bandwidth/capacity multiplier vs HBM4.
    pub fn factor(self) -> u64 {
        match self {
            MemoryGeneration::Hbm4 => 1,
            MemoryGeneration::FutureHbm => 4,
            MemoryGeneration::Monolithic3d => 10,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MemoryGeneration::Hbm4 => "HBM4 (today)",
            MemoryGeneration::FutureHbm => "future HBM (4x)",
            MemoryGeneration::Monolithic3d => "monolithic 3D DRAM (10x)",
        }
    }
}

/// The reference design re-instantiated on a future memory generation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoadmapPoint {
    /// The generation.
    pub generation: MemoryGeneration,
    /// Stacks needed per HBM switch to sustain 81.92 Tb/s of memory I/O.
    pub stacks_per_switch: u64,
    /// Memory footprint per switch (stack footprint unchanged).
    pub memory_area_per_switch: Area,
    /// Memory power per switch (per-stack power unchanged — a
    /// conservative projection; §5 expects future HBM to also need
    /// *less* power per bit).
    pub memory_power_per_switch: Power,
    /// Alternative reading: capacity achievable with the original 4
    /// stacks per switch.
    pub io_with_four_stacks: DataRate,
}

/// Project the reference design onto `generation`.
pub fn project(generation: MemoryGeneration) -> RoadmapPoint {
    let f = generation.factor();
    let needed = DataRate::from_gbps(81_920);
    let per_stack = constants::hbm4::bandwidth() * f;
    let stacks = needed.bps().div_ceil(per_stack.bps());
    RoadmapPoint {
        generation,
        stacks_per_switch: stacks,
        memory_area_per_switch: constants::hbm4::footprint() * stacks,
        memory_power_per_switch: constants::hbm4::power() * stacks,
        io_with_four_stacks: per_stack * 4,
    }
}

/// The full §5 roadmap table.
pub fn table() -> Vec<RoadmapPoint> {
    vec![
        project(MemoryGeneration::Hbm4),
        project(MemoryGeneration::FutureHbm),
        project(MemoryGeneration::Monolithic3d),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm4_needs_four_stacks() {
        let p = project(MemoryGeneration::Hbm4);
        assert_eq!(p.stacks_per_switch, 4);
        assert_eq!(p.memory_area_per_switch.mm2(), 484.0);
        assert_eq!(p.memory_power_per_switch.watts(), 300.0);
    }

    #[test]
    fn future_hbm_needs_one_stack() {
        let p = project(MemoryGeneration::FutureHbm);
        assert_eq!(p.stacks_per_switch, 1);
        // Or 4x the I/O with the original four stacks: 327.68 Tb/s.
        assert_eq!(p.io_with_four_stacks.tbps(), 327.68);
    }

    #[test]
    fn monolithic_3d_needs_one_stack_with_headroom() {
        let p = project(MemoryGeneration::Monolithic3d);
        assert_eq!(p.stacks_per_switch, 1);
        assert_eq!(p.io_with_four_stacks.tbps(), 819.2);
        assert_eq!(p.memory_power_per_switch.watts(), 75.0);
    }

    #[test]
    fn table_is_ordered_by_generation() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert!(t[0].stacks_per_switch >= t[1].stacks_per_switch);
        assert!(t[1].stacks_per_switch >= t[2].stacks_per_switch);
        assert!(!t[0].generation.name().is_empty());
    }
}
