//! Capacity-per-space comparison (§5 "Capacity increase"): "a Cisco
//! 8201-32FH of 1RU height … 12.8 Tb/s, over 50× less than the input
//! bandwidth of our router, while occupying about the same space."

use rip_units::DataRate;
use serde::{Deserialize, Serialize};

use crate::constants;

/// The E12 capacity comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CapacityComparison {
    /// This router's total ingress bandwidth.
    pub router_ingress: DataRate,
    /// The Cisco 8201-32FH's aggregate input bandwidth.
    pub cisco_ingress: DataRate,
    /// Ratio (the paper's "over 50×").
    pub ratio: f64,
}

/// Compare `router_ingress` against the Cisco 8201-32FH datapoint.
pub fn vs_cisco_8201(router_ingress: DataRate) -> CapacityComparison {
    let cisco = constants::cisco_8201::capacity();
    CapacityComparison {
        router_ingress,
        cisco_ingress: cisco,
        ratio: router_ingress / cisco,
    }
}

/// The paper's reference comparison at 655.36 Tb/s of ingress.
pub fn reference() -> CapacityComparison {
    vs_cisco_8201(DataRate::from_bps(655_360_000_000_000))
}

/// The §1/§5 claim that capacity per area improves by 1–2 orders of
/// magnitude: capacity density of the package (ingress / panel area)
/// vs the Cisco box normalized to the same footprint class.
pub fn density_improvement() -> f64 {
    // Both the package and a 1RU box occupy "about the same space"
    // (§5), so the density improvement equals the capacity ratio.
    reference().ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_over_50x() {
        let c = reference();
        assert!((c.ratio - 51.2).abs() < 0.01, "{}", c.ratio);
        assert!(c.ratio > 50.0);
    }

    #[test]
    fn density_is_one_to_two_orders_of_magnitude() {
        let d = density_improvement();
        assert!((10.0..100.0).contains(&d), "{d}");
    }
}
