//! Router buffer sizing (§4): the router's 4.096 TB ⇒ ≈51.2 ms of
//! buffering, against the classical sizing rules.

use rip_units::{DataRate, DataSize};
use serde::{Deserialize, Serialize};

use crate::constants;

/// The E8 buffer-sizing comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BufferAnalysis {
    /// Total router buffering (`H · B ·` stack capacity).
    pub total: DataSize,
    /// Total ingress rate the buffer serves.
    pub ingress: DataRate,
    /// Milliseconds of buffering at full ingress.
    pub milliseconds: f64,
    /// Van Jacobson rule (1 × bandwidth-delay product) for the given
    /// RTT, in bytes.
    pub van_jacobson: DataSize,
    /// Stanford rule (BDP / √n flows), in bytes.
    pub stanford: DataSize,
    /// Ratio of this router's buffer to the VJ rule.
    pub vs_van_jacobson: f64,
    /// Ratio to the Stanford rule.
    pub vs_stanford: f64,
}

/// Milliseconds of buffering `size` provides at `rate`.
pub fn buffer_ms(size: DataSize, rate: DataRate) -> f64 {
    size.bits() as f64 / rate.bps() as f64 * 1e3
}

/// Bandwidth-delay product at `rate` for `rtt_ms`.
pub fn bdp(rate: DataRate, rtt_ms: f64) -> DataSize {
    DataSize::from_bits((rate.bps() as f64 * rtt_ms / 1e3) as u64)
}

/// Analyse a router with `switches × stacks_per_switch` stacks of
/// `stack_capacity`, `ingress` total input rate, `rtt_ms` and `flows`
/// concurrent long flows (for the Stanford rule).
pub fn analyse(
    switches: usize,
    stacks_per_switch: usize,
    stack_capacity: DataSize,
    ingress: DataRate,
    rtt_ms: f64,
    flows: u64,
) -> BufferAnalysis {
    let total = stack_capacity * (switches * stacks_per_switch) as u64;
    let vj = bdp(ingress, rtt_ms);
    let stanford = vj / (flows as f64).sqrt() as u64;
    BufferAnalysis {
        total,
        ingress,
        milliseconds: buffer_ms(total, ingress),
        van_jacobson: vj,
        stanford,
        vs_van_jacobson: total.bits() as f64 / vj.bits() as f64,
        vs_stanford: total.bits() as f64 / stanford.bits() as f64,
    }
}

/// The paper's reference analysis: H = 16, B = 4, 64 GB stacks,
/// 655.36 Tb/s of ingress, 100 ms RTT, 100k flows.
pub fn reference() -> BufferAnalysis {
    analyse(
        16,
        4,
        constants::hbm4::capacity(),
        DataRate::from_bps(655_360_000_000_000),
        100.0,
        100_000,
    )
}

/// Rows comparing this router's ms-of-buffering against the industry
/// datapoints of §4.
pub fn comparison_rows() -> Vec<(String, f64)> {
    let r = reference();
    vec![
        ("this router (H·B·64 GB)".into(), r.milliseconds),
        ("Van Jacobson rule (1 RTT)".into(), 100.0),
        (
            "Cisco white paper (core, low)".into(),
            constants::cisco_linecards::RECOMMENDED_RANGE_MS.0,
        ),
        (
            "Cisco white paper (core, high)".into(),
            constants::cisco_linecards::RECOMMENDED_RANGE_MS.1,
        ),
        (
            "Cisco Q100 linecard".into(),
            constants::cisco_linecards::Q100_MS,
        ),
        (
            "Cisco Q200 linecard".into(),
            constants::cisco_linecards::Q200_MS,
        ),
        ("Cisco 8201-32FH".into(), constants::cisco_8201::buffer_ms()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_51ms() {
        let r = reference();
        // 4.096 TB total.
        assert_eq!(r.total, DataSize::from_gib(4096));
        // (H·B·64)·8/655.36 ~ 51.2 ms — the paper computes with 64 GB
        // decimal-ish; GiB-exact gives 53.7. Within 6%.
        assert!(
            (r.milliseconds - 51.2).abs() / 51.2 < 0.06,
            "{} ms",
            r.milliseconds
        );
    }

    #[test]
    fn exceeds_van_jacobson_at_100ms_rtt() {
        let r = reference();
        // Buffer is about half an RTT of BDP at 655 Tb/s... no: 51 ms vs
        // 100 ms RTT -> about half VJ; but far above Stanford.
        assert!(r.vs_van_jacobson > 0.5 && r.vs_van_jacobson < 0.6);
        assert!(r.vs_stanford > 150.0, "{}", r.vs_stanford);
    }

    #[test]
    fn beats_all_cisco_datapoints() {
        let rows = comparison_rows();
        let ours = rows[0].1;
        for (name, ms) in &rows[2..] {
            assert!(ours > *ms, "{name} {ms} ms not below ours {ours} ms");
        }
    }

    #[test]
    fn buffer_ms_math() {
        // 1 GB at 1 Tb/s = 8 ms.
        let ms = buffer_ms(DataSize::from_bytes(1_000_000_000), DataRate::from_tbps(1));
        assert!((ms - 8.0).abs() < 1e-9);
    }

    #[test]
    fn bdp_math() {
        let b = bdp(DataRate::from_gbps(100), 100.0);
        assert_eq!(b, DataSize::from_bits(10_000_000_000));
    }
}
