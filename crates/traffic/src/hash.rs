//! ECMP / LAG flow hashing (§3.2 ➅, §4 "Traffic matrix at HBM switches").
//!
//! Incoming WAN links are assumed to use ECMP or link aggregation, so
//! traffic is spread over fibers by hashing the flow 5-tuple; the output
//! ports of each HBM switch do the same to pick an egress waveguide and
//! wavelength. Two industry-standard hash functions are provided so the
//! spreading quality can be compared.

use crate::packet::FlowKey;
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// CRC-32C (Castagnoli) of a byte string, bitwise implementation.
pub fn crc32c(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78; // reflected 0x1EDC6F41
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Which hash function an ECMP/LAG group uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashKind {
    /// FNV-1a (fast software hash).
    Fnv1a,
    /// CRC-32C (the common hardware hash).
    Crc32c,
}

/// Hash a flow onto one of `lanes` lanes.
///
/// # Panics
/// Panics if `lanes` is zero.
pub fn lane_for(flow: FlowKey, lanes: usize, kind: HashKind) -> usize {
    assert!(lanes > 0, "lane count must be positive");
    let bytes = flow.to_bytes();
    let h = match kind {
        HashKind::Fnv1a => fnv1a(&bytes),
        HashKind::Crc32c => crc32c(&bytes) as u64,
    };
    (h % lanes as u64) as usize
}

/// Hash a flow onto a `(fiber, wavelength)` pair out of `fibers × waves`
/// lanes (the output-port spreading of §3.2 ➅).
pub fn fiber_wavelength_for(
    flow: FlowKey,
    fibers: usize,
    waves: usize,
    kind: HashKind,
) -> (usize, usize) {
    let lane = lane_for(flow, fibers * waves, kind);
    (lane / waves, lane % waves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(i: u32) -> FlowKey {
        FlowKey {
            src_ip: 0x0A00_0000 + i,
            dst_ip: 0x0B00_0000u32.wrapping_add(i.wrapping_mul(2654435761)),
            src_port: (i % 50000) as u16,
            dst_port: 443,
            proto: 6,
        }
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vector: CRC-32C of "123456789" = 0xE3069283.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Canonical FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hashing_is_deterministic_per_flow() {
        let f = flow(42);
        for kind in [HashKind::Fnv1a, HashKind::Crc32c] {
            assert_eq!(lane_for(f, 64, kind), lane_for(f, 64, kind));
        }
    }

    #[test]
    fn hashing_spreads_flows_evenly() {
        for kind in [HashKind::Fnv1a, HashKind::Crc32c] {
            let lanes = 16;
            let n = 32_000;
            let mut counts = vec![0u32; lanes];
            for i in 0..n {
                counts[lane_for(flow(i), lanes, kind)] += 1;
            }
            let expect = n as f64 / lanes as f64;
            for (l, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - expect).abs() / expect;
                assert!(dev < 0.10, "{kind:?} lane {l}: count {c} deviates {dev:.3}");
            }
        }
    }

    #[test]
    fn fiber_wavelength_decomposition() {
        let f = flow(7);
        let (fiber, wave) = fiber_wavelength_for(f, 4, 16, HashKind::Crc32c);
        assert!(fiber < 4 && wave < 16);
        let lane = lane_for(f, 64, HashKind::Crc32c);
        assert_eq!(lane, fiber * 16 + wave);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn zero_lanes_panics() {
        lane_for(flow(1), 0, HashKind::Fnv1a);
    }
}
