//! Adversarial traffic against the SPS split pattern (§2.1 Challenge 4
//! item (2): "an adversarial attacker could exploit the known internal
//! splitting pattern of the fibers").

use serde::{Deserialize, Serialize};

/// An attacker with a bounded traffic budget who tries to overload one
/// internal HBM switch by loading exactly the fibers they *believe* are
/// spliced to it.
///
/// The attacker knows the package's public geometry (`N`, `F`, `H`) and
/// the *kind* of split pattern, but for a pseudo-random split they do not
/// know the manufacturing seed — so their belief map is wrong and the
/// attack diffuses. The effectiveness metric is the victim's load under
/// the *true* map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Attacker {
    /// Total attack traffic, in units of fully loaded fibers.
    pub budget: f64,
}

impl Attacker {
    /// A new attacker with the given budget (fiber-line-rate units).
    pub fn new(budget: f64) -> Self {
        assert!(budget >= 0.0);
        Attacker { budget }
    }

    /// Offered per-fiber loads (`[ribbon][fiber]`, each ≤ 1.0) when the
    /// attacker targets `victim` according to their `believed` split
    /// map. Fibers believed to reach the victim are filled to line rate,
    /// ribbon by ribbon, until the budget runs out; remaining budget is
    /// discarded (the attacker gains nothing loading other switches).
    pub fn fiber_loads_targeting(
        &self,
        believed: &rip_photonics::SplitMap,
        victim: usize,
    ) -> Vec<Vec<f64>> {
        let ribbons = believed.ribbons();
        let fibers = believed.fibers_per_ribbon();
        let mut loads = vec![vec![0.0; fibers]; ribbons];
        let mut remaining = self.budget;
        'outer: for (r, row) in loads.iter_mut().enumerate() {
            for f in believed.fibers_for(r, victim) {
                if remaining <= 0.0 {
                    break 'outer;
                }
                let put = remaining.min(1.0);
                row[f] = put;
                remaining -= put;
            }
        }
        loads
    }

    /// The victim's actual load when the attack lands on the `truth`
    /// map, and the maximum load any switch sees.
    pub fn evaluate(
        &self,
        believed: &rip_photonics::SplitMap,
        truth: &rip_photonics::SplitMap,
        victim: usize,
    ) -> AttackOutcome {
        let loads = self.fiber_loads_targeting(believed, victim);
        let per_switch = truth.switch_loads(&loads);
        let victim_load = per_switch[victim];
        let max_load = per_switch.iter().cloned().fold(0.0, f64::max);
        let total: f64 = per_switch.iter().sum();
        AttackOutcome {
            victim_load,
            max_load,
            total_delivered: total,
            concentration: if total > 0.0 {
                victim_load / (total / truth.switches() as f64)
            } else {
                0.0
            },
        }
    }
}

/// Result of evaluating an attack against the true split map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Load landing on the intended victim switch.
    pub victim_load: f64,
    /// Largest load on any switch.
    pub max_load: f64,
    /// Total attack load delivered.
    pub total_delivered: f64,
    /// Victim load relative to a perfectly even spread (1.0 = no
    /// concentration achieved; `H` = perfect concentration).
    pub concentration: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_photonics::{SplitMap, SplitPattern};

    #[test]
    fn known_sequential_pattern_is_fully_exploitable() {
        let truth = SplitMap::new(4, 16, 4, SplitPattern::Sequential).unwrap();
        let atk = Attacker::new(8.0);
        // Attacker believes (correctly) the pattern is sequential.
        let outcome = atk.evaluate(&truth, &truth, 0);
        // All 8 fiber-loads land on switch 0: perfect concentration.
        assert!((outcome.victim_load - 8.0).abs() < 1e-12);
        assert!((outcome.concentration - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pseudo_random_pattern_diffuses_the_attack() {
        let truth = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 1234 }).unwrap();
        // Attacker guesses sequential (or any wrong seed).
        let believed = SplitMap::new(16, 64, 16, SplitPattern::Sequential).unwrap();
        let atk = Attacker::new(32.0);
        let outcome = atk.evaluate(&believed, &truth, 0);
        // Victim receives roughly its fair share 32/16 = 2.0, far from 32.
        assert!(
            outcome.victim_load < 8.0,
            "victim load {} should be diffused",
            outcome.victim_load
        );
        assert!((outcome.total_delivered - 32.0).abs() < 1e-9);
        assert!(outcome.concentration < 4.0);
    }

    #[test]
    fn wrong_seed_is_as_good_as_no_knowledge() {
        let truth = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 1 }).unwrap();
        let believed = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 2 }).unwrap();
        let atk = Attacker::new(16.0);
        let outcome = atk.evaluate(&believed, &truth, 3);
        assert!(outcome.concentration < 4.0, "{}", outcome.concentration);
    }

    #[test]
    fn correct_seed_recovers_the_attack() {
        let truth = SplitMap::new(16, 64, 16, SplitPattern::PseudoRandom { seed: 9 }).unwrap();
        let atk = Attacker::new(16.0);
        let outcome = atk.evaluate(&truth, &truth, 5);
        assert!((outcome.victim_load - 16.0).abs() < 1e-12);
        assert!((outcome.concentration - 16.0).abs() < 1e-12);
    }

    #[test]
    fn budget_is_respected_and_clamped() {
        let m = SplitMap::new(2, 8, 4, SplitPattern::Sequential).unwrap();
        let atk = Attacker::new(2.5);
        let loads = atk.fiber_loads_targeting(&m, 1);
        let total: f64 = loads.iter().flatten().sum();
        assert!((total - 2.5).abs() < 1e-12);
        assert!(loads.iter().flatten().all(|&l| l <= 1.0));
        // Budget above the victim's fiber count saturates.
        let atk = Attacker::new(100.0);
        let loads = atk.fiber_loads_targeting(&m, 1);
        let total: f64 = loads.iter().flatten().sum();
        assert!((total - 4.0).abs() < 1e-12); // 2 ribbons x alpha 2
    }
}
