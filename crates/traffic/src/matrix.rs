//! Traffic matrices with admissibility checks.

use rand::Rng;
use rip_sim::rng::rng_for;
use serde::{Deserialize, Serialize};

/// An `N×N` traffic matrix of normalized loads: entry `(i, j)` is the
/// fraction of one port's line rate flowing from input `i` to output `j`.
///
/// A matrix is *admissible* when every row sum (ingress load) and column
/// sum (egress load) is ≤ 1 — the regime in which the paper claims 100 %
/// throughput for the PFI switch (Design 6).
///
/// ```
/// use rip_traffic::TrafficMatrix;
/// let uniform = TrafficMatrix::uniform(16, 0.95);
/// assert!(uniform.is_admissible());
/// // A 50% hotspot on output 0 oversubscribes it 8x: inadmissible.
/// let hot = TrafficMatrix::hotspot(16, 1.0, 0, 0.5);
/// assert!(!hot.is_admissible());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major demand fractions.
    demand: Vec<f64>,
}

impl TrafficMatrix {
    /// Build from an explicit row-major demand vector.
    pub fn from_rows(n: usize, demand: Vec<f64>) -> Result<Self, String> {
        if n == 0 {
            return Err("matrix must be at least 1x1".into());
        }
        if demand.len() != n * n {
            return Err(format!("expected {} entries, got {}", n * n, demand.len()));
        }
        if demand.iter().any(|&d| !(0.0..=1.0 + 1e-9).contains(&d)) {
            return Err("demands must lie in [0, 1]".into());
        }
        Ok(TrafficMatrix { n, demand })
    }

    /// Uniform matrix: every input spreads `load` evenly over all outputs.
    pub fn uniform(n: usize, load: f64) -> Self {
        TrafficMatrix::from_rows(n, vec![load / n as f64; n * n]).expect("uniform matrix is valid")
    }

    /// Permutation matrix: input `i` sends all of `load` to `perm[i]`.
    pub fn permutation(perm: &[usize], load: f64) -> Result<Self, String> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in perm {
            if p >= n || seen[p] {
                return Err("not a permutation".into());
            }
            seen[p] = true;
        }
        let mut demand = vec![0.0; n * n];
        for (i, &p) in perm.iter().enumerate() {
            demand[i * n + p] = load;
        }
        TrafficMatrix::from_rows(n, demand)
    }

    /// Hotspot matrix: each input sends a fraction `hot_frac` of `load`
    /// to `hot_output`, spreading the rest uniformly over the others.
    /// Column loads stay admissible only if `n · load · hot_frac ≤ 1`.
    pub fn hotspot(n: usize, load: f64, hot_output: usize, hot_frac: f64) -> Self {
        assert!(hot_output < n && (0.0..=1.0).contains(&hot_frac));
        let mut demand = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                demand[i * n + j] = if j == hot_output {
                    load * hot_frac
                } else {
                    load * (1.0 - hot_frac) / (n - 1).max(1) as f64
                };
            }
        }
        TrafficMatrix { n, demand }
    }

    /// Log-normal skewed matrix: entries drawn log-normally (σ controls
    /// skew), then scaled so the maximum row/column sum equals `load`.
    pub fn log_normal(n: usize, load: f64, sigma: f64, seed: u64) -> Self {
        let mut rng = rng_for(seed, 0x7A11);
        let mut demand: Vec<f64> = (0..n * n)
            .map(|_| {
                // Box-Muller for a standard normal.
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (sigma * z).exp()
            })
            .collect();
        // Scale so max(row sum, col sum) = load.
        let mut max_sum: f64 = 0.0;
        for i in 0..n {
            let row: f64 = (0..n).map(|j| demand[i * n + j]).sum();
            let col: f64 = (0..n).map(|j| demand[j * n + i]).sum();
            max_sum = max_sum.max(row).max(col);
        }
        if max_sum > 0.0 {
            for d in demand.iter_mut() {
                *d *= load / max_sum;
            }
        }
        TrafficMatrix { n, demand }
    }

    /// Matrix size `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Demand fraction from `input` to `output`.
    pub fn demand(&self, input: usize, output: usize) -> f64 {
        self.demand[input * self.n + output]
    }

    /// The demand row of `input` (its per-output split).
    pub fn row(&self, input: usize) -> &[f64] {
        &self.demand[input * self.n..(input + 1) * self.n]
    }

    /// Ingress load of `input` (row sum).
    pub fn row_load(&self, input: usize) -> f64 {
        self.row(input).iter().sum()
    }

    /// Egress load of `output` (column sum).
    pub fn col_load(&self, output: usize) -> f64 {
        (0..self.n).map(|i| self.demand(i, output)).sum()
    }

    /// Largest row or column sum.
    pub fn max_load(&self) -> f64 {
        (0..self.n)
            .map(|i| self.row_load(i).max(self.col_load(i)))
            .fold(0.0, f64::max)
    }

    /// True if no ingress or egress is oversubscribed.
    pub fn is_admissible(&self) -> bool {
        self.max_load() <= 1.0 + 1e-9
    }

    /// Scale all demands by `factor` (clamped at entry validity).
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        TrafficMatrix {
            n: self.n,
            demand: self.demand.iter().map(|d| d * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_admissible_up_to_full_load() {
        let m = TrafficMatrix::uniform(16, 1.0);
        assert!(m.is_admissible());
        assert!((m.row_load(3) - 1.0).abs() < 1e-9);
        assert!((m.col_load(7) - 1.0).abs() < 1e-9);
        assert!((m.demand(0, 0) - 1.0 / 16.0).abs() < 1e-12);
        assert!((m.max_load() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permutation_routes_everything_to_one_output() {
        let m = TrafficMatrix::permutation(&[2, 0, 1], 0.9).unwrap();
        assert!(m.is_admissible());
        assert_eq!(m.demand(0, 2), 0.9);
        assert_eq!(m.demand(0, 0), 0.0);
        assert!((m.col_load(2) - 0.9).abs() < 1e-12);
        assert!(TrafficMatrix::permutation(&[0, 0], 1.0).is_err());
        assert!(TrafficMatrix::permutation(&[5], 1.0).is_err());
    }

    #[test]
    fn hotspot_oversubscribes_the_hot_output() {
        let m = TrafficMatrix::hotspot(8, 1.0, 0, 0.5);
        // Column 0 receives 8 x 0.5 = 4.0 -> inadmissible.
        assert!((m.col_load(0) - 4.0).abs() < 1e-9);
        assert!(!m.is_admissible());
        // Mild hotspot stays admissible.
        let m2 = TrafficMatrix::hotspot(8, 0.8, 0, 1.0 / 8.0);
        assert!(m2.is_admissible());
    }

    #[test]
    fn log_normal_is_deterministic_and_scaled() {
        let a = TrafficMatrix::log_normal(8, 0.9, 1.0, 5);
        let b = TrafficMatrix::log_normal(8, 0.9, 1.0, 5);
        assert_eq!(a, b);
        assert!(a.is_admissible());
        assert!((a.max_load() - 0.9).abs() < 1e-9);
        let c = TrafficMatrix::log_normal(8, 0.9, 1.0, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn from_rows_validates() {
        assert!(TrafficMatrix::from_rows(0, vec![]).is_err());
        assert!(TrafficMatrix::from_rows(2, vec![0.0; 3]).is_err());
        assert!(TrafficMatrix::from_rows(2, vec![2.0, 0.0, 0.0, 0.0]).is_err());
        assert!(TrafficMatrix::from_rows(2, vec![-0.1, 0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn scaling() {
        let m = TrafficMatrix::uniform(4, 1.0).scaled(0.5);
        assert!((m.row_load(0) - 0.5).abs() < 1e-12);
    }
}
