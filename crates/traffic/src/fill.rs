//! Per-fiber fill-order load models (§2.1 Challenge 4).
//!
//! "Practically, the first fiber of each input is typically connected
//! first, and therefore has a higher load" — operators provision fibers
//! incrementally, so per-fiber utilization is a decreasing function of
//! the fiber index. These models produce that skew.

use serde::{Deserialize, Serialize};

/// How the fibers of a ribbon are loaded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FiberFill {
    /// All fibers equally loaded (the ECMP/LAG-hashed ideal of §4).
    Uniform,
    /// Only the first `used` fibers carry traffic, all at equal load
    /// (a partially provisioned ribbon).
    FirstFilled {
        /// Number of in-service fibers.
        used: usize,
    },
    /// Load decreases linearly from the first fiber to the last:
    /// fiber `f` of `F` gets weight `F - f`.
    Linear,
    /// Load decreases geometrically: fiber `f` gets weight `ratio^f`.
    Geometric {
        /// Per-fiber decay in (0, 1].
        ratio: f64,
    },
}

impl FiberFill {
    /// Per-fiber load fractions for a ribbon of `fibers` fibers carrying
    /// `total_load` (in units of fiber line rates, so a fully loaded
    /// fiber contributes 1.0). Loads are clamped to 1.0 per fiber where
    /// the model would exceed line rate; excess is NOT redistributed —
    /// callers treat the result as offered load per fiber.
    pub fn loads(&self, fibers: usize, total_load: f64) -> Vec<f64> {
        assert!(fibers > 0, "need at least one fiber");
        assert!(total_load >= 0.0, "load must be non-negative");
        let weights: Vec<f64> = match *self {
            FiberFill::Uniform => vec![1.0; fibers],
            FiberFill::FirstFilled { used } => {
                let used = used.clamp(1, fibers);
                (0..fibers)
                    .map(|f| if f < used { 1.0 } else { 0.0 })
                    .collect()
            }
            FiberFill::Linear => (0..fibers).map(|f| (fibers - f) as f64).collect(),
            FiberFill::Geometric { ratio } => {
                let r = ratio.clamp(f64::MIN_POSITIVE, 1.0);
                (0..fibers).map(|f| r.powi(f as i32)).collect()
            }
        };
        let sum: f64 = weights.iter().sum();
        weights
            .into_iter()
            .map(|w| (w / sum * total_load).min(1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_evenly() {
        let l = FiberFill::Uniform.loads(8, 4.0);
        assert!(l.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    #[test]
    fn first_filled_concentrates() {
        let l = FiberFill::FirstFilled { used: 4 }.loads(16, 4.0);
        assert!(l[..4].iter().all(|&x| (x - 1.0).abs() < 1e-12));
        assert!(l[4..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn first_filled_clamps_used() {
        let l = FiberFill::FirstFilled { used: 100 }.loads(4, 2.0);
        assert!(l.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    #[test]
    fn linear_is_monotonically_decreasing() {
        let l = FiberFill::Linear.loads(10, 5.0);
        assert!(l.windows(2).all(|w| w[0] >= w[1]));
        assert!((l.iter().sum::<f64>() - 5.0).abs() < 1e-9);
        assert!(l[0] > 2.0 * l[9]);
    }

    #[test]
    fn geometric_decays() {
        let l = FiberFill::Geometric { ratio: 0.5 }.loads(4, 1.0);
        assert!((l[0] / l[1] - 2.0).abs() < 1e-9);
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_fiber_load_clamped_to_line_rate() {
        // Total load 15 over geometric decay would push fiber 0 over 1.0.
        let l = FiberFill::Geometric { ratio: 0.25 }.loads(4, 15.0);
        assert!(l.iter().all(|&x| x <= 1.0));
    }
}
