//! Trace-level fault injection, in the spirit of smoltcp's
//! `--drop-chance` / `--corrupt-chance` example switches: degrade a
//! packet trace before feeding it to a switch, to exercise loss and
//! corruption handling deterministically.

use rand::Rng;
use rip_sim::rng::rng_for;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// What happened to the trace under injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Packets passed through unharmed.
    pub passed: u64,
    /// Packets silently dropped.
    pub dropped: u64,
    /// Packets passed with corrupted size (truncated on the wire).
    pub corrupted: u64,
    /// Packets delivered out of order (held back past a later packet).
    #[serde(default)]
    pub reordered: u64,
    /// Packets emitted twice (the copy carries a marked id).
    #[serde(default)]
    pub duplicated: u64,
}

/// A deterministic packet-trace fault injector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Probability a packet is dropped.
    pub drop_chance: f64,
    /// Probability a surviving packet is truncated (its size halved,
    /// floor 64 B) — the switch will still carry it; end hosts would
    /// discard it on checksum.
    pub corrupt_chance: f64,
    /// Probability a surviving packet is held back and re-emitted after
    /// the next survivor, with its arrival bumped so timestamps stay
    /// non-decreasing. Models a reordering hop.
    #[serde(default)]
    pub reorder_chance: f64,
    /// Probability a surviving packet is emitted twice. The copy keeps
    /// size and arrival but carries the original id with its top bit
    /// set, so duplicates are distinguishable downstream.
    #[serde(default)]
    pub duplicate_chance: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Id marker bit carried by duplicated packets.
pub const DUPLICATE_ID_BIT: u64 = 1 << 63;

impl FaultInjector {
    /// Build an injector; chances are clamped to `[0, 1]`. Reordering
    /// and duplication start at zero; see [`FaultInjector::with_reorder`]
    /// and [`FaultInjector::with_duplicate`].
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
            reorder_chance: 0.0,
            duplicate_chance: 0.0,
            seed,
        }
    }

    /// Set the reordering probability (clamped to `[0, 1]`).
    pub fn with_reorder(mut self, chance: f64) -> Self {
        self.reorder_chance = chance.clamp(0.0, 1.0);
        self
    }

    /// Set the duplication probability (clamped to `[0, 1]`).
    pub fn with_duplicate(mut self, chance: f64) -> Self {
        self.duplicate_chance = chance.clamp(0.0, 1.0);
        self
    }

    /// Apply the faults to `trace`, returning the degraded trace and a
    /// summary. Timestamps in the output are non-decreasing; packet
    /// order is preserved except where reordering is injected.
    pub fn apply(&self, trace: &[Packet]) -> (Vec<Packet>, FaultSummary) {
        let mut rng = rng_for(self.seed, 0xFA17);
        let mut out = Vec::with_capacity(trace.len());
        let mut summary = FaultSummary::default();
        let mut held: Option<Packet> = None;
        for p in trace {
            if rng.random_bool(self.drop_chance) {
                summary.dropped += 1;
                continue;
            }
            let q = if rng.random_bool(self.corrupt_chance) {
                let mut q = *p;
                q.size = rip_units::DataSize::from_bytes((p.size.bytes() / 2).max(64));
                summary.corrupted += 1;
                q
            } else {
                summary.passed += 1;
                *p
            };
            if held.is_none() && rng.random_bool(self.reorder_chance) {
                held = Some(q);
                continue;
            }
            let arrival = q.arrival;
            out.push(q);
            if rng.random_bool(self.duplicate_chance) {
                let mut dup = q;
                dup.id |= DUPLICATE_ID_BIT;
                summary.duplicated += 1;
                out.push(dup);
            }
            if let Some(mut h) = held.take() {
                h.arrival = h.arrival.max(arrival);
                summary.reordered += 1;
                out.push(h);
            }
        }
        // A packet still held at end of trace was never overtaken:
        // emit it in place, uncounted.
        if let Some(h) = held {
            out.push(h);
        }
        (out, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_units::{DataSize, SimTime};

    fn trace(n: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i, 0, 0, DataSize::from_bytes(1000), SimTime::from_ns(i)))
            .collect()
    }

    #[test]
    fn zero_chances_pass_everything() {
        let inj = FaultInjector::new(0.0, 0.0, 1);
        let (out, s) = inj.apply(&trace(100));
        assert_eq!(out.len(), 100);
        assert_eq!(s.passed, 100);
        assert_eq!(s.dropped + s.corrupted, 0);
    }

    #[test]
    fn drop_chance_drops_about_the_right_fraction() {
        let inj = FaultInjector::new(0.15, 0.0, 2);
        let (out, s) = inj.apply(&trace(20_000));
        let frac = s.dropped as f64 / 20_000.0;
        assert!((frac - 0.15).abs() < 0.02, "{frac}");
        assert_eq!(out.len() as u64, s.passed);
        // Ordering preserved.
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn corruption_truncates_surviving_packets() {
        let inj = FaultInjector::new(0.0, 1.0, 3);
        let (out, s) = inj.apply(&trace(50));
        assert_eq!(s.corrupted, 50);
        assert!(out.iter().all(|p| p.size == DataSize::from_bytes(500)));
    }

    #[test]
    fn corruption_floors_at_64_bytes() {
        let inj = FaultInjector::new(0.0, 1.0, 3);
        let tiny = vec![Packet::new(
            0,
            0,
            0,
            DataSize::from_bytes(80),
            SimTime::ZERO,
        )];
        let (out, _) = inj.apply(&tiny);
        assert_eq!(out[0].size, DataSize::from_bytes(64));
    }

    #[test]
    fn deterministic_per_seed() {
        let t = trace(1000);
        let a = FaultInjector::new(0.2, 0.1, 7).apply(&t);
        let b = FaultInjector::new(0.2, 0.1, 7).apply(&t);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = FaultInjector::new(0.2, 0.1, 8).apply(&t);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn reorder_swaps_but_keeps_timestamps_monotone() {
        let inj = FaultInjector::new(0.0, 0.0, 11).with_reorder(0.3);
        let t = trace(5000);
        let (out, s) = inj.apply(&t);
        assert_eq!(out.len(), 5000, "reordering neither adds nor removes");
        assert!(s.reordered > 1000 && s.reordered < 2000, "{}", s.reordered);
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Same multiset of ids, different order.
        let mut ids: Vec<u64> = out.iter().map(|p| p.id).collect();
        assert!(ids.windows(2).any(|w| w[0] > w[1]), "no inversion seen");
        ids.sort_unstable();
        assert_eq!(ids, (0..5000).collect::<Vec<u64>>());
        // Determinism.
        assert_eq!(inj.apply(&t), inj.apply(&t));
    }

    #[test]
    fn duplicates_carry_marked_ids() {
        let inj = FaultInjector::new(0.0, 0.0, 13).with_duplicate(1.0);
        let t = trace(50);
        let (out, s) = inj.apply(&t);
        assert_eq!(s.duplicated, 50);
        assert_eq!(out.len(), 100);
        for pair in out.chunks(2) {
            assert_eq!(pair[1].id, pair[0].id | DUPLICATE_ID_BIT);
            assert_eq!(pair[1].size, pair[0].size);
            assert_eq!(pair[1].arrival, pair[0].arrival);
        }
    }

    #[test]
    fn reorder_and_duplicate_compose_with_drops() {
        let inj = FaultInjector::new(0.1, 0.05, 17)
            .with_reorder(0.1)
            .with_duplicate(0.1);
        let t = trace(10_000);
        let (out, s) = inj.apply(&t);
        assert_eq!(s.passed + s.corrupted + s.dropped, 10_000);
        assert_eq!(out.len() as u64, s.passed + s.corrupted + s.duplicated);
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(s.reordered > 0 && s.duplicated > 0);
    }

    #[test]
    fn builders_clamp() {
        let inj = FaultInjector::new(0.0, 0.0, 1)
            .with_reorder(5.0)
            .with_duplicate(-2.0);
        assert_eq!(inj.reorder_chance, 1.0);
        assert_eq!(inj.duplicate_chance, 0.0);
    }

    #[test]
    fn chances_clamp() {
        let inj = FaultInjector::new(7.0, -3.0, 1);
        assert_eq!(inj.drop_chance, 1.0);
        assert_eq!(inj.corrupt_chance, 0.0);
        let (out, s) = inj.apply(&trace(10));
        assert!(out.is_empty());
        assert_eq!(s.dropped, 10);
    }
}
