//! Trace-level fault injection, in the spirit of smoltcp's
//! `--drop-chance` / `--corrupt-chance` example switches: degrade a
//! packet trace before feeding it to a switch, to exercise loss and
//! corruption handling deterministically.

use rand::Rng;
use rip_sim::rng::rng_for;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;

/// What happened to the trace under injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Packets passed through unharmed.
    pub passed: u64,
    /// Packets silently dropped.
    pub dropped: u64,
    /// Packets passed with corrupted size (truncated on the wire).
    pub corrupted: u64,
}

/// A deterministic packet-trace fault injector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Probability a packet is dropped.
    pub drop_chance: f64,
    /// Probability a surviving packet is truncated (its size halved,
    /// floor 64 B) — the switch will still carry it; end hosts would
    /// discard it on checksum.
    pub corrupt_chance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FaultInjector {
    /// Build an injector; chances are clamped to `[0, 1]`.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Apply the faults to `trace`, returning the degraded trace and a
    /// summary. Order and timestamps of surviving packets are kept.
    pub fn apply(&self, trace: &[Packet]) -> (Vec<Packet>, FaultSummary) {
        let mut rng = rng_for(self.seed, 0xFA17);
        let mut out = Vec::with_capacity(trace.len());
        let mut summary = FaultSummary::default();
        for p in trace {
            if rng.random_bool(self.drop_chance) {
                summary.dropped += 1;
                continue;
            }
            if rng.random_bool(self.corrupt_chance) {
                let mut q = *p;
                q.size = rip_units::DataSize::from_bytes((p.size.bytes() / 2).max(64));
                summary.corrupted += 1;
                out.push(q);
            } else {
                summary.passed += 1;
                out.push(*p);
            }
        }
        (out, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_units::{DataSize, SimTime};

    fn trace(n: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet::new(i, 0, 0, DataSize::from_bytes(1000), SimTime::from_ns(i)))
            .collect()
    }

    #[test]
    fn zero_chances_pass_everything() {
        let inj = FaultInjector::new(0.0, 0.0, 1);
        let (out, s) = inj.apply(&trace(100));
        assert_eq!(out.len(), 100);
        assert_eq!(s.passed, 100);
        assert_eq!(s.dropped + s.corrupted, 0);
    }

    #[test]
    fn drop_chance_drops_about_the_right_fraction() {
        let inj = FaultInjector::new(0.15, 0.0, 2);
        let (out, s) = inj.apply(&trace(20_000));
        let frac = s.dropped as f64 / 20_000.0;
        assert!((frac - 0.15).abs() < 0.02, "{frac}");
        assert_eq!(out.len() as u64, s.passed);
        // Ordering preserved.
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn corruption_truncates_surviving_packets() {
        let inj = FaultInjector::new(0.0, 1.0, 3);
        let (out, s) = inj.apply(&trace(50));
        assert_eq!(s.corrupted, 50);
        assert!(out.iter().all(|p| p.size == DataSize::from_bytes(500)));
    }

    #[test]
    fn corruption_floors_at_64_bytes() {
        let inj = FaultInjector::new(0.0, 1.0, 3);
        let tiny = vec![Packet::new(
            0,
            0,
            0,
            DataSize::from_bytes(80),
            SimTime::ZERO,
        )];
        let (out, _) = inj.apply(&tiny);
        assert_eq!(out[0].size, DataSize::from_bytes(64));
    }

    #[test]
    fn deterministic_per_seed() {
        let t = trace(1000);
        let a = FaultInjector::new(0.2, 0.1, 7).apply(&t);
        let b = FaultInjector::new(0.2, 0.1, 7).apply(&t);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = FaultInjector::new(0.2, 0.1, 8).apply(&t);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn chances_clamp() {
        let inj = FaultInjector::new(7.0, -3.0, 1);
        assert_eq!(inj.drop_chance, 1.0);
        assert_eq!(inj.corrupt_chance, 0.0);
        let (out, s) = inj.apply(&trace(10));
        assert!(out.is_empty());
        assert_eq!(s.dropped, 10);
    }
}
