//! Pull-based packet sources.
//!
//! The batch pipeline materializes a complete `Vec<Packet>` before the
//! first event fires, so memory grows linearly with the simulated
//! horizon. A [`PacketSource`] instead yields packets one at a time in
//! non-decreasing arrival order, letting the event loops pull arrivals
//! as simulated time advances and keeping memory proportional to the
//! number of packets actually in flight.
//!
//! Determinism contract: a source is a pure function of its
//! construction parameters (seed included). Pulling the same source
//! twice yields the same packet sequence, and the adapters here
//! ([`BoundedSource`], [`MergedSource`], [`ReplaySource`]) are written
//! so that collecting a source reproduces, byte for byte, the vector
//! the batch helpers ([`PacketGenerator::generate_until`],
//! [`merge_streams`]) would have built:
//!
//! * [`BoundedSource`] stops exactly like `generate_until` — the first
//!   packet beyond the horizon is generated (consuming the same RNG
//!   draws) and then discarded.
//! * [`MergedSource`] breaks ties with the same `(arrival, input, id)`
//!   key as `merge_streams`'s stable sort, falling back to lane
//!   insertion order on full ties.
//!
//! [`PacketGenerator::generate_until`]: crate::PacketGenerator::generate_until
//! [`merge_streams`]: crate::merge_streams

use rip_units::SimTime;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::packet::Packet;
use crate::PacketGenerator;

/// A pull-based stream of packets in non-decreasing arrival order.
///
/// `next_packet` returns `None` once the stream is exhausted; after
/// that it must keep returning `None`. Implementations must be
/// deterministic: the yielded sequence depends only on construction
/// parameters, never on wall-clock time or pull timing.
pub trait PacketSource {
    /// The next packet, or `None` when the stream has ended.
    fn next_packet(&mut self) -> Option<Packet>;

    /// Adapt this source into a plain [`Iterator`] over packets.
    fn packets(self) -> Packets<Self>
    where
        Self: Sized,
    {
        Packets { source: self }
    }
}

impl<S: PacketSource + ?Sized> PacketSource for &mut S {
    fn next_packet(&mut self) -> Option<Packet> {
        (**self).next_packet()
    }
}

/// A source whose mutable position can be checkpointed and restored.
///
/// `save_state` captures everything that changes as packets are pulled
/// (RNG state, stream position, lookahead buffers) as a [`Value`]
/// tree; `restore_state` rewinds a *freshly constructed, identically
/// configured* source to that position. The static configuration
/// (seed, load, weights, flow pool) is **not** part of the state — the
/// resuming process rebuilds it from the run spec, exactly as the
/// original process did, then restores the position on top.
///
/// Contract: for any source `s`, `save_state` → pull k packets →
/// construct an identical source → `restore_state` must yield the same
/// next k packets (and the same exhaustion point). The checkpoint
/// equivalence suite holds every implementation to it.
pub trait StatefulSource {
    /// Capture the mutable pull position.
    fn save_state(&self) -> Value;

    /// Restore a previously captured position onto a freshly built,
    /// identically configured source.
    fn restore_state(&mut self, state: &Value) -> Result<(), DeError>;
}

impl<S: StatefulSource + ?Sized> StatefulSource for &mut S {
    fn save_state(&self) -> Value {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        (**self).restore_state(state)
    }
}

impl<S: StatefulSource + ?Sized> StatefulSource for Box<S> {
    fn save_state(&self) -> Value {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        (**self).restore_state(state)
    }
}

impl<S: PacketSource + ?Sized> PacketSource for Box<S> {
    fn next_packet(&mut self) -> Option<Packet> {
        (**self).next_packet()
    }
}

impl PacketSource for PacketGenerator {
    fn next_packet(&mut self) -> Option<Packet> {
        PacketGenerator::next_packet(self)
    }
}

/// Iterator adapter returned by [`PacketSource::packets`].
#[derive(Debug)]
pub struct Packets<S> {
    source: S,
}

impl<S: PacketSource> Iterator for Packets<S> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        self.source.next_packet()
    }
}

/// Truncates an inner source at an arrival horizon.
///
/// Matches [`PacketGenerator::generate_until`] exactly: the first
/// packet whose arrival exceeds `horizon` is pulled from the inner
/// source (so any RNG state it consumed is consumed here too) and then
/// discarded; the stream ends and the inner source is never pulled
/// again.
///
/// [`PacketGenerator::generate_until`]: crate::PacketGenerator::generate_until
#[derive(Debug)]
pub struct BoundedSource<S> {
    inner: S,
    horizon: SimTime,
    done: bool,
}

impl<S: PacketSource> BoundedSource<S> {
    /// Bound `inner` to packets arriving at or before `horizon`.
    pub fn new(inner: S, horizon: SimTime) -> Self {
        Self {
            inner,
            horizon,
            done: false,
        }
    }
}

impl<S: PacketSource> PacketSource for BoundedSource<S> {
    fn next_packet(&mut self) -> Option<Packet> {
        if self.done {
            return None;
        }
        match self.inner.next_packet() {
            Some(p) if p.arrival <= self.horizon => Some(p),
            _ => {
                // First overshoot (or inner exhaustion) ends the
                // stream; the overshooting packet is dropped, exactly
                // like `generate_until`'s final partial gap.
                self.done = true;
                None
            }
        }
    }
}

#[derive(Serialize, Deserialize)]
struct BoundedState {
    inner: Value,
    done: bool,
}

impl<S: StatefulSource> StatefulSource for BoundedSource<S> {
    fn save_state(&self) -> Value {
        BoundedState {
            inner: self.inner.save_state(),
            done: self.done,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let s = BoundedState::from_value(state)?;
        self.inner.restore_state(&s.inner)?;
        self.done = s.done;
        Ok(())
    }
}

/// Deterministic k-way merge of packet sources.
///
/// Yields the globally arrival-ordered interleaving of its lanes,
/// breaking ties by `(arrival, input, id)` — the same key
/// [`merge_streams`] sorts by — and, on full key ties, by lane
/// insertion order (which is what `merge_streams`'s stable sort
/// preserves). Each lane buffers at most one pending packet, so the
/// merge runs in O(lanes) memory regardless of horizon.
///
/// [`merge_streams`]: crate::merge_streams
#[derive(Debug)]
pub struct MergedSource<S> {
    lanes: Vec<Lane<S>>,
}

#[derive(Debug)]
struct Lane<S> {
    source: S,
    /// One-packet lookahead; `None` once the lane is exhausted and the
    /// buffered packet has been yielded.
    pending: Option<Packet>,
    /// Whether the underlying source has ended (stop pulling it).
    done: bool,
}

impl<S: PacketSource> MergedSource<S> {
    /// Merge `sources`; lane order is the tie-break of last resort.
    pub fn new(sources: Vec<S>) -> Self {
        let lanes = sources
            .into_iter()
            .map(|source| Lane {
                source,
                pending: None,
                done: false,
            })
            .collect();
        Self { lanes }
    }
}

impl<S: PacketSource> PacketSource for MergedSource<S> {
    fn next_packet(&mut self) -> Option<Packet> {
        // Refill lookaheads, then take the lane whose pending packet
        // has the smallest (arrival, input, id); strict `<` keeps the
        // earliest lane on full ties.
        let mut best: Option<usize> = None;
        for i in 0..self.lanes.len() {
            if self.lanes[i].pending.is_none() && !self.lanes[i].done {
                match self.lanes[i].source.next_packet() {
                    Some(p) => self.lanes[i].pending = Some(p),
                    None => self.lanes[i].done = true,
                }
            }
            if let Some(p) = &self.lanes[i].pending {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let q = self.lanes[b].pending.as_ref().expect("best has pending");
                        (p.arrival, p.input, p.id) < (q.arrival, q.input, q.id)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best.and_then(|i| self.lanes[i].pending.take())
    }
}

#[derive(Serialize, Deserialize)]
struct LaneState {
    inner: Value,
    pending: Option<Packet>,
    done: bool,
}

#[derive(Serialize, Deserialize)]
struct MergedState {
    lanes: Vec<LaneState>,
}

impl<S: StatefulSource> StatefulSource for MergedSource<S> {
    fn save_state(&self) -> Value {
        MergedState {
            lanes: self
                .lanes
                .iter()
                .map(|l| LaneState {
                    inner: l.source.save_state(),
                    pending: l.pending,
                    done: l.done,
                })
                .collect(),
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let s = MergedState::from_value(state)?;
        if s.lanes.len() != self.lanes.len() {
            return Err(DeError::custom(format!(
                "merged source has {} lanes, snapshot has {}",
                self.lanes.len(),
                s.lanes.len()
            )));
        }
        for (lane, ls) in self.lanes.iter_mut().zip(&s.lanes) {
            lane.source.restore_state(&ls.inner)?;
            lane.pending = ls.pending;
            lane.done = ls.done;
        }
        Ok(())
    }
}

/// Replays a materialized, arrival-ordered slice as a source.
///
/// Back-compat shim: it lets the batch entry points (`run(&[Packet])`)
/// drive the streaming engine, and lets equivalence tests feed the
/// exact same trace to both engines.
#[derive(Debug, Clone)]
pub struct ReplaySource<'a> {
    trace: &'a [Packet],
    next: usize,
}

impl<'a> ReplaySource<'a> {
    /// Replay `trace` front to back.
    pub fn new(trace: &'a [Packet]) -> Self {
        Self { trace, next: 0 }
    }
}

impl PacketSource for ReplaySource<'_> {
    fn next_packet(&mut self) -> Option<Packet> {
        let p = self.trace.get(self.next)?;
        self.next += 1;
        Some(*p)
    }
}

impl StatefulSource for ReplaySource<'_> {
    fn save_state(&self) -> Value {
        (self.next as u64).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let next = u64::from_value(state)? as usize;
        if next > self.trace.len() {
            return Err(DeError::custom(format!(
                "replay position {next} beyond trace length {}",
                self.trace.len()
            )));
        }
        self.next = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{merge_streams, ArrivalProcess};
    use crate::size::SizeDistribution;
    use rip_units::DataRate;

    fn gen(input: usize, load: f64, seed: u64) -> PacketGenerator {
        PacketGenerator::new(
            input,
            DataRate::from_gbps(100),
            load,
            vec![1.0; 4],
            SizeDistribution::Imix,
            ArrivalProcess::Poisson,
            64,
            seed,
        )
        .expect("valid generator")
    }

    #[test]
    fn bounded_source_matches_generate_until() {
        let h = SimTime::from_ns(200_000);
        let batch = gen(0, 0.7, 9).generate_until(h);
        let streamed: Vec<Packet> = BoundedSource::new(gen(0, 0.7, 9), h).packets().collect();
        assert_eq!(batch, streamed);
        assert!(!batch.is_empty());
    }

    #[test]
    fn bounded_source_consumes_the_overshoot_like_generate_until() {
        let h = SimTime::from_ns(50_000);
        // After exhaustion both paths must leave the generator in the
        // same RNG state: the next packet drawn from each matches.
        let mut a = gen(1, 0.6, 17);
        let _ = a.generate_until(h);
        let mut bounded = BoundedSource::new(gen(1, 0.6, 17), h);
        while bounded.next_packet().is_some() {}
        assert_eq!(a.next_packet(), bounded.inner.next_packet());
    }

    #[test]
    fn bounded_source_of_zero_load_is_empty() {
        let mut s = BoundedSource::new(gen(0, 0.0, 1), SimTime::from_ns(1_000_000));
        assert_eq!(s.next_packet(), None);
        assert_eq!(s.next_packet(), None);
    }

    #[test]
    fn merged_source_matches_merge_streams() {
        let h = SimTime::from_ns(100_000);
        let batch = merge_streams(vec![
            gen(0, 0.5, 11).generate_until(h),
            gen(1, 0.5, 12).generate_until(h),
            gen(2, 0.8, 13).generate_until(h),
        ]);
        let streamed: Vec<Packet> = MergedSource::new(vec![
            BoundedSource::new(gen(0, 0.5, 11), h),
            BoundedSource::new(gen(1, 0.5, 12), h),
            BoundedSource::new(gen(2, 0.8, 13), h),
        ])
        .packets()
        .collect();
        assert_eq!(batch, streamed);
        assert!(!batch.is_empty());
    }

    #[test]
    fn merged_source_breaks_full_ties_by_lane_order() {
        // Two lanes with identical (arrival, input, id) packets: the
        // earlier lane must win, matching merge_streams' stable sort.
        let a = [Packet::new(
            5,
            0,
            1,
            rip_units::DataSize::from_bytes(100),
            SimTime::from_ns(10),
        )];
        let b = [Packet::new(
            5,
            0,
            2,
            rip_units::DataSize::from_bytes(200),
            SimTime::from_ns(10),
        )];
        let merged: Vec<Packet> =
            MergedSource::new(vec![ReplaySource::new(&a), ReplaySource::new(&b)])
                .packets()
                .collect();
        assert_eq!(merged[0].output, 1, "lane 0 wins the full tie");
        assert_eq!(merged[1].output, 2);
        let batch = merge_streams(vec![a.to_vec(), b.to_vec()]);
        assert_eq!(merged, batch);
    }

    #[test]
    fn save_restore_resumes_the_exact_stream() {
        let h = SimTime::from_ns(150_000);
        let mk = || {
            MergedSource::new(vec![
                BoundedSource::new(gen(0, 0.6, 31), h),
                BoundedSource::new(gen(1, 0.5, 32), h),
                BoundedSource::new(gen(2, 0.7, 33), h),
            ])
        };
        let mut live = mk();
        // Pull partway, snapshot, then drain the live source.
        let mut prefix = Vec::new();
        for _ in 0..200 {
            prefix.push(live.next_packet().expect("stream longer than 200"));
        }
        let state = live.save_state();
        let json = serde_json::to_string(&state.to_value()).unwrap();
        let tail: Vec<Packet> = live.packets().collect();
        // A fresh, identically configured source restored from the
        // serialized state must continue byte-identically.
        let mut resumed = mk();
        let v: Value = serde_json::from_str(&json).unwrap();
        resumed.restore_state(&v).unwrap();
        let resumed_tail: Vec<Packet> = resumed.packets().collect();
        assert!(!tail.is_empty());
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn restore_rejects_lane_count_mismatch() {
        let h = SimTime::from_ns(1_000);
        let two = MergedSource::new(vec![
            BoundedSource::new(gen(0, 0.5, 1), h),
            BoundedSource::new(gen(1, 0.5, 2), h),
        ]);
        let state = two.save_state();
        let mut one = MergedSource::new(vec![BoundedSource::new(gen(0, 0.5, 1), h)]);
        let err = one.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("lanes"));
    }

    #[test]
    fn replay_source_yields_the_slice() {
        let h = SimTime::from_ns(20_000);
        let trace = gen(3, 0.4, 21).generate_until(h);
        let replayed: Vec<Packet> = ReplaySource::new(&trace).packets().collect();
        assert_eq!(trace, replayed);
    }
}
