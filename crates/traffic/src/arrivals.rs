//! Arrival processes and the per-port packet generator.

use rand::rngs::StdRng;
use rand::Rng;
use rip_sim::rng::{exp_ps, rng_for, weighted_index};
use rip_units::{DataRate, SimTime, TimeDelta};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::packet::{FlowKey, Packet};
use crate::size::SizeDistribution;
use crate::source::StatefulSource;

/// The inter-arrival process of a packet generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival times at the target
    /// rate.
    Poisson,
    /// Constant bit rate: deterministic spacing at the target rate.
    Cbr,
    /// Markov-modulated on–off bursts: during ON periods packets arrive
    /// back-to-back at line rate; OFF periods are silent. Mean period
    /// lengths are chosen so the long-run average hits the target load.
    OnOff {
        /// Mean number of packets per burst.
        mean_burst_packets: f64,
    },
}

/// Generates a packet stream on one ingress port at a target load.
///
/// Destinations are drawn from a per-output weight vector (a traffic
/// matrix row); sizes from a [`SizeDistribution`]; flows from a pool of
/// `flows` persistent 5-tuples so ECMP/LAG hashing sees realistic flow
/// reuse. Fully deterministic given the seed.
#[derive(Debug, Clone)]
pub struct PacketGenerator {
    input: usize,
    line_rate: DataRate,
    load: f64,
    dest_weights: Vec<f64>,
    sizes: SizeDistribution,
    process: ArrivalProcess,
    flows: Vec<FlowKey>,
    rng: StdRng,
    next_id: u64,
    clock: SimTime,
    /// Remaining packets in the current ON burst (OnOff only).
    burst_left: u64,
}

impl PacketGenerator {
    /// Create a generator for `input`, emitting `load` × `line_rate` of
    /// traffic split over `dest_weights`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        input: usize,
        line_rate: DataRate,
        load: f64,
        dest_weights: Vec<f64>,
        sizes: SizeDistribution,
        process: ArrivalProcess,
        flows: usize,
        seed: u64,
    ) -> Result<Self, String> {
        if !(0.0..=1.0).contains(&load) {
            return Err(format!("load {load} out of [0, 1]"));
        }
        if line_rate.is_zero() {
            return Err("line rate must be positive".into());
        }
        sizes.validate()?;
        if dest_weights.is_empty() || dest_weights.iter().all(|&w| w <= 0.0) {
            return Err("destination weights must contain a positive entry".into());
        }
        if flows == 0 {
            return Err("need at least one flow".into());
        }
        let mut flow_rng = rng_for(seed, 0xF10 + input as u64);
        let flow_pool = (0..flows)
            .map(|_| FlowKey {
                src_ip: flow_rng.random(),
                dst_ip: flow_rng.random(),
                src_port: flow_rng.random(),
                dst_port: *[80u16, 443, 8080, 53][flow_rng.random_range(0..4)..][..1]
                    .first()
                    .expect("non-empty"),
                proto: if flow_rng.random_bool(0.8) { 6 } else { 17 },
            })
            .collect();
        Ok(PacketGenerator {
            input,
            line_rate,
            load,
            dest_weights,
            sizes,
            process,
            flows: flow_pool,
            rng: rng_for(seed, 0x9E4 + input as u64),
            next_id: (input as u64) << 40,
            clock: SimTime::ZERO,
            burst_left: 0,
        })
    }

    /// The ingress port this generator feeds.
    pub fn input(&self) -> usize {
        self.input
    }

    /// The configured load fraction.
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Mean inter-arrival time at the target load for the mean packet.
    fn mean_gap_ps(&self, size_bytes: f64) -> f64 {
        // time to serialize `size` at `load × rate`.
        let bits = size_bytes * 8.0;
        bits * 1e12 / (self.line_rate.bps() as f64 * self.load)
    }

    /// Generate the next packet. Returns `None` if the load is zero.
    pub fn next_packet(&mut self) -> Option<Packet> {
        if self.load == 0.0 {
            return None;
        }
        let size = self.sizes.sample(&mut self.rng);
        let wire_time = self.line_rate.transfer_time(size);
        let mean_gap = self.mean_gap_ps(size.bytes_f64());
        let gap = match self.process {
            ArrivalProcess::Poisson => TimeDelta::from_ps(exp_ps(&mut self.rng, mean_gap)),
            ArrivalProcess::Cbr => TimeDelta::from_ps(mean_gap as u64),
            ArrivalProcess::OnOff { mean_burst_packets } => {
                if self.burst_left == 0 {
                    // Draw a new burst; the OFF gap balances the load:
                    // E[off] = E[burst bytes serialization] x (1/load - 1).
                    let burst = (exp_ps(&mut self.rng, mean_burst_packets * 1000.0) / 1000).max(1);
                    self.burst_left = burst;
                    let mean_off = mean_gap * mean_burst_packets * (1.0 - self.load);
                    self.burst_left -= 1;
                    TimeDelta::from_ps(exp_ps(&mut self.rng, mean_off.max(1.0)))
                } else {
                    // Back-to-back at line rate within the burst.
                    self.burst_left -= 1;
                    wire_time
                }
            }
        };
        self.clock += gap;
        let output = weighted_index(&mut self.rng, &self.dest_weights)
            .expect("weights validated at construction");
        let flow_idx = self.rng.random_range(0..self.flows.len());
        let id = self.next_id;
        self.next_id += 1;
        Some(Packet {
            id,
            input: self.input,
            output,
            size,
            arrival: self.clock,
            flow: self.flows[flow_idx],
        })
    }

    /// Generate packets until `horizon`, in arrival order.
    ///
    /// The first packet drawn beyond the horizon is discarded (its RNG
    /// draws are consumed, not rewound) — callers use fresh generators
    /// per run. This is a materializing convenience wrapper over
    /// [`BoundedSource`](crate::BoundedSource); the streaming engines
    /// pull the same sequence incrementally instead.
    pub fn generate_until(&mut self, horizon: SimTime) -> Vec<Packet> {
        use crate::source::PacketSource as _;
        crate::source::BoundedSource::new(&mut *self, horizon)
            .packets()
            .collect()
    }
}

/// The mutable slice of a [`PacketGenerator`]: everything its pulls
/// advance. The flow pool, weights and size model are rebuilt from the
/// run spec on resume, so only the position needs to persist.
#[derive(Serialize, Deserialize)]
struct GeneratorState {
    rng: [u64; 4],
    next_id: u64,
    clock: SimTime,
    burst_left: u64,
}

impl StatefulSource for PacketGenerator {
    fn save_state(&self) -> Value {
        GeneratorState {
            rng: self.rng.state(),
            next_id: self.next_id,
            clock: self.clock,
            burst_left: self.burst_left,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let s = GeneratorState::from_value(state)?;
        self.rng = StdRng::from_state(s.rng);
        self.next_id = s.next_id;
        self.clock = s.clock;
        self.burst_left = s.burst_left;
        Ok(())
    }
}

/// Merge several per-port packet streams into one arrival-ordered vector.
pub fn merge_streams(mut streams: Vec<Vec<Packet>>) -> Vec<Packet> {
    let mut all: Vec<Packet> = streams.drain(..).flatten().collect();
    all.sort_by_key(|p| (p.arrival, p.input, p.id));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_units::DataSize;

    fn gen(load: f64, process: ArrivalProcess, seed: u64) -> PacketGenerator {
        PacketGenerator::new(
            0,
            DataRate::from_gbps(100),
            load,
            vec![1.0; 4],
            SizeDistribution::Fixed(DataSize::from_bytes(1000)),
            process,
            64,
            seed,
        )
        .unwrap()
    }

    #[test]
    fn poisson_hits_target_load() {
        let mut g = gen(0.6, ArrivalProcess::Poisson, 1);
        let horizon = SimTime::from_ns(2_000_000); // 2 ms
        let pkts = g.generate_until(horizon);
        let bits: u64 = pkts.iter().map(|p| p.size.bits()).sum();
        let load = bits as f64 / (100e9 * 2e-3);
        assert!((load - 0.6).abs() < 0.03, "observed load {load}");
    }

    #[test]
    fn cbr_is_evenly_spaced() {
        let mut g = gen(0.5, ArrivalProcess::Cbr, 2);
        let p1 = g.next_packet().unwrap();
        let p2 = g.next_packet().unwrap();
        let p3 = g.next_packet().unwrap();
        let gap1 = p2.arrival.since(p1.arrival);
        let gap2 = p3.arrival.since(p2.arrival);
        assert_eq!(gap1, gap2);
        // 1000 B at 50 Gb/s effective = 160 ns spacing.
        assert_eq!(gap1, TimeDelta::from_ns(160));
    }

    #[test]
    fn onoff_hits_target_load_and_bursts() {
        let mut g = gen(
            0.4,
            ArrivalProcess::OnOff {
                mean_burst_packets: 16.0,
            },
            3,
        );
        let horizon = SimTime::from_ns(4_000_000);
        let pkts = g.generate_until(horizon);
        let bits: u64 = pkts.iter().map(|p| p.size.bits()).sum();
        let load = bits as f64 / (100e9 * 4e-3);
        assert!((load - 0.4).abs() < 0.08, "observed load {load}");
        // Bursty: many consecutive gaps equal the wire time (80 ns).
        let wire = TimeDelta::from_ns(80);
        let back_to_back = pkts
            .windows(2)
            .filter(|w| w[1].arrival.since(w[0].arrival) == wire)
            .count();
        assert!(
            back_to_back as f64 > pkts.len() as f64 * 0.5,
            "only {back_to_back}/{} back-to-back",
            pkts.len()
        );
    }

    #[test]
    fn destinations_follow_weights() {
        let mut g = PacketGenerator::new(
            1,
            DataRate::from_gbps(100),
            0.9,
            vec![0.0, 1.0, 3.0, 0.0],
            SizeDistribution::Fixed(DataSize::from_bytes(500)),
            ArrivalProcess::Poisson,
            32,
            9,
        )
        .unwrap();
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[g.next_packet().unwrap().output] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = gen(0.7, ArrivalProcess::Poisson, 42);
        let mut b = gen(0.7, ArrivalProcess::Poisson, 42);
        for _ in 0..100 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
        let mut c = gen(0.7, ArrivalProcess::Poisson, 43);
        let diff = (0..100).any(|_| a.next_packet() != c.next_packet());
        assert!(diff);
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut g = gen(0.9, ArrivalProcess::Poisson, 5);
        let mut last = None;
        for _ in 0..100 {
            let p = g.next_packet().unwrap();
            if let Some(l) = last {
                assert!(p.id > l);
            }
            last = Some(p.id);
        }
    }

    #[test]
    fn zero_load_generates_nothing() {
        let mut g = gen(0.0, ArrivalProcess::Poisson, 5);
        assert!(g.next_packet().is_none());
        assert!(g.generate_until(SimTime::from_ns(100)).is_empty());
    }

    #[test]
    fn constructor_validation() {
        let mk = |load, weights: Vec<f64>, flows| {
            PacketGenerator::new(
                0,
                DataRate::from_gbps(10),
                load,
                weights,
                SizeDistribution::Imix,
                ArrivalProcess::Poisson,
                flows,
                1,
            )
        };
        assert!(mk(1.5, vec![1.0], 4).is_err());
        assert!(mk(0.5, vec![], 4).is_err());
        assert!(mk(0.5, vec![0.0], 4).is_err());
        assert!(mk(0.5, vec![1.0], 0).is_err());
    }

    #[test]
    fn merge_streams_orders_by_arrival() {
        let mut g1 = gen(0.5, ArrivalProcess::Poisson, 11);
        let mut g2 = gen(0.5, ArrivalProcess::Poisson, 12);
        let h = SimTime::from_ns(100_000);
        let merged = merge_streams(vec![g1.generate_until(h), g2.generate_until(h)]);
        assert!(merged.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(!merged.is_empty());
    }
}
