//! Synthetic traffic for the petabit router-in-a-package reproduction.
//!
//! The paper has no traces (it is a vision paper about a router that does
//! not exist yet); its traffic-dependent claims are distributional:
//! 100 % throughput for *admissible* matrices, SPS balance under hashed
//! (ECMP/LAG) traffic, imbalance under fill-order skew, and adversarial
//! concentration against a known split pattern. This crate generates
//! exactly those distributions:
//!
//! * [`Packet`] / [`FlowKey`] — variable-size packets with 5-tuple flows;
//! * [`SizeDistribution`] — 64 B / 1,500 B / IMIX / uniform / empirical
//!   packet-size mixes;
//! * [`TrafficMatrix`] — uniform, hotspot, permutation, log-normal and
//!   custom matrices with admissibility checks;
//! * [`PacketGenerator`] — Poisson / CBR / bursty on–off arrival
//!   processes targeting a load level on a port;
//! * [`FiberFill`] — per-fiber load skew models (operators connect the
//!   first fibers first — §2.1 Challenge 4);
//! * [`hash`] — ECMP/LAG 5-tuple hashing (FNV-1a and CRC-32C) used to
//!   spread flows over fibers/wavelengths;
//! * [`Attacker`] — adversarial generators that exploit a known split
//!   pattern (experiment E17);
//! * [`PacketSource`] — pull-based streaming: generators, bounded and
//!   k-way-merged sources, and slice replay, all byte-identical to the
//!   materialized batch helpers for the same seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversarial;
mod arrivals;
mod faults;
mod fill;
pub mod hash;
mod matrix;
mod packet;
mod size;
mod source;

pub use adversarial::Attacker;
pub use arrivals::{merge_streams, ArrivalProcess, PacketGenerator};
pub use faults::{FaultInjector, FaultSummary, DUPLICATE_ID_BIT};
pub use fill::FiberFill;
pub use matrix::TrafficMatrix;
pub use packet::{FlowKey, Packet};
pub use size::SizeDistribution;
pub use source::{
    BoundedSource, MergedSource, PacketSource, Packets, ReplaySource, StatefulSource,
};
