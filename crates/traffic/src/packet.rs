//! Packets and flows.

use rip_units::{DataSize, SimTime};
use serde::{Deserialize, Serialize};

/// A transport 5-tuple identifying a flow (for ECMP/LAG hashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
}

impl FlowKey {
    /// Serialize the tuple into the canonical 13-byte hash input.
    pub fn to_bytes(self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.proto;
        b
    }
}

/// One variable-length packet traversing the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique, monotonically increasing id (per generator).
    pub id: u64,
    /// Ingress port index (meaning depends on context: ribbon for the
    /// SPS level, switch-local port for an HBM switch).
    pub input: usize,
    /// Egress port index.
    pub output: usize,
    /// Wire size.
    pub size: DataSize,
    /// Arrival instant at the router.
    pub arrival: SimTime,
    /// The flow this packet belongs to.
    pub flow: FlowKey,
}

impl Packet {
    /// Convenience constructor for tests and simple workloads.
    pub fn new(id: u64, input: usize, output: usize, size: DataSize, arrival: SimTime) -> Self {
        Packet {
            id,
            input,
            output,
            size,
            arrival,
            flow: FlowKey {
                src_ip: 0x0A00_0000 | input as u32,
                dst_ip: 0x0A01_0000 | output as u32,
                src_port: (id % 0xFFFF) as u16,
                dst_port: 80,
                proto: 6,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_key_bytes_are_canonical() {
        let k = FlowKey {
            src_ip: 0x0102_0304,
            dst_ip: 0x0506_0708,
            src_port: 0x1122,
            dst_port: 0x3344,
            proto: 17,
        };
        assert_eq!(
            k.to_bytes(),
            [1, 2, 3, 4, 5, 6, 7, 8, 0x11, 0x22, 0x33, 0x44, 17]
        );
    }

    #[test]
    fn convenience_constructor_derives_flow() {
        let p = Packet::new(7, 3, 9, DataSize::from_bytes(64), SimTime::ZERO);
        assert_eq!(p.input, 3);
        assert_eq!(p.output, 9);
        assert_eq!(p.flow.src_ip & 0xFF, 3);
        assert_eq!(p.flow.dst_ip & 0xFF, 9);
    }
}
