//! Packet-size distributions.

use rand::Rng;
use rip_units::DataSize;
use serde::{Deserialize, Serialize};

/// A packet-size distribution.
///
/// The paper's baseline-degradation analysis (§3.1 Challenge 6) pivots on
/// packet size — 2.6× reduction at 1,500 B vs 39× at 64 B — so size
/// mixes are first-class here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Every packet the same size.
    Fixed(DataSize),
    /// Uniform over `[min, max]` bytes.
    Uniform {
        /// Smallest packet, bytes.
        min: u64,
        /// Largest packet, bytes.
        max: u64,
    },
    /// The classic "simple IMIX": 64 B (7 parts), 576 B (4 parts),
    /// 1,500 B (1 part).
    Imix,
    /// Arbitrary empirical mix of `(size, weight)` pairs.
    Empirical(Vec<(DataSize, f64)>),
}

impl SizeDistribution {
    /// Minimum Ethernet payload-bearing packet.
    pub const MIN_PACKET: DataSize = DataSize::from_bytes(64);
    /// Classic Ethernet MTU-sized packet.
    pub const MAX_PACKET: DataSize = DataSize::from_bytes(1500);

    /// Draw one packet size.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> DataSize {
        match self {
            SizeDistribution::Fixed(s) => *s,
            SizeDistribution::Uniform { min, max } => {
                DataSize::from_bytes(rng.random_range(*min..=*max))
            }
            SizeDistribution::Imix => {
                let x = rng.random_range(0u32..12);
                if x < 7 {
                    DataSize::from_bytes(64)
                } else if x < 11 {
                    DataSize::from_bytes(576)
                } else {
                    DataSize::from_bytes(1500)
                }
            }
            SizeDistribution::Empirical(pairs) => {
                let weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
                let mut r = rip_sim::rng::weighted_index(rng, &weights)
                    .expect("empirical distribution needs positive weights");
                if r >= pairs.len() {
                    r = pairs.len() - 1;
                }
                pairs[r].0
            }
        }
    }

    /// Mean packet size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeDistribution::Fixed(s) => s.bytes_f64(),
            SizeDistribution::Uniform { min, max } => (*min + *max) as f64 / 2.0,
            SizeDistribution::Imix => (7.0 * 64.0 + 4.0 * 576.0 + 1500.0) / 12.0,
            SizeDistribution::Empirical(pairs) => {
                let total: f64 = pairs.iter().map(|(_, w)| w).sum();
                pairs.iter().map(|(s, w)| s.bytes_f64() * w / total).sum()
            }
        }
    }

    /// Validate the distribution parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SizeDistribution::Fixed(s) if s.is_zero() => Err("fixed size must be positive".into()),
            SizeDistribution::Uniform { min, max } if min > max || *min == 0 => {
                Err(format!("bad uniform range [{min}, {max}]"))
            }
            SizeDistribution::Empirical(pairs) => {
                if pairs.is_empty() || pairs.iter().all(|(_, w)| *w <= 0.0) {
                    Err("empirical distribution needs positive weights".into())
                } else if pairs.iter().any(|(s, _)| s.is_zero()) {
                    Err("empirical sizes must be positive".into())
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_sim::rng::rng_for;

    #[test]
    fn fixed_always_same() {
        let mut rng = rng_for(1, 0);
        let d = SizeDistribution::Fixed(DataSize::from_bytes(64));
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), DataSize::from_bytes(64));
        }
        assert_eq!(d.mean_bytes(), 64.0);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = rng_for(2, 0);
        let d = SizeDistribution::Uniform { min: 64, max: 1500 };
        for _ in 0..1000 {
            let s = d.sample(&mut rng).bytes();
            assert!((64..=1500).contains(&s));
        }
        assert_eq!(d.mean_bytes(), 782.0);
    }

    #[test]
    fn imix_proportions_and_mean() {
        let mut rng = rng_for(3, 0);
        let d = SizeDistribution::Imix;
        let n = 60_000;
        let mut small = 0;
        let mut mid = 0;
        let mut big = 0;
        for _ in 0..n {
            match d.sample(&mut rng).bytes() {
                64 => small += 1,
                576 => mid += 1,
                1500 => big += 1,
                other => panic!("unexpected IMIX size {other}"),
            }
        }
        assert!((small as f64 / n as f64 - 7.0 / 12.0).abs() < 0.02);
        assert!((mid as f64 / n as f64 - 4.0 / 12.0).abs() < 0.02);
        assert!((big as f64 / n as f64 - 1.0 / 12.0).abs() < 0.02);
        assert!((d.mean_bytes() - 354.33).abs() < 0.01);
    }

    #[test]
    fn empirical_respects_weights() {
        let mut rng = rng_for(4, 0);
        let d = SizeDistribution::Empirical(vec![
            (DataSize::from_bytes(100), 1.0),
            (DataSize::from_bytes(200), 3.0),
        ]);
        let n = 20_000;
        let count200 = (0..n).filter(|_| d.sample(&mut rng).bytes() == 200).count();
        assert!((count200 as f64 / n as f64 - 0.75).abs() < 0.02);
        assert_eq!(d.mean_bytes(), 175.0);
    }

    #[test]
    fn validation() {
        assert!(SizeDistribution::Fixed(DataSize::ZERO).validate().is_err());
        assert!(SizeDistribution::Uniform { min: 10, max: 5 }
            .validate()
            .is_err());
        assert!(SizeDistribution::Uniform { min: 0, max: 5 }
            .validate()
            .is_err());
        assert!(SizeDistribution::Empirical(vec![]).validate().is_err());
        assert!(
            SizeDistribution::Empirical(vec![(DataSize::from_bytes(10), 0.0)])
                .validate()
                .is_err()
        );
        assert!(SizeDistribution::Imix.validate().is_ok());
    }
}
