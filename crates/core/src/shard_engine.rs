//! Shard-side input engines for the conservative-window parallel DES
//! ([`HbmSwitch`](crate::HbmSwitch) with
//! [`EngineKind::Sharded`](crate::EngineKind::Sharded)).
//!
//! The switch's dataflow is unidirectional through the input stage:
//! per-port sources, the per-input [`BatchAssembler`] VOQs, the flush
//! timers and the input-crossbar serialization frontier receive no
//! feedback from the SRAM/HBM core. A [`ShardEngine`] therefore owns a
//! partition of the input ports and simulates that whole stage ahead of
//! the core on a worker thread, emitting every externally visible
//! consequence as a timestamped boundary message ([`ShardFx`]). The
//! serial core replays those messages at the exact `(time, seq)` points
//! the sequential engine would have produced them, so reports, event
//! traces and live telemetry are byte-identical to
//! [`EngineKind::Sequential`](crate::EngineKind::Sequential) — the
//! kernel-equivalence suite enforces this for every shipped config.
//!
//! The one apparent feedback edge — the fault-vs-congestion
//! classification of an input drop reads the core's `active_faults`
//! counter — is split: the shard decides only *drop-vs-admit* (a pure
//! function of its own assembler occupancy against the input queue
//! limit), and the core classifies the drop at replay time.
//!
//! Effects travel in blocks over a bounded channel. The block
//! granularity is set by the HBM command lookahead bound
//! ([`HbmTiming::lookahead_bound`](rip_hbm::HbmTiming::lookahead_bound)):
//! a shard closes a block once it spans one conservative window (or
//! hits the event cap) and ships it, and the bounded channel throttles
//! how far any shard may run ahead of the core. Safety never depends on
//! the window length — any [`ShardTuning`] yields byte-identical output
//! (the equivalence proptest randomizes it); the window only trades
//! messaging overhead against shard run-ahead.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, SyncSender};

use rip_sim::VecPool;
use rip_telemetry::{prof_lap, prof_now_sampled, EngineProfiler, Phase};
use rip_traffic::hash::{fiber_wavelength_for, HashKind};
use rip_traffic::{FlowKey, MergedSource, Packet, PacketSource};
use rip_units::{DataSize, SimTime, TimeDelta};

use crate::batch::{Batch, BatchAssembler, Chunk};

/// Window/block tuning for the sharded engine. Every setting is
/// byte-identical to every other (and to the sequential engine) — the
/// knobs only trade cross-thread messaging against shard run-ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTuning {
    /// Ship a block once it holds this many boundary effects.
    pub block_events: usize,
    /// Ship a block once it spans this many HBM lookahead bounds of
    /// sim time (the conservative window).
    pub window_mult: u64,
    /// Bounded-channel depth in blocks; the backpressure horizon that
    /// caps how far a shard runs ahead of the core.
    pub channel_blocks: usize,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            block_events: 256,
            window_mult: 64,
            channel_blocks: 4,
        }
    }
}

impl ShardTuning {
    /// Clamp degenerate values (zero caps would never ship a block).
    pub(crate) fn sanitized(self) -> Self {
        ShardTuning {
            block_events: self.block_events.max(1),
            window_mult: self.window_mult.max(1),
            channel_blocks: self.channel_blocks.max(1),
        }
    }
}

/// Everything a shard needs from the router configuration, extracted so
/// the worker thread borrows nothing from the switch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardParams {
    pub ribbons: usize,
    pub batch_size: DataSize,
    pub input_queue_limit: DataSize,
    pub batch_timeout_batches: u64,
    pub batch_time: TimeDelta,
    /// Egress fibers per ribbon (for the ingress ECMP lane memo).
    pub fibers: usize,
    pub wavelengths: usize,
    /// Sim-time span after which a block is shipped.
    pub window: TimeDelta,
    pub block_events: usize,
}

/// One timestamped boundary message from a shard to the core.
#[derive(Debug)]
pub(crate) enum ShardFx {
    Arrival(ArrivalFx),
    Flush(FlushFx),
}

/// Everything the core must replay for one packet arrival.
#[derive(Debug)]
pub(crate) struct ArrivalFx {
    pub p: Packet,
    /// False: the input VOQ group was over the queue limit — the core
    /// records the drop (classifying fault-vs-congestion itself).
    pub admitted: bool,
    /// The arrival armed the `(input, output)` flush timer; the core
    /// schedules the `FlushTimeout` event so the global event order
    /// matches the sequential engine's.
    pub arm_flush: bool,
    /// Completed batches with their precomputed `BatchAtTail` dispatch
    /// times (the shard owns the input-crossbar frontier).
    pub batches: Vec<(SimTime, Batch)>,
    /// The input's total VOQ occupancy after this arrival (for the
    /// core's `input_peak` stat and shutdown check).
    pub queued_after: DataSize,
}

/// Everything the core must replay when a flush timer fires.
#[derive(Debug)]
pub(crate) struct FlushFx {
    pub input: usize,
    pub output: usize,
    /// Fire time; asserted against the popped `FlushTimeout` event.
    pub fire: SimTime,
    /// The padded batch (if the VOQ was non-empty) with its precomputed
    /// `BatchAtTail` dispatch time.
    pub batch: Option<(SimTime, Batch)>,
    pub queued_after: DataSize,
}

impl ShardFx {
    fn at(&self) -> SimTime {
        match self {
            ShardFx::Arrival(a) => a.p.arrival,
            ShardFx::Flush(f) => f.fire,
        }
    }
}

/// The input-stage simulator for one partition of the ports. Runs on a
/// worker thread; its only output is the ordered [`ShardFx`] stream.
pub(crate) struct ShardEngine<S> {
    merged: MergedSource<S>,
    /// One-packet lookahead over the merged partition.
    pending: Option<Packet>,
    source_done: bool,
    /// Indexed by global input port; only this shard's ports are used.
    assemblers: Vec<BatchAssembler>,
    xbar_free: Vec<SimTime>,
    flush_pending: Vec<Vec<bool>>,
    /// Armed flush timers as `(fire, input, output)`. Fire = arm time +
    /// a constant timeout and arms happen in dispatch order, so fires
    /// are non-decreasing and a FIFO stays sorted.
    armed: VecDeque<(SimTime, usize, usize)>,
    /// Ingress ECMP lane memo: flow → pre-hashed egress lane. Real
    /// routers resolve the ECMP/LAG lane once at ingress lookup; the
    /// memo makes the (identical) hash a per-flow rather than per-chunk
    /// cost. See [`Chunk::lane`].
    lane_memo: HashMap<FlowKey, u32>,
    pool: VecPool<Chunk>,
    scratch: Vec<Batch>,
    params: ShardParams,
    /// Wall-clock self-profiler for this worker (`None` = off):
    /// `ShardBusy` is partition compute, `ShardSend` time blocked on
    /// the bounded effect channel. One record flushes at end of run.
    prof: Option<EngineProfiler>,
}

impl<S: PacketSource> ShardEngine<S> {
    pub(crate) fn new(params: ShardParams, ports: Vec<S>) -> Self {
        let n = params.ribbons;
        ShardEngine {
            merged: MergedSource::new(ports),
            pending: None,
            source_done: false,
            assemblers: (0..n)
                .map(|i| BatchAssembler::new(i, n, params.batch_size))
                .collect(),
            xbar_free: vec![SimTime::ZERO; n],
            flush_pending: vec![vec![false; n]; n],
            armed: VecDeque::new(),
            lane_memo: HashMap::new(),
            pool: VecPool::default(),
            scratch: Vec::new(),
            params,
            prof: None,
        }
    }

    /// Attach (or clear) the worker's self-profiler.
    pub(crate) fn with_profiler(mut self, prof: Option<EngineProfiler>) -> Self {
        self.prof = prof;
        self
    }

    /// Simulate the partition to exhaustion, shipping effect blocks.
    /// Returns early (discarding the rest) once the core hangs up —
    /// that is how a horizon break on the core side stops the workers.
    pub(crate) fn run(mut self, tx: SyncSender<Vec<ShardFx>>) {
        let mut block: Vec<ShardFx> = Vec::with_capacity(self.params.block_events);
        let mut block_start = SimTime::ZERO;
        loop {
            let mut t0 = prof_now_sampled(&mut self.prof);
            if self.pending.is_none() && !self.source_done {
                match self.merged.next_packet() {
                    Some(p) => self.pending = Some(p),
                    None => self.source_done = true,
                }
            }
            let next_arrival = self.pending.as_ref().map(|p| p.arrival);
            let next_fire = self.armed.front().map(|&(f, _, _)| f);
            // Same tie rule as the global loop: arrivals dispatch first
            // at equal times.
            let fx = match (next_arrival, next_fire) {
                (None, None) => break,
                (Some(a), f) if f.is_none_or(|f| a <= f) => {
                    let p = self.pending.take().expect("peeked");
                    ShardFx::Arrival(self.dispatch_arrival(p))
                }
                _ => {
                    let (fire, i, o) = self.armed.pop_front().expect("peeked");
                    ShardFx::Flush(self.dispatch_flush(fire, i, o))
                }
            };
            let at = fx.at();
            if block.is_empty() {
                block_start = at;
            }
            block.push(fx);
            let ship = block.len() >= self.params.block_events
                || at.saturating_since(block_start) >= self.params.window;
            prof_lap(&mut self.prof, Phase::ShardBusy, &mut t0);
            if ship {
                let sent = tx.send(std::mem::take(&mut block));
                prof_lap(&mut self.prof, Phase::ShardSend, &mut t0);
                if sent.is_err() {
                    break;
                }
            }
        }
        if !block.is_empty() {
            let _ = tx.send(block);
        }
        if let Some(p) = self.prof.as_mut() {
            p.flush_nonempty();
        }
    }

    /// Mirror of the sequential `on_arrival` restricted to shard-owned
    /// state, with every core-visible consequence captured in the
    /// returned effect.
    fn dispatch_arrival(&mut self, p: Packet) -> ArrivalFx {
        let now = p.arrival;
        let i = p.input;
        if self.assemblers[i].total_queued() + p.size > self.params.input_queue_limit {
            return ArrivalFx {
                queued_after: self.assemblers[i].total_queued(),
                p,
                admitted: false,
                arm_flush: false,
                batches: Vec::new(),
            };
        }
        let was_empty = self.assemblers[i].queued(p.output).is_zero();
        let lane = self.lane_for(p.flow);
        let mut batches = std::mem::take(&mut self.scratch);
        debug_assert!(batches.is_empty());
        self.assemblers[i].push_tagged(&p, lane, &mut self.pool, &mut batches);
        let queued_after = self.assemblers[i].total_queued();
        let arm_flush = was_empty
            && self.params.batch_timeout_batches > 0
            && !self.assemblers[i].queued(p.output).is_zero()
            && !self.flush_pending[i][p.output];
        if arm_flush {
            self.flush_pending[i][p.output] = true;
            let fire = now + self.params.batch_time * self.params.batch_timeout_batches;
            self.armed.push_back((fire, i, p.output));
        }
        let timed: Vec<(SimTime, Batch)> = batches
            .drain(..)
            .map(|b| (self.send_time(i, now), b))
            .collect();
        self.scratch = batches;
        ArrivalFx {
            p,
            admitted: true,
            arm_flush,
            batches: timed,
            queued_after,
        }
    }

    /// Mirror of the sequential `FlushTimeout` handler.
    fn dispatch_flush(&mut self, fire: SimTime, i: usize, o: usize) -> FlushFx {
        self.flush_pending[i][o] = false;
        let batch = if !self.assemblers[i].queued(o).is_zero() {
            self.assemblers[i]
                .flush_with(o, &mut self.pool)
                .map(|b| (self.send_time(i, fire), b))
        } else {
            None
        };
        FlushFx {
            input: i,
            output: o,
            fire,
            batch,
            queued_after: self.assemblers[i].total_queued(),
        }
    }

    /// The `BatchAtTail` dispatch time of one batch sent from input `i`
    /// at `now` — the shard-owned copy of `send_batch`'s crossbar
    /// serialization frontier.
    fn send_time(&mut self, i: usize, now: SimTime) -> SimTime {
        let dt = self.params.batch_time;
        let t0 = now.max(self.xbar_free[i]);
        self.xbar_free[i] = t0 + dt;
        t0 + dt + dt
    }

    fn lane_for(&mut self, flow: FlowKey) -> u32 {
        let params = &self.params;
        *self.lane_memo.entry(flow).or_insert_with(|| {
            let (fiber, wavelength) =
                fiber_wavelength_for(flow, params.fibers, params.wavelengths, HashKind::Crc32c);
            (fiber * params.wavelengths + wavelength) as u32
        })
    }
}

/// Core-side view of one shard's effect stream: demultiplexes arrivals
/// (consumed in merged `(arrival, input, id)` order) from flush effects
/// (consumed in shard emission order when the matching `FlushTimeout`
/// event pops).
pub(crate) struct ShardStream {
    rx: Receiver<Vec<ShardFx>>,
    arrivals: VecDeque<ArrivalFx>,
    flushes: VecDeque<FlushFx>,
    open: bool,
    /// Time the blocked `recv` calls when true (profiling on).
    timed: bool,
    recv_ns: u64,
    recv_waits: u64,
}

impl ShardStream {
    pub(crate) fn new(rx: Receiver<Vec<ShardFx>>) -> Self {
        ShardStream {
            rx,
            arrivals: VecDeque::new(),
            flushes: VecDeque::new(),
            open: true,
            timed: false,
            recv_ns: 0,
            recv_waits: 0,
        }
    }

    /// Enable blocked-`recv` wall-clock accounting (profiling on).
    pub(crate) fn timed(mut self, timed: bool) -> Self {
        self.timed = timed;
        self
    }

    /// Nanoseconds spent blocked in `recv` so far.
    pub(crate) fn recv_wait_ns(&self) -> u64 {
        self.recv_ns
    }

    /// Number of blocking `recv` calls so far.
    pub(crate) fn recv_waits(&self) -> u64 {
        self.recv_waits
    }

    fn pull_block(&mut self) {
        let t0 = self.timed.then(std::time::Instant::now);
        let pulled = self.rx.recv();
        if let Some(t0) = t0 {
            self.recv_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recv_waits += 1;
        }
        match pulled {
            Ok(block) => {
                for fx in block {
                    match fx {
                        ShardFx::Arrival(a) => self.arrivals.push_back(a),
                        ShardFx::Flush(f) => self.flushes.push_back(f),
                    }
                }
            }
            Err(_) => self.open = false,
        }
    }

    /// The shard's next undispatched arrival, blocking on the worker if
    /// its current window has not shipped yet. `None` once the shard is
    /// done and every arrival was consumed.
    pub(crate) fn peek_arrival(&mut self) -> Option<&ArrivalFx> {
        while self.arrivals.is_empty() && self.open {
            self.pull_block();
        }
        self.arrivals.front()
    }

    pub(crate) fn pop_arrival(&mut self) -> ArrivalFx {
        self.arrivals.pop_front().expect("peek_arrival first")
    }

    /// The shard's next flush effect. The caller holds a popped
    /// `FlushTimeout{input, output}` at time `f`, so every shard
    /// arrival `<= f` was already consumed (the arrival-first tie rule
    /// runs on both sides) and the effect is buffered or next in the
    /// stream — this never blocks past the shard's current window.
    pub(crate) fn next_flush(&mut self) -> Option<FlushFx> {
        while self.flushes.is_empty() && self.open {
            self.pull_block();
        }
        self.flushes.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_traffic::ReplaySource;
    use rip_units::DataRate;

    fn params() -> ShardParams {
        ShardParams {
            ribbons: 4,
            batch_size: DataSize::from_kib(4),
            input_queue_limit: DataSize::from_kib(64),
            batch_timeout_batches: 4,
            batch_time: DataRate::from_gbps(640).transfer_time(DataSize::from_kib(4)),
            fibers: 4,
            wavelengths: 4,
            window: TimeDelta::from_ns(640),
            block_events: 8,
        }
    }

    fn pkt(id: u64, input: usize, output: usize, bytes: u64, at_ns: u64) -> Packet {
        Packet::new(
            id,
            input,
            output,
            DataSize::from_bytes(bytes),
            SimTime::from_ns(at_ns),
        )
    }

    /// Effects arrive in non-decreasing time order, arrivals-first on
    /// ties, with flush effects for armed timers exactly once.
    #[test]
    fn effect_stream_is_time_ordered_and_complete() {
        let trace = vec![
            pkt(1, 0, 1, 1500, 0),
            pkt(2, 0, 1, 9000, 10),
            pkt(3, 2, 3, 400, 20),
        ];
        let engine = ShardEngine::new(params(), vec![ReplaySource::new(&trace)]);
        let (tx, rx) = std::sync::mpsc::sync_channel(16);
        engine.run(tx);
        let mut all = Vec::new();
        while let Ok(block) = rx.recv() {
            all.extend(block);
        }
        let mut last = SimTime::ZERO;
        let mut arrivals = 0;
        let mut arms = 0;
        let mut fires = 0;
        for fx in &all {
            assert!(fx.at() >= last, "stream must be time-ordered");
            last = fx.at();
            match fx {
                ShardFx::Arrival(a) => {
                    arrivals += 1;
                    assert!(a.admitted);
                    if a.arm_flush {
                        arms += 1;
                    }
                }
                ShardFx::Flush(_) => fires += 1,
            }
        }
        assert_eq!(arrivals, 3);
        assert_eq!(arms, fires, "every armed timer fires exactly once");
        assert!(fires >= 1, "partial batches must flush");
    }

    /// The jumbo packet (9000 B > two 4 KiB batches) yields batches with
    /// strictly increasing dispatch times on the shared input crossbar.
    #[test]
    fn batch_dispatch_times_respect_the_crossbar_frontier() {
        let trace = vec![pkt(1, 0, 1, 9000, 0)];
        let engine = ShardEngine::new(params(), vec![ReplaySource::new(&trace)]);
        let (tx, rx) = std::sync::mpsc::sync_channel(16);
        engine.run(tx);
        let mut times = Vec::new();
        while let Ok(block) = rx.recv() {
            for fx in block {
                match fx {
                    ShardFx::Arrival(a) => times.extend(a.batches.iter().map(|&(t, _)| t)),
                    ShardFx::Flush(f) => times.extend(f.batch.iter().map(|&(t, _)| t)),
                }
            }
        }
        assert!(times.len() >= 2, "jumbo must form at least two batches");
        for w in times.windows(2) {
            assert!(w[1] > w[0], "crossbar serializes batches per input");
        }
    }

    /// Over-limit arrivals are reported, not admitted, and leave the
    /// assembler untouched.
    #[test]
    fn over_limit_arrival_is_reported_as_a_drop_decision() {
        let mut p = params();
        p.input_queue_limit = DataSize::from_bytes(2000);
        let trace = vec![pkt(1, 0, 1, 1500, 0), pkt(2, 0, 1, 1500, 1)];
        let engine = ShardEngine::new(p, vec![ReplaySource::new(&trace)]);
        let (tx, rx) = std::sync::mpsc::sync_channel(16);
        engine.run(tx);
        let mut decisions = Vec::new();
        while let Ok(block) = rx.recv() {
            for fx in block {
                if let ShardFx::Arrival(a) = fx {
                    decisions.push((a.p.id, a.admitted, a.queued_after));
                }
            }
        }
        assert_eq!(decisions.len(), 2);
        assert!(decisions[0].1, "first packet fits");
        assert!(!decisions[1].1, "second exceeds the limit");
        assert_eq!(
            decisions[1].2, decisions[0].2,
            "a dropped packet leaves occupancy unchanged"
        );
    }
}
