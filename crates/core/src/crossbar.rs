//! The N×N cyclical crossbar (§3.2 ➁(i)): a pure rotation, no
//! scheduling.

use serde::{Deserialize, Serialize};

/// An `N × N` cyclical crossbar: at slot `t`, input `i` is connected to
/// module `(i + t) mod N`.
///
/// Because the connection pattern is a rotation, every slot is a
/// permutation — no two inputs ever contend for a module, so the
/// crossbar needs no scheduler and can be built from 1-D multiplexors
/// with cyclic selects (or an equivalent spatial-division mesh; §3.2).
///
/// An input holding a batch sliced into `N` slices sends slice `j` to
/// module `j`, "always starting from the first SRAM module": it starts
/// at the first slot where it faces module 0 and then emits one slice
/// per slot, walking the modules in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CyclicalCrossbar {
    n: usize,
}

impl CyclicalCrossbar {
    /// An `n × n` rotation crossbar.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        CyclicalCrossbar { n }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The module input `i` is connected to at slot `t`.
    pub fn module_for(&self, input: usize, slot: u64) -> usize {
        assert!(input < self.n);
        ((input as u64 + slot) % self.n as u64) as usize
    }

    /// The input connected to `module` at slot `t`.
    pub fn input_for(&self, module: usize, slot: u64) -> usize {
        assert!(module < self.n);
        let m = module as u64 + self.n as u64 - (slot % self.n as u64);
        (m % self.n as u64) as usize
    }

    /// The first slot ≥ `from` at which `input` faces module 0 — the
    /// slot a new batch starts its slice walk.
    pub fn next_start_slot(&self, input: usize, from: u64) -> u64 {
        assert!(input < self.n);
        // Need (input + t) ≡ 0 (mod n) -> t ≡ -input.
        let want = (self.n - input) % self.n;
        let rem = (from % self.n as u64) as usize;
        let add = (want + self.n - rem) % self.n;
        from + add as u64
    }

    /// Slots needed to stripe one `n`-slice batch (one slice per slot).
    pub fn slots_per_batch(&self) -> u64 {
        self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_a_permutation_every_slot() {
        let xb = CyclicalCrossbar::new(16);
        for slot in 0..40u64 {
            let mut seen = [false; 16];
            for i in 0..16 {
                let m = xb.module_for(i, slot);
                assert!(!seen[m], "slot {slot}: module {m} hit twice");
                seen[m] = true;
            }
        }
    }

    #[test]
    fn inverse_mapping_round_trips() {
        let xb = CyclicalCrossbar::new(7);
        for slot in 0..21u64 {
            for i in 0..7 {
                let m = xb.module_for(i, slot);
                assert_eq!(xb.input_for(m, slot), i);
            }
        }
    }

    #[test]
    fn start_slot_faces_module_zero() {
        let xb = CyclicalCrossbar::new(8);
        for input in 0..8 {
            for from in 0..30u64 {
                let s = xb.next_start_slot(input, from);
                assert!(s >= from && s < from + 8);
                assert_eq!(xb.module_for(input, s), 0);
            }
        }
    }

    #[test]
    fn slice_walk_visits_modules_in_order() {
        let xb = CyclicalCrossbar::new(4);
        let start = xb.next_start_slot(2, 5);
        let walk: Vec<usize> = (0..4).map(|j| xb.module_for(2, start + j)).collect();
        assert_eq!(walk, vec![0, 1, 2, 3]);
        assert_eq!(xb.slots_per_batch(), 4);
    }

    #[test]
    fn trivial_1x1() {
        let xb = CyclicalCrossbar::new(1);
        assert_eq!(xb.module_for(0, 12345), 0);
        assert_eq!(xb.next_start_slot(0, 7), 7);
    }
}
