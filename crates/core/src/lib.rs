//! # Petabit Router-in-a-Package — core library
//!
//! This crate implements the two architectural contributions of
//! *"Petabit Router-in-a-Package: Rethinking Internet Routers in the Age
//! of In-Packaged Optics and Heterogeneous Integration"* (Keslassy &
//! Lin, HotNets '25), on top of the workspace's HBM device simulator
//! (`rip-hbm`), photonics front end (`rip-photonics`) and traffic
//! generators (`rip-traffic`):
//!
//! 1. **The Split-Parallel Switch** ([`SpsRouter`], §2): the incoming
//!    fibers of each ribbon are spatially split — without processing —
//!    across `H` independent HBM switches, so every packet crosses
//!    exactly one O/E→E/O conversion.
//! 2. **The HBM switch with Parallel Frame Interleaving**
//!    ([`HbmSwitch`], §3): input ports pack variable-size packets into
//!    `k = 4 KiB` batches in per-output SRAM queues; an `N×N` cyclical
//!    crossbar stripes batches over `N` tail-SRAM modules; batches
//!    aggregate into `K = 512 KiB` frames that the PFI engine writes to
//!    (and reads from) `B` HBM stacks at peak data rates using cyclical
//!    staggered bank interleaving; head SRAM and output ports unpack
//!    frames back into packets and hash them over the egress
//!    fibers/wavelengths.
//!
//! The switch is a deterministic discrete-event simulation running
//! against a command-level HBM4 timing model — every ACT/RD/WR/PRE/REFsb
//! the PFI schedule implies is issued and validated against
//! JEDEC-style rules.
//!
//! ## Quick start
//!
//! ```
//! use rip_core::{HbmSwitch, RouterConfig};
//! use rip_traffic::{Packet, TrafficMatrix};
//! use rip_units::{DataSize, SimTime};
//!
//! let cfg = RouterConfig::small(); // ratio-preserving scaled config
//! let switch = HbmSwitch::new(cfg).unwrap();
//! let trace = vec![Packet::new(1, 0, 2, DataSize::from_bytes(1500), SimTime::ZERO)];
//! let report = switch.run(&trace, SimTime::from_ns(1_000_000));
//! assert_eq!(report.delivered_packets, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod crossbar;
mod error;
mod hbm_switch;
mod mimic;
mod output;
mod resilience;
mod shard_engine;
mod sps;
mod sram;

pub use batch::{Batch, BatchAssembler, Chunk, NO_LANE};
pub use config::{DrainPolicy, EngineKind, RouterConfig, SRAM_INTERFACE_BITS};
pub use crossbar::CyclicalCrossbar;
pub use error::ConfigError;
pub use hbm_switch::{HbmSwitch, RunOutcome, SwitchEvent, SwitchReport};
pub use mimic::{MimicChecker, MimicReport};
pub use output::{OutputPort, PacketDeparture};
pub use resilience::{FaultAction, FaultEvent, FaultKind, FaultPlan, FaultPlanError};
pub use shard_engine::ShardTuning;
pub use sps::{LiveOptions, PerSwitch, PlaneRun, PlaneSource, SpsReport, SpsRouter, SpsWorkload};
pub use sram::{Frame, HeadSram, SramOccupancy, TailSram};
