//! Typed configuration errors for the router core.

use std::error::Error;
use std::fmt;

use rip_hbm::PfiConfigError;
use rip_units::{DataRate, DataSize};

/// Everything [`crate::RouterConfig::validate`] (and the constructors
/// built on it) can reject, as a typed error instead of a bare string.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A structural count (ribbons, switches, stacks) is zero.
    ZeroCounts,
    /// `F` fibers per ribbon do not divide evenly over `H` switches.
    FiberSwitchDivisibility {
        /// F — fibers per ribbon.
        fibers: usize,
        /// H — switches.
        switches: usize,
    },
    /// The HBM geometry or timing set is inconsistent.
    Hbm(String),
    /// The internal speedup is outside the design's `[1, 4]` window.
    SpeedupOutOfRange(f64),
    /// HBM peak bandwidth does not cover `2·N·P ×` speedup.
    MemoryBelowRequired {
        /// Available HBM peak.
        peak: DataRate,
        /// Required memory I/O.
        needed: DataRate,
    },
    /// The frame size is not a whole number of batches.
    FrameBatchMismatch {
        /// K — frame size.
        frame: DataSize,
        /// k — batch size.
        batch: DataSize,
    },
    /// The head SRAM budget is zero frames.
    NoHeadFrames,
    /// A per-output HBM region cannot hold even two frames.
    RegionTooSmall,
    /// The drain policy's horizon factor is zero (the run would end
    /// before the arrival horizon itself).
    DrainFactorZero,
    /// The PFI engine rejected the derived interleaving parameters.
    Pfi(PfiConfigError),
    /// The optical front end rejected the split parameters.
    Photonics(String),
    /// The telemetry epoch period is zero (`epoch_ps` / `--epoch`
    /// would never close an epoch).
    EpochZero,
    /// A `--trace-window` specification was rejected.
    TraceWindow(rip_telemetry::TraceWindowError),
    /// The checkpoint interval is zero epochs (`--checkpoint-every 0`
    /// would snapshot never — or constantly, depending on how you read
    /// it; both are configuration mistakes).
    CheckpointIntervalZero,
    /// Checkpointing was requested without a telemetry epoch period:
    /// snapshots are taken at epoch boundaries, so there is no boundary
    /// to snapshot at.
    CheckpointNeedsEpochs,
    /// The snapshot path's parent directory does not exist or is not
    /// writable.
    CheckpointDir {
        /// The offending snapshot path, as given.
        path: String,
        /// The underlying I/O failure.
        reason: String,
    },
    /// A sharded engine was requested with zero shards.
    ZeroShards,
    /// A sharded engine was requested with more shards than input
    /// ports — the extra shards would own no ports.
    TooManyShards {
        /// Requested shard count.
        shards: usize,
        /// N — input ports available to shard over.
        ribbons: usize,
    },
    /// A plane subset handed to [`crate::SpsRouter::run_planes`] (or a
    /// `ripsim plane-worker` `--planes` list) is empty, unsorted,
    /// repeats a plane, or names a plane the router does not have.
    PlaneSubset {
        /// Why the subset was rejected.
        reason: String,
    },
    /// Checkpoint or resume was combined with the sharded engine.
    /// Snapshots capture the sequential loop's exact state (queue
    /// entries, feeder lookahead); the sharded engine's in-flight
    /// boundary messages are not in that state, so composing them would
    /// risk a silently wrong resume — rejected loudly instead.
    ShardedCheckpoint,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCounts => write!(f, "counts must be positive"),
            ConfigError::FiberSwitchDivisibility { fibers, switches } => {
                write!(f, "F = {fibers} not divisible by H = {switches}")
            }
            ConfigError::Hbm(msg) => write!(f, "HBM parameters invalid: {msg}"),
            ConfigError::SpeedupOutOfRange(s) => write!(f, "speedup {s} out of [1, 4]"),
            ConfigError::MemoryBelowRequired { peak, needed } => write!(
                f,
                "HBM peak {peak} below required {needed} (2·N·P × speedup)"
            ),
            ConfigError::FrameBatchMismatch { frame, batch } => {
                write!(f, "frame {frame} not a multiple of batch {batch}")
            }
            ConfigError::NoHeadFrames => {
                write!(f, "head SRAM must hold at least one frame")
            }
            ConfigError::RegionTooSmall => {
                write!(f, "per-output HBM region must hold at least 2 frames")
            }
            ConfigError::DrainFactorZero => {
                write!(f, "drain policy must cover at least 1× the arrival horizon")
            }
            ConfigError::Pfi(e) => write!(f, "PFI configuration invalid: {e}"),
            ConfigError::Photonics(msg) => {
                write!(f, "optical front end invalid: {msg}")
            }
            ConfigError::EpochZero => {
                write!(f, "telemetry epoch period must be positive")
            }
            ConfigError::TraceWindow(e) => write!(f, "{e}"),
            ConfigError::CheckpointIntervalZero => {
                write!(f, "checkpoint interval must be at least one epoch")
            }
            ConfigError::CheckpointNeedsEpochs => {
                write!(
                    f,
                    "checkpointing requires a telemetry epoch period (set epoch_ps or --epoch)"
                )
            }
            ConfigError::CheckpointDir { path, reason } => {
                write!(f, "snapshot path {path} is not writable: {reason}")
            }
            ConfigError::ZeroShards => {
                write!(f, "sharded engine needs at least one shard")
            }
            ConfigError::TooManyShards { shards, ribbons } => {
                write!(
                    f,
                    "sharded engine with {shards} shards exceeds the {ribbons} input ports available"
                )
            }
            ConfigError::PlaneSubset { reason } => {
                write!(f, "invalid plane subset: {reason}")
            }
            ConfigError::ShardedCheckpoint => {
                write!(
                    f,
                    "checkpoint/resume requires the sequential engine; the sharded engine cannot snapshot (run with --threads 1 or engine kind \"sequential\")"
                )
            }
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Pfi(e) => Some(e),
            ConfigError::TraceWindow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PfiConfigError> for ConfigError {
    fn from(e: PfiConfigError) -> Self {
        ConfigError::Pfi(e)
    }
}

impl From<rip_telemetry::TraceWindowError> for ConfigError {
    fn from(e: rip_telemetry::TraceWindowError) -> Self {
        ConfigError::TraceWindow(e)
    }
}
