//! Batch assembly (§3.2 ➀): variable-size packets are cut and assembled
//! into fixed-size batches at each input port's per-output SRAM queues.
//! Packets may straddle two batches.

use std::collections::VecDeque;

use rip_sim::VecPool;
use rip_traffic::{FlowKey, Packet};
use rip_units::{DataSize, SimTime};
use serde::{Deserialize, Serialize};

/// Sentinel egress-lane tag: the output port hashes the flow itself.
pub const NO_LANE: u32 = u32::MAX;

/// A contiguous piece of one packet inside a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunk {
    /// The packet id.
    pub packet: u64,
    /// Byte offset of this chunk within the packet.
    pub offset: u64,
    /// Chunk length.
    pub len: DataSize,
    /// True if this chunk carries the packet's last byte.
    pub is_last: bool,
    /// The packet's arrival time (threaded through for delay stats).
    pub arrival: SimTime,
    /// The packet's flow (threaded through for egress lane hashing).
    pub flow: FlowKey,
    /// Pre-hashed egress lane (`fiber * wavelengths + wavelength`), or
    /// [`NO_LANE`] to hash at the output port. Real routers resolve the
    /// ECMP/LAG lane once at ingress lookup and carry it in packet
    /// metadata; the sharded engine does the same (memoized per flow on
    /// the shard), while the sequential oracle keeps hashing at egress.
    /// The tag is pure plumbing: both paths evaluate the identical hash
    /// function, so reports never depend on which one ran.
    pub lane: u32,
}

/// One fixed-size batch of packet data for a single output (§3.2:
/// "variable-size packets arrive at per-output queues, where they are
/// cut and assembled into fixed-size batches").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Input port that formed the batch.
    pub input: usize,
    /// Output the batch is destined to.
    pub output: usize,
    /// Per-(input, output) batch sequence number.
    pub seq: u64,
    /// The packet chunks packed into the batch, in FIFO order.
    pub chunks: Vec<Chunk>,
    /// Padding bytes appended (only for timeout/bypass flushes).
    pub padding: DataSize,
}

impl Batch {
    /// Total payload bytes (excluding padding).
    pub fn payload(&self) -> DataSize {
        self.chunks.iter().map(|c| c.len).sum()
    }

    /// Payload + padding; always equals the configured batch size `k`.
    pub fn size(&self) -> DataSize {
        self.payload() + self.padding
    }
}

/// Per-output VOQ state inside one input port.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Voq {
    /// Queued (packet id, current offset, total size, arrival, flow,
    /// egress-lane tag).
    pending: VecDeque<(u64, u64, DataSize, SimTime, FlowKey, u32)>,
    /// Total queued bytes.
    queued: DataSize,
    /// Next batch sequence number.
    next_seq: u64,
}

/// The batch assembler of one input port: N per-output VOQs feeding
/// fixed-size batches, with packet straddling and optional padded
/// flushes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchAssembler {
    input: usize,
    batch_size: DataSize,
    voqs: Vec<Voq>,
}

impl BatchAssembler {
    /// An assembler for `input` with `outputs` VOQs and batch size `k`.
    pub fn new(input: usize, outputs: usize, batch_size: DataSize) -> Self {
        assert!(outputs > 0 && !batch_size.is_zero());
        assert!(
            batch_size.is_byte_aligned(),
            "batch size must be whole bytes"
        );
        BatchAssembler {
            input,
            batch_size,
            voqs: vec![Voq::default(); outputs],
        }
    }

    /// Bytes queued for `output` (not yet emitted in a batch).
    pub fn queued(&self, output: usize) -> DataSize {
        self.voqs[output].queued
    }

    /// Total bytes queued across all outputs.
    pub fn total_queued(&self) -> DataSize {
        self.voqs.iter().map(|v| v.queued).sum()
    }

    /// Enqueue a packet and return any batches completed by it
    /// (usually 0 or 1; more for packets larger than a batch).
    ///
    /// Convenience wrapper over [`BatchAssembler::push_into`] that
    /// allocates a fresh result vector — use `push_into` on hot paths.
    pub fn push(&mut self, p: &Packet) -> Vec<Batch> {
        let mut out = Vec::new();
        let mut pool = VecPool::new(0);
        self.push_into(p, &mut pool, &mut out);
        out
    }

    /// Enqueue a packet, appending any batches it completes to `out`
    /// (usually 0 or 1; more for packets larger than a batch). Chunk
    /// storage for new batches is drawn from `pool`, so a caller that
    /// retires drained batches back into the pool forms batches with no
    /// steady-state allocation.
    pub fn push_into(&mut self, p: &Packet, pool: &mut VecPool<Chunk>, out: &mut Vec<Batch>) {
        self.push_tagged(p, NO_LANE, pool, out);
    }

    /// [`BatchAssembler::push_into`] with a pre-hashed egress-lane tag
    /// stamped on every chunk the packet produces (see [`Chunk::lane`]).
    pub fn push_tagged(
        &mut self,
        p: &Packet,
        lane: u32,
        pool: &mut VecPool<Chunk>,
        out: &mut Vec<Batch>,
    ) {
        assert!(p.output < self.voqs.len(), "output out of range");
        assert!(!p.size.is_zero(), "empty packet");
        let voq = &mut self.voqs[p.output];
        voq.pending
            .push_back((p.id, 0, p.size, p.arrival, p.flow, lane));
        voq.queued += p.size;
        while self.voqs[p.output].queued >= self.batch_size {
            let b = self.form_batch(p.output, false, pool);
            out.push(b);
        }
    }

    /// Force out a padded batch from the partial VOQ contents of
    /// `output` (timeout flush / bypass). Returns `None` if empty.
    pub fn flush(&mut self, output: usize) -> Option<Batch> {
        let mut pool = VecPool::new(0);
        self.flush_with(output, &mut pool)
    }

    /// [`BatchAssembler::flush`] drawing chunk storage from `pool`.
    pub fn flush_with(&mut self, output: usize, pool: &mut VecPool<Chunk>) -> Option<Batch> {
        if self.voqs[output].queued.is_zero() {
            return None;
        }
        Some(self.form_batch(output, true, pool))
    }

    /// Build one batch from the head of `output`'s VOQ. With `pad`,
    /// allows a partial fill topped up with padding.
    fn form_batch(&mut self, output: usize, pad: bool, pool: &mut VecPool<Chunk>) -> Batch {
        let k = self.batch_size;
        let voq = &mut self.voqs[output];
        debug_assert!(pad || voq.queued >= k);
        let mut remaining = k;
        let mut chunks = pool.get();
        while !remaining.is_zero() {
            let Some((id, offset, size, arrival, flow, lane)) = voq.pending.front().copied() else {
                break;
            };
            let left = DataSize::from_bytes(size.bytes() - offset);
            let take = left.min(remaining);
            let is_last = take == left;
            chunks.push(Chunk {
                packet: id,
                offset,
                len: take,
                is_last,
                arrival,
                flow,
                lane,
            });
            remaining -= take;
            voq.queued -= take;
            if is_last {
                voq.pending.pop_front();
            } else {
                voq.pending.front_mut().expect("nonempty").1 = offset + take.bytes();
            }
        }
        let seq = voq.next_seq;
        voq.next_seq += 1;
        Batch {
            input: self.input,
            output,
            seq,
            chunks,
            padding: remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, output: usize, bytes: u64) -> Packet {
        Packet::new(id, 0, output, DataSize::from_bytes(bytes), SimTime::ZERO)
    }

    fn asm() -> BatchAssembler {
        BatchAssembler::new(0, 4, DataSize::from_kib(1))
    }

    #[test]
    fn no_batch_until_k_bytes() {
        let mut a = asm();
        assert!(a.push(&pkt(1, 0, 500)).is_empty());
        assert_eq!(a.queued(0), DataSize::from_bytes(500));
        let batches = a.push(&pkt(2, 0, 600));
        assert_eq!(batches.len(), 1);
        assert_eq!(a.queued(0), DataSize::from_bytes(76)); // 1100 - 1024
    }

    #[test]
    fn straddling_splits_a_packet_across_batches() {
        let mut a = asm();
        a.push(&pkt(1, 0, 500));
        let batches = a.push(&pkt(2, 0, 600));
        let b = &batches[0];
        assert_eq!(b.chunks.len(), 2);
        assert_eq!(b.chunks[0].packet, 1);
        assert!(b.chunks[0].is_last);
        assert_eq!(b.chunks[1].packet, 2);
        assert_eq!(b.chunks[1].len, DataSize::from_bytes(524));
        assert!(!b.chunks[1].is_last);
        assert_eq!(b.size(), DataSize::from_kib(1));
        assert_eq!(b.padding, DataSize::ZERO);
        // The rest of packet 2 surfaces in the next (padded) flush.
        let tail = a.flush(0).unwrap();
        assert_eq!(tail.chunks.len(), 1);
        assert_eq!(tail.chunks[0].packet, 2);
        assert_eq!(tail.chunks[0].offset, 524);
        assert!(tail.chunks[0].is_last);
        assert_eq!(tail.padding, DataSize::from_bytes(1024 - 76));
        assert_eq!(tail.size(), DataSize::from_kib(1));
    }

    #[test]
    fn jumbo_packet_fills_multiple_batches() {
        let mut a = asm();
        let batches = a.push(&pkt(1, 2, 3000));
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.output == 2));
        assert_eq!(batches[0].seq, 0);
        assert_eq!(batches[1].seq, 1);
        assert_eq!(a.queued(2), DataSize::from_bytes(3000 - 2048));
        // Only the final chunk is marked last.
        assert!(!batches[0].chunks[0].is_last);
        assert!(!batches[1].chunks[0].is_last);
        let tail = a.flush(2).unwrap();
        assert!(tail.chunks[0].is_last);
    }

    #[test]
    fn outputs_are_independent() {
        let mut a = asm();
        a.push(&pkt(1, 0, 1000));
        a.push(&pkt(2, 1, 1000));
        assert!(a.push(&pkt(3, 0, 100)).len() == 1);
        assert_eq!(a.queued(1), DataSize::from_bytes(1000));
        assert_eq!(a.total_queued(), DataSize::from_bytes(76 + 1000));
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut a = asm();
        assert!(a.flush(3).is_none());
    }

    #[test]
    fn byte_conservation_across_many_pushes() {
        let mut a = asm();
        let mut in_bytes = 0u64;
        let mut out_bytes = 0u64;
        for i in 0..500u64 {
            let size = 40 + (i * 97) % 1400;
            in_bytes += size;
            for b in a.push(&pkt(i, (i % 4) as usize, size)) {
                out_bytes += b.payload().bytes();
            }
        }
        for o in 0..4 {
            while let Some(b) = a.flush(o) {
                out_bytes += b.payload().bytes();
            }
        }
        assert_eq!(in_bytes, out_bytes);
        assert_eq!(a.total_queued(), DataSize::ZERO);
    }

    #[test]
    fn chunk_order_preserves_fifo_within_output() {
        let mut a = asm();
        let mut batches = Vec::new();
        for i in 0..20u64 {
            batches.extend(a.push(&pkt(i, 0, 300)));
        }
        while let Some(b) = a.flush(0) {
            batches.push(b);
        }
        // Concatenate chunk ids: packet ids must be non-decreasing and
        // offsets within a packet increasing.
        let mut last: Option<(u64, u64)> = None;
        for b in &batches {
            for c in &b.chunks {
                if let Some((lp, lo)) = last {
                    assert!(c.packet > lp || (c.packet == lp && c.offset > lo));
                }
                last = Some((c.packet, c.offset));
            }
        }
    }
}
