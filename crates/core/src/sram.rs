//! Tail and head SRAM stages (§3.2 ➁ and ➄).
//!
//! Physically these are `N` SRAM modules each holding one slice of every
//! batch (the cyclical crossbar keeps all modules in lockstep, one
//! staggered slot apart). Because the modules advance in lockstep, the
//! simulator tracks whole batches and frames; the per-module slice view
//! is exercised by the crossbar unit tests.

use std::collections::VecDeque;

use rip_units::DataSize;
use serde::{Deserialize, Serialize};

use crate::batch::Batch;

/// One frame: `K/k` batches for a single output, possibly padded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// The destination output.
    pub output: usize,
    /// The batches packed into the frame, FIFO order.
    pub batches: Vec<Batch>,
    /// Whole-batch padding added to fill the frame (bypass/padded sends).
    pub padded_batches: u64,
}

impl Frame {
    /// Payload bytes (excluding batch- and frame-level padding).
    pub fn payload(&self) -> DataSize {
        self.batches.iter().map(|b| b.payload()).sum()
    }
}

/// Occupancy accounting shared by the tail and head SRAM.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SramOccupancy {
    /// Current bytes held.
    pub bytes: DataSize,
    /// Peak bytes held.
    pub peak: DataSize,
}

impl SramOccupancy {
    fn add(&mut self, d: DataSize) {
        self.bytes += d;
        self.peak = self.peak.max(self.bytes);
    }

    fn sub(&mut self, d: DataSize) {
        self.bytes = self.bytes.saturating_sub(d);
    }
}

/// The tail SRAM (§3.2 ➁): batches arrive striped over the `N` modules,
/// accumulate in per-output queues, and graduate into frames of `K/k`
/// batches which enter a logical FIFO toward the HBM writer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TailSram {
    batches_per_frame: u64,
    /// Per-output batch accumulation queues.
    forming: Vec<VecDeque<Batch>>,
    occupancy: SramOccupancy,
}

impl TailSram {
    /// A tail SRAM for `outputs` outputs with `batches_per_frame` = K/k.
    pub fn new(outputs: usize, batches_per_frame: u64) -> Self {
        assert!(outputs > 0 && batches_per_frame > 0);
        TailSram {
            batches_per_frame,
            forming: vec![VecDeque::new(); outputs],
            occupancy: SramOccupancy::default(),
        }
    }

    /// Accept one batch; returns a full frame if this batch completed
    /// one (§3.2: "when the queue size of a module reaches K/k batch
    /// slices, it forms a new frame slice").
    pub fn push_batch(&mut self, batch: Batch) -> Option<Frame> {
        let o = batch.output;
        self.occupancy.add(batch.size());
        self.forming[o].push_back(batch);
        if self.forming[o].len() as u64 >= self.batches_per_frame {
            let batches: Vec<Batch> = self.forming[o]
                .drain(..self.batches_per_frame as usize)
                .collect();
            let size: DataSize = batches.iter().map(|b| b.size()).sum();
            self.occupancy.sub(size);
            Some(Frame {
                output: o,
                batches,
                padded_batches: 0,
            })
        } else {
            None
        }
    }

    /// Take whatever is queued for `output` as a padded frame (§4
    /// "Latency and bypass"). Returns `None` if nothing is queued.
    pub fn take_padded_frame(&mut self, output: usize) -> Option<Frame> {
        if self.forming[output].is_empty() {
            return None;
        }
        let batches: Vec<Batch> = self.forming[output].drain(..).collect();
        let size: DataSize = batches.iter().map(|b| b.size()).sum();
        self.occupancy.sub(size);
        let padded = self.batches_per_frame - batches.len() as u64;
        Some(Frame {
            output,
            batches,
            padded_batches: padded,
        })
    }

    /// Batches currently forming for `output`.
    pub fn forming_len(&self, output: usize) -> usize {
        self.forming[output].len()
    }

    /// Occupancy accounting.
    pub fn occupancy(&self) -> SramOccupancy {
        self.occupancy
    }
}

/// The head SRAM (§3.2 ➄): per-output frame buffers drained by the
/// output ports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeadSram {
    /// Per-output buffered frames.
    frames: Vec<VecDeque<Frame>>,
    /// Per-output limit, in frames.
    limit: usize,
    occupancy: SramOccupancy,
}

impl HeadSram {
    /// A head SRAM for `outputs` outputs holding up to `limit` frames
    /// each.
    pub fn new(outputs: usize, limit: usize) -> Self {
        assert!(outputs > 0 && limit > 0);
        HeadSram {
            frames: vec![VecDeque::new(); outputs],
            limit,
            occupancy: SramOccupancy::default(),
        }
    }

    /// True if `output` can accept another frame.
    pub fn has_room(&self, output: usize) -> bool {
        self.frames[output].len() < self.limit
    }

    /// Buffer a frame for its output.
    ///
    /// # Panics
    /// Panics if the output is full — the read engine must check
    /// [`HeadSram::has_room`] before fetching a frame.
    pub fn push_frame(&mut self, frame: Frame) {
        let o = frame.output;
        assert!(self.has_room(o), "head SRAM overflow on output {o}");
        self.occupancy.add(frame.payload());
        self.frames[o].push_back(frame);
    }

    /// Pop the next batch for `output`, cutting frames back into
    /// batches FIFO.
    pub fn pop_batch(&mut self, output: usize) -> Option<Batch> {
        let q = &mut self.frames[output];
        loop {
            let front = q.front_mut()?;
            if front.batches.is_empty() {
                q.pop_front();
                continue;
            }
            let batch = front.batches.remove(0);
            if front.batches.is_empty() {
                q.pop_front();
            }
            self.occupancy.sub(batch.payload());
            return Some(batch);
        }
    }

    /// Frames currently buffered for `output`.
    pub fn frames_buffered(&self, output: usize) -> usize {
        self.frames[output].len()
    }

    /// True if `output` has any batch to drain.
    pub fn has_data(&self, output: usize) -> bool {
        self.frames[output].iter().any(|f| !f.batches.is_empty())
    }

    /// Occupancy accounting.
    pub fn occupancy(&self) -> SramOccupancy {
        self.occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Chunk;
    use rip_units::SimTime;

    fn batch(output: usize, seq: u64, bytes: u64) -> Batch {
        Batch {
            input: 0,
            output,
            seq,
            chunks: vec![Chunk {
                packet: seq,
                offset: 0,
                len: DataSize::from_bytes(bytes),
                is_last: true,
                arrival: SimTime::ZERO,
                flow: rip_traffic::FlowKey {
                    src_ip: 1,
                    dst_ip: 2,
                    src_port: 3,
                    dst_port: 4,
                    proto: 6,
                },
                lane: crate::batch::NO_LANE,
            }],
            padding: DataSize::from_bytes(1024 - bytes),
        }
    }

    #[test]
    fn tail_forms_frame_after_k_over_k_batches() {
        let mut t = TailSram::new(4, 4);
        for seq in 0..3 {
            assert!(t.push_batch(batch(1, seq, 1000)).is_none());
        }
        assert_eq!(t.forming_len(1), 3);
        let f = t.push_batch(batch(1, 3, 1000)).expect("frame forms");
        assert_eq!(f.batches.len(), 4);
        assert_eq!(f.output, 1);
        assert_eq!(f.padded_batches, 0);
        assert_eq!(t.forming_len(1), 0);
        // Occupancy returned to zero.
        assert_eq!(t.occupancy().bytes, DataSize::ZERO);
        assert_eq!(t.occupancy().peak, DataSize::from_bytes(4096));
    }

    #[test]
    fn tail_outputs_are_independent() {
        let mut t = TailSram::new(2, 2);
        t.push_batch(batch(0, 0, 100));
        t.push_batch(batch(1, 0, 100));
        assert!(t.push_batch(batch(0, 1, 100)).is_some());
        assert_eq!(t.forming_len(1), 1);
    }

    #[test]
    fn padded_frame_takes_partial_contents() {
        let mut t = TailSram::new(2, 4);
        t.push_batch(batch(0, 0, 500));
        let f = t.take_padded_frame(0).expect("partial frame");
        assert_eq!(f.batches.len(), 1);
        assert_eq!(f.padded_batches, 3);
        assert!(t.take_padded_frame(0).is_none());
    }

    #[test]
    fn head_buffers_and_cuts_frames() {
        let mut h = HeadSram::new(2, 2);
        assert!(h.has_room(0));
        let f = Frame {
            output: 0,
            batches: vec![batch(0, 0, 700), batch(0, 1, 800)],
            padded_batches: 0,
        };
        h.push_frame(f);
        assert_eq!(h.frames_buffered(0), 1);
        assert!(h.has_data(0));
        let b0 = h.pop_batch(0).unwrap();
        assert_eq!(b0.seq, 0);
        let b1 = h.pop_batch(0).unwrap();
        assert_eq!(b1.seq, 1);
        assert!(h.pop_batch(0).is_none());
        assert!(!h.has_data(0));
        assert_eq!(h.occupancy().bytes, DataSize::ZERO);
    }

    #[test]
    fn head_room_limit_enforced() {
        let mut h = HeadSram::new(1, 1);
        h.push_frame(Frame {
            output: 0,
            batches: vec![batch(0, 0, 100)],
            padded_batches: 0,
        });
        assert!(!h.has_room(0));
    }

    #[test]
    #[should_panic(expected = "head SRAM overflow")]
    fn head_overflow_panics() {
        let mut h = HeadSram::new(1, 1);
        for seq in 0..2 {
            h.push_frame(Frame {
                output: 0,
                batches: vec![batch(0, seq, 100)],
                padded_batches: 0,
            });
        }
    }

    #[test]
    fn empty_frames_are_skipped_by_pop() {
        let mut h = HeadSram::new(1, 4);
        h.push_frame(Frame {
            output: 0,
            batches: vec![],
            padded_batches: 4,
        });
        h.push_frame(Frame {
            output: 0,
            batches: vec![batch(0, 9, 64)],
            padded_batches: 3,
        });
        let b = h.pop_batch(0).unwrap();
        assert_eq!(b.seq, 9);
        assert!(h.pop_batch(0).is_none());
    }
}
