//! The HBM switch (§3.2, Fig. 3): the full discrete-event composition of
//! input ports, cyclical crossbars, tail SRAM, the PFI-driven HBM group,
//! head SRAM and output ports.

use std::collections::{HashSet, VecDeque};

use rip_hbm::{HbmCommandKind, HbmGroup, PfiController};
use rip_sim::snapshot::SnapshotError;
use rip_sim::stats::Histogram;
use rip_sim::{
    EventQueue, EventSink, Feeder, QueueKind, Series, ShardedEventQueue, TraceLog, VecPool,
};
use rip_telemetry::{
    prof_add, prof_lap, prof_now, prof_now_sampled, prof_renew, EngineProfiler, EpochClock,
    MetricsRegistry, Phase, ProfileHub, Snapshot, SpanEvent, TelemetrySink, TraceRecorder,
    TraceWindow, PID_FRAMES, PID_HBM,
};
use rip_traffic::{MergedSource, Packet, PacketSource, ReplaySource, StatefulSource};
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::batch::{Batch, BatchAssembler, Chunk};
use crate::config::{EngineKind, RouterConfig};
use crate::error::ConfigError;
use crate::output::{OutputPort, PacketDeparture};
use crate::resilience::{FaultAction, FaultEvent, FaultKind, FaultPlan};
use crate::shard_engine::{ArrivalFx, FlushFx, ShardEngine, ShardParams, ShardStream, ShardTuning};
use crate::sram::{Frame, HeadSram, TailSram};

/// Observable milestones recorded by the optional switch trace
/// ([`HbmSwitch::enable_trace`]) — the simulator's pcap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchEvent {
    /// A full frame was written to the HBM for `output`.
    FrameWritten {
        /// Destination output.
        output: usize,
        /// Per-output frame index.
        index: u64,
    },
    /// A frame was read from the HBM for `output`.
    FrameRead {
        /// Destination output.
        output: usize,
        /// Per-output frame index.
        index: u64,
    },
    /// A padded frame bypassed the HBM straight to the head SRAM.
    Bypass {
        /// Destination output.
        output: usize,
    },
    /// A packet was dropped at a full input VOQ.
    InputDrop {
        /// Ingress port.
        input: usize,
    },
    /// A full frame was dropped at a full per-output HBM region.
    FrameDrop {
        /// Destination output.
        output: usize,
    },
}

/// Registry name the switch publishes live records under (the SPS
/// layer renames per-plane streams to `plane00`, `plane01`, …).
const LIVE_SOURCE: &str = "switch";

/// Live-streaming state, present only when
/// [`HbmSwitch::enable_live_telemetry`] was called. Everything here is
/// driven by sim time and the packet's own flow hash, so enabling it
/// never perturbs the simulation itself — two same-seed runs stream
/// byte-identical records, and the silent path is untouched.
struct LiveTelemetry {
    clock: EpochClock,
    /// Registry state at the last flushed boundary.
    prev: Snapshot,
    sink: Box<dyn TelemetrySink + Send>,
    /// Lifecycle sampling: packets whose flow hash satisfies
    /// `fnv1a(flow) % sample_one_in == 0` get span events (0 = off).
    sample_one_in: u64,
    /// Ids of sampled packets currently inside the switch.
    sampled: PacketIdSet,
    epochs_emitted: u64,
    spans_emitted: u64,
    /// `run_source` finished and the terminal records were emitted.
    finished: bool,
}

impl LiveTelemetry {
    fn samples_flow(&self, flow: &rip_traffic::FlowKey) -> bool {
        self.sample_one_in > 0
            && rip_traffic::hash::fnv1a(&flow.to_bytes()).is_multiple_of(self.sample_one_in)
    }
}

/// Track lane offsets of the per-output frame-lifecycle quartet on
/// [`PID_FRAMES`] (tid = `output * 4 + lane`).
const FRAME_LANE_FILL: u64 = 0;
const FRAME_LANE_WRITE: u64 = 1;
const FRAME_LANE_READ: u64 = 2;
const FRAME_LANE_DRAIN: u64 = 3;

/// Chrome trace-event capture state, present only when
/// [`HbmSwitch::enable_chrome_trace`] was called. Frame-lifecycle
/// spans are recorded as the run executes; the per-bank HBM command
/// tracks are post-processed from the device command log by
/// [`HbmSwitch::take_chrome_trace`]. Purely passive: it observes sim
/// times the pipeline already computes, so enabling it never perturbs
/// the simulation.
struct ChromeTrace {
    rec: TraceRecorder,
    /// Sim time the currently forming frame of each output started
    /// filling (first batch at the tail SRAM), `None` when no frame is
    /// forming.
    fill_start: Vec<Option<SimTime>>,
}

impl ChromeTrace {
    /// Record one frame-lifecycle span if it overlaps the window.
    fn frame_span(&mut self, o: usize, lane: u64, name: &str, start: SimTime, end: SimTime) {
        if self.rec.window().overlaps(start, end) {
            self.rec
                .complete(PID_FRAMES, o as u64 * 4 + lane, name, start, end);
        }
    }
}

/// Hasher for the sampled-packet id set. The set is probed once per
/// chunk on the live path, so SipHash would be measurable overhead; a
/// single Fibonacci multiply mixes the (near-sequential) packet ids
/// well enough for membership tests.
#[derive(Default)]
struct PacketIdHasher(u64);

impl std::hash::Hasher for PacketIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PacketIdSet = HashSet<u64, std::hash::BuildHasherDefault<PacketIdHasher>>;

/// Events of the switch simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Ev {
    /// A packet arrives at an input port.
    Arrival(Packet),
    /// The last event of the trace was delivered.
    ArrivalsDone,
    /// A batch finished striping across the tail SRAM modules.
    BatchAtTail(Batch),
    /// A partial batch waited too long at an input port.
    FlushTimeout {
        /// Input port.
        input: usize,
        /// Output VOQ.
        output: usize,
    },
    /// The cyclical read engine's next turn.
    ReadTurn,
    /// A frame arrived at the head SRAM (HBM read or bypass).
    FrameAtHead(Frame),
    /// An output port pulls its next batch.
    Drain(usize),
    /// A component fails or recovers ([`FaultPlan`]).
    Fault(FaultEvent),
}

/// How a checkpointed run ([`HbmSwitch::run_source_checkpointed`])
/// ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The source drained (or the horizon was reached) and the terminal
    /// telemetry records were emitted — same end state as
    /// [`HbmSwitch::run_source`].
    Completed,
    /// The stop flag was observed at an epoch boundary: a final
    /// snapshot was persisted and the run returned early. Resume it
    /// with the persisted state to continue byte-identically.
    Interrupted,
}

/// A checkpointable clone of [`Feeder`]'s single-item lookahead,
/// holding the source by value so its position can be saved alongside
/// the buffered packet. Semantics (fill-on-demand, the non-decreasing
/// assert, and the `pulled` source-progress counter) mirror [`Feeder`]
/// exactly — the streaming-equivalence argument in
/// [`HbmSwitch::run_source`] carries over unchanged.
struct CkptFeeder<S> {
    source: S,
    buf: Option<(SimTime, Packet)>,
    source_done: bool,
    last_pulled: SimTime,
    pulled: u64,
}

impl<S: PacketSource> CkptFeeder<S> {
    fn new(source: S) -> Self {
        CkptFeeder {
            source,
            buf: None,
            source_done: false,
            last_pulled: SimTime::ZERO,
            pulled: 0,
        }
    }

    fn fill(&mut self) {
        if self.buf.is_none() && !self.source_done {
            match self.source.next_packet() {
                Some(p) => {
                    assert!(
                        p.arrival >= self.last_pulled,
                        "source must yield non-decreasing times"
                    );
                    self.last_pulled = p.arrival;
                    self.pulled += 1;
                    self.buf = Some((p.arrival, p));
                }
                None => self.source_done = true,
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.fill();
        self.buf.map(|(t, _)| t)
    }

    fn pop(&mut self) -> Option<(SimTime, Packet)> {
        self.fill();
        self.buf.take()
    }

    fn is_exhausted(&mut self) -> bool {
        self.fill();
        self.source_done && self.buf.is_none()
    }

    fn pulled(&self) -> u64 {
        self.pulled
    }
}

impl<S: PacketSource + StatefulSource> CkptFeeder<S> {
    fn save(&self) -> FeederState {
        FeederState {
            buf: self.buf,
            source_done: self.source_done,
            last_pulled: self.last_pulled,
            pulled: self.pulled,
            source: self.source.save_state(),
        }
    }

    /// Rebuild from a snapshot: rewind `source` to its saved position,
    /// then overwrite the lookahead so the already-pulled packet is not
    /// pulled twice.
    fn restore(mut source: S, st: &FeederState) -> Result<Self, DeError> {
        source.restore_state(&st.source)?;
        Ok(CkptFeeder {
            source,
            buf: st.buf,
            source_done: st.source_done,
            last_pulled: st.last_pulled,
            pulled: st.pulled,
        })
    }
}

/// Serialized [`CkptFeeder`]: the lookahead packet plus the source's
/// own position (via [`StatefulSource`]).
#[derive(Serialize, Deserialize)]
struct FeederState {
    buf: Option<(SimTime, Packet)>,
    source_done: bool,
    last_pulled: SimTime,
    pulled: u64,
    source: Value,
}

/// Serialized [`LiveTelemetry`] minus the sink (the resuming run
/// supplies its own sink; record counters carry over so the merged
/// stream is byte-identical).
#[derive(Serialize, Deserialize)]
struct LiveState {
    clock: EpochClock,
    prev: Snapshot,
    sample_one_in: u64,
    /// Sorted, so same-state snapshots serialize byte-identically.
    sampled: Vec<u64>,
    epochs_emitted: u64,
    spans_emitted: u64,
    finished: bool,
}

/// The complete mutable state of a mid-run [`HbmSwitch`], as written
/// into a snapshot by [`HbmSwitch::run_source_checkpointed`]. The
/// configuration rides along as a [`Value`] echo so a resume under a
/// different config is rejected instead of silently diverging.
#[derive(Serialize, Deserialize)]
struct SwitchState {
    cfg: Value,
    group: HbmGroup,
    pfi: PfiController,
    assemblers: Vec<BatchAssembler>,
    input_xbar_free: Vec<SimTime>,
    flush_pending: Vec<Vec<bool>>,
    tail: TailSram,
    hbm_frames: Vec<VecDeque<(Frame, SimTime)>>,
    head: HeadSram,
    pending_to_head: Vec<usize>,
    outputs: Vec<OutputPort>,
    drain_scheduled: Vec<bool>,
    read_cursor: usize,
    batches_in_flight: usize,
    arrivals_done: bool,
    /// Sorted, so same-state snapshots serialize byte-identically.
    dropped_ids: Vec<u64>,
    offered_packets: u64,
    offered_bytes: DataSize,
    delivered_packets: u64,
    delivered_bytes: DataSize,
    dropped_input: u64,
    dropped_frames: u64,
    dropped_bytes: DataSize,
    padded_bytes: DataSize,
    live_packets: u64,
    peak_in_flight: u64,
    active_faults: usize,
    dead_channels: usize,
    last_roll: SimTime,
    time_degraded: TimeDelta,
    capacity_lost: DataSize,
    baseline_occupancy: Option<u64>,
    pending_recovery: Option<SimTime>,
    recovery_drain: Option<TimeDelta>,
    dropped_packets_fault: u64,
    dropped_packets_congestion: u64,
    delays_ns: Histogram,
    departures: Vec<PacketDeparture>,
    first_arrival: Option<SimTime>,
    last_departure: SimTime,
    input_peak: DataSize,
    hbm_occupancy: Series,
    metrics: MetricsRegistry,
    output_depth: Vec<Series>,
    live: Option<LiveState>,
    /// Pending events in pop order with their original tie-break
    /// sequence numbers.
    queue: Vec<(SimTime, u64, Ev)>,
    queue_next_seq: u64,
    queue_last_popped: SimTime,
    feeder: FeederState,
}

/// End-of-run report of one HBM switch.
///
/// Serializes with declaration-order fields and `BTreeMap`-ordered
/// metrics, so two same-seed runs produce byte-identical JSON (the
/// golden-report snapshot tests rely on this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchReport {
    /// Packets offered by the trace.
    pub offered_packets: u64,
    /// Bytes offered.
    pub offered_bytes: DataSize,
    /// Packets fully delivered.
    pub delivered_packets: u64,
    /// Payload bytes drained at outputs.
    pub delivered_bytes: DataSize,
    /// Packets dropped at full input VOQs.
    pub dropped_input: u64,
    /// Frames dropped at full per-output HBM regions.
    pub dropped_frames: u64,
    /// Bytes dropped (input + frame drops).
    pub dropped_bytes: DataSize,
    /// Padding bytes injected (timeout flushes and padded/bypass frames).
    pub padded_bytes: DataSize,
    /// Peak number of packets simultaneously inside the switch
    /// (accepted at an input but not yet delivered or dropped). This is
    /// the streaming engine's memory high-water mark: it depends on
    /// load and congestion, not on the simulated horizon.
    pub peak_in_flight_packets: u64,
    /// Per-packet delay histogram, in nanoseconds.
    pub delays_ns: Histogram,
    /// All packet departures (for mimicking comparisons).
    pub departures: Vec<PacketDeparture>,
    /// Simulated span from first arrival to last departure.
    pub span: TimeDelta,
    /// Delivered aggregate rate over the span.
    pub delivered_rate: DataRate,
    /// `delivered_bytes / offered_bytes`.
    pub delivery_fraction: f64,
    /// HBM utilization over the span (moved data vs peak).
    pub hbm_utilization: f64,
    /// Peak input VOQ bytes over all ports.
    pub input_peak: DataSize,
    /// Peak tail SRAM bytes.
    pub tail_peak: DataSize,
    /// Peak head SRAM bytes.
    pub head_peak: DataSize,
    /// Mean egress lane-spread CV across outputs.
    pub lane_spread_cv: f64,
    /// Packets lost while a fault was active (input + frame drops).
    pub dropped_packets_fault: u64,
    /// Packets lost with no fault active — plain congestion.
    pub dropped_packets_congestion: u64,
    /// Total time at least one fault was active.
    pub time_degraded: TimeDelta,
    /// HBM bandwidth-time lost to dead channels (integrated
    /// `channel_rate × dead channels` over the run).
    pub capacity_lost: DataSize,
    /// Time from the last recovery until the HBM frame occupancy first
    /// returned to its pre-fault baseline (`None` if no fault ran or
    /// the backlog never drained within the run).
    pub recovery_drain: Option<TimeDelta>,
    /// Deterministic sim-time telemetry: frame path/fill metrics, HBM
    /// command mix and stall accounting, photonic lane/energy totals.
    pub metrics: MetricsRegistry,
}

/// The HBM switch simulator.
///
/// Feed an arrival-ordered packet trace (`input`/`output` are switch
/// port indices `0..N`) to [`HbmSwitch::run`]; the switch plays the
/// complete §3.2 pipeline against the cycle-exact HBM device model and
/// reports throughput, delay, loss, occupancy and utilization.
pub struct HbmSwitch {
    cfg: RouterConfig,
    group: HbmGroup,
    pfi: PfiController,
    assemblers: Vec<BatchAssembler>,
    input_xbar_free: Vec<SimTime>,
    flush_pending: Vec<Vec<bool>>,
    tail: TailSram,
    /// Simulator-side mirror of the HBM per-output FIFOs: frame
    /// contents + write-completion time. (The switch itself needs no
    /// such bookkeeping — the controller's two counters per output are
    /// its whole state, the paper's "no bookkeeping" claim.)
    hbm_frames: Vec<VecDeque<(Frame, SimTime)>>,
    head: HeadSram,
    pending_to_head: Vec<usize>,
    outputs: Vec<OutputPort>,
    drain_scheduled: Vec<bool>,
    read_cursor: usize,
    /// Batches striping toward the tail SRAM (scheduled BatchAtTail
    /// events) — tracked so the read engine does not shut down while
    /// data is still in flight.
    batches_in_flight: usize,
    arrivals_done: bool,
    dropped_ids: HashSet<u64>,
    // Statistics.
    offered_packets: u64,
    offered_bytes: DataSize,
    delivered_packets: u64,
    delivered_bytes: DataSize,
    dropped_input: u64,
    dropped_frames: u64,
    dropped_bytes: DataSize,
    padded_bytes: DataSize,
    /// Packets accepted but not yet delivered or dropped, and the
    /// high-water mark — the streaming engine's O(in-flight) memory
    /// argument, measured.
    live_packets: u64,
    peak_in_flight: u64,
    // Fault / degraded-mode accounting.
    active_faults: usize,
    dead_channels: usize,
    last_roll: SimTime,
    time_degraded: TimeDelta,
    capacity_lost: DataSize,
    baseline_occupancy: Option<u64>,
    pending_recovery: Option<SimTime>,
    recovery_drain: Option<TimeDelta>,
    dropped_packets_fault: u64,
    dropped_packets_congestion: u64,
    delays_ns: Histogram,
    departures: Vec<PacketDeparture>,
    first_arrival: Option<SimTime>,
    last_departure: SimTime,
    input_peak: DataSize,
    /// Optional event trace (None = tracing off).
    trace: Option<TraceLog<SwitchEvent>>,
    /// Total frames buffered in the HBM over time (sampled at frame
    /// writes/reads when tracing is on).
    hbm_occupancy: Series,
    /// Always-on deterministic telemetry accumulated during the run
    /// (completed by device/photonic aggregates in [`HbmSwitch::report`]).
    metrics: MetricsRegistry,
    /// Per-output HBM queue depth over time (frames), sampled at every
    /// frame write/read with bounded memory.
    output_depth: Vec<Series>,
    /// Chrome trace-event capture (None = off).
    chrome: Option<ChromeTrace>,
    /// Live epoch streaming + lifecycle sampling (None = silent).
    live: Option<LiveTelemetry>,
    /// Cached next epoch boundary in ps; `u64::MAX` when live telemetry
    /// is off or finished. Keeps the per-event flush check to one
    /// integer compare.
    live_boundary_ps: u64,
    /// Event-queue kernel for every run started on this switch (the
    /// timing wheel by default; the binary-heap oracle for differential
    /// runs). Snapshots are kernel-agnostic, so a snapshot taken under
    /// one kind resumes byte-identically under the other.
    queue_kind: QueueKind,
    /// Precomputed `switch.outNN.queue_depth_frames` metric names, so
    /// the per-frame depth sample does not format a fresh string.
    out_depth_keys: Vec<String>,
    /// Reusable buffer for batches completed by one arrival (hot-loop
    /// scratch; always drained back to empty before reuse).
    batch_scratch: Vec<Batch>,
    /// Recycled chunk vectors: batches formed at inputs retire their
    /// chunk storage here when drained or dropped, so steady-state
    /// batch formation allocates nothing.
    chunk_pool: VecPool<Chunk>,
    /// Sharded-engine mirror of each input's total VOQ occupancy,
    /// replayed from boundary effects (the assemblers themselves live
    /// on the shard workers). `None` outside a sharded run; the
    /// shutdown check reads it in place of `self.assemblers`.
    queued_mirror: Option<Vec<DataSize>>,
    /// Wall-clock self-profiler (`None` = off; the run loops then never
    /// read the monotonic clock). Profile records travel on the hub's
    /// own stream and never touch reports, telemetry, traces or
    /// checkpoints — profiled runs are byte-identical to silent ones.
    prof: Option<EngineProfiler>,
}

/// Routes the core's internally scheduled events onto the sharded
/// queue: the strictly periodic `ReadTurn` stream feeds a monotone
/// calendar lane, everything else the kernel wheel/heap. Sequence
/// numbers are assigned globally either way, so the pop order is
/// identical to the sequential engine's.
struct LaneRouter<'a> {
    q: &'a mut ShardedEventQueue<Ev>,
    read_lane: usize,
}

impl EventSink<Ev> for LaneRouter<'_> {
    fn schedule(&mut self, time: SimTime, event: Ev) {
        match event {
            Ev::ReadTurn => self.q.schedule_lane(self.read_lane, time, event),
            ev => self.q.schedule(time, ev),
        }
    }
}

impl HbmSwitch {
    /// Build a switch from a validated configuration.
    pub fn new(cfg: RouterConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let n = cfg.ribbons;
        let group = HbmGroup::new(cfg.stacks_per_switch, cfg.hbm_geometry, cfg.hbm_timing);
        let pfi = PfiController::new(cfg.pfi(), &group)?;
        let k = cfg.batch_size();
        Ok(HbmSwitch {
            assemblers: (0..n).map(|i| BatchAssembler::new(i, n, k)).collect(),
            input_xbar_free: vec![SimTime::ZERO; n],
            flush_pending: vec![vec![false; n]; n],
            tail: TailSram::new(n, cfg.batches_per_frame()),
            hbm_frames: vec![VecDeque::new(); n],
            head: HeadSram::new(n, cfg.head_frames),
            pending_to_head: vec![0; n],
            outputs: (0..n)
                .map(|o| {
                    let mut port =
                        OutputPort::new(o, cfg.port_rate(), cfg.alpha(), cfg.wavelengths);
                    if cfg.per_lane_egress {
                        port.set_lane_rate(Some(cfg.rate_per_wavelength));
                    }
                    port
                })
                .collect(),
            drain_scheduled: vec![false; n],
            read_cursor: 0,
            batches_in_flight: 0,
            arrivals_done: false,
            dropped_ids: HashSet::new(),
            offered_packets: 0,
            offered_bytes: DataSize::ZERO,
            delivered_packets: 0,
            delivered_bytes: DataSize::ZERO,
            dropped_input: 0,
            dropped_frames: 0,
            dropped_bytes: DataSize::ZERO,
            padded_bytes: DataSize::ZERO,
            live_packets: 0,
            peak_in_flight: 0,
            active_faults: 0,
            dead_channels: 0,
            last_roll: SimTime::ZERO,
            time_degraded: TimeDelta::ZERO,
            capacity_lost: DataSize::ZERO,
            baseline_occupancy: None,
            pending_recovery: None,
            recovery_drain: None,
            dropped_packets_fault: 0,
            dropped_packets_congestion: 0,
            delays_ns: Histogram::new(),
            departures: Vec::new(),
            first_arrival: None,
            last_departure: SimTime::ZERO,
            input_peak: DataSize::ZERO,
            trace: None,
            hbm_occupancy: Series::new(4096),
            metrics: MetricsRegistry::new(),
            output_depth: (0..n).map(|_| Series::new(1024)).collect(),
            chrome: None,
            live: None,
            live_boundary_ps: u64::MAX,
            queue_kind: QueueKind::default_kind(),
            out_depth_keys: (0..n)
                .map(|o| format!("switch.out{o:02}.queue_depth_frames"))
                .collect(),
            batch_scratch: Vec::new(),
            chunk_pool: VecPool::default(),
            queued_mirror: None,
            prof: None,
            group,
            pfi,
            cfg,
        })
    }

    /// Attach the wall-clock self-profiler: the run loops lap a
    /// monotonic clock across kernel pops, dispatch phases and
    /// telemetry export, flushing one record per telemetry epoch into
    /// `hub` under source `engine` (shard workers join the same hub as
    /// `shardNN`). Profiling never alters simulation state or any
    /// deterministic output surface.
    pub fn enable_profiler(&mut self, hub: ProfileHub) {
        self.enable_profiler_as(hub, "engine");
    }

    /// [`Self::enable_profiler`] under a caller-chosen source label —
    /// fleet plane workers profile as `planeNN` so the collector's
    /// merged exposition can tell planes apart.
    pub fn enable_profiler_as(&mut self, hub: ProfileHub, source: &str) {
        self.prof = Some(EngineProfiler::new(hub, source));
    }

    /// Select the event-queue kernel for subsequent runs: the timing
    /// wheel (default) or the binary-heap differential oracle. Both
    /// kernels realize the same `(time, insertion-seq)` total order, so
    /// reports, telemetry and snapshots are byte-identical across
    /// kinds — the kernel-equivalence suite runs both and compares.
    pub fn set_queue_kind(&mut self, kind: QueueKind) {
        self.queue_kind = kind;
    }

    /// The event-queue kernel runs on this switch will use.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue_kind
    }

    /// The configuration in force.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// Record switch milestones into a bounded trace (keep the most
    /// recent `capacity` events) and sample the HBM frame occupancy.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::new(capacity));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceLog<SwitchEvent>> {
        self.trace.as_ref()
    }

    /// Capture a Chrome trace-event timeline of the run, gated by
    /// `window`: per-output frame-lifecycle spans
    /// (fill → write → read → drain) recorded live, plus per-bank HBM
    /// command tracks post-processed from the device command log when
    /// [`HbmSwitch::take_chrome_trace`] is called. Also turns on HBM
    /// command recording (the same hook the timing-conformance checker
    /// replays).
    pub fn enable_chrome_trace(&mut self, window: TraceWindow) {
        self.group.set_record_commands(true);
        // Capture-time bound: keep only commands that can overlap the
        // window once their derived spans (ACT covers tRCD, PRE tRP,
        // REFsb tRFCsb) are attached — widen the start by the longest
        // such span so `take_chrome_trace`'s precise overlap filter
        // still sees every candidate.
        let t = self.group.timing();
        let timing_slack = t
            .t_rcd
            .as_ps()
            .max(t.t_rp.as_ps())
            .max(t.t_rfc_sb.as_ps())
            .max(t.t_faw.as_ps());
        // RD/WR spans run to bus release, which trails the issue time by
        // queueing + transfer; 100 ns dwarfs both on every geometry.
        let slack = timing_slack + 100_000;
        self.group.set_record_window(Some((
            SimTime::from_ps(window.start().as_ps().saturating_sub(slack)),
            window.end(),
        )));
        let mut rec = TraceRecorder::new(window);
        rec.set_process_name(PID_HBM, "hbm");
        rec.set_process_name(PID_FRAMES, "frames");
        for o in 0..self.cfg.ribbons {
            for (lane, name) in [
                (FRAME_LANE_FILL, "fill"),
                (FRAME_LANE_WRITE, "write"),
                (FRAME_LANE_READ, "read"),
                (FRAME_LANE_DRAIN, "drain"),
            ] {
                rec.set_thread_name(
                    PID_FRAMES,
                    o as u64 * 4 + lane,
                    &format!("out{o:02} {name}"),
                );
            }
        }
        self.chrome = Some(ChromeTrace {
            rec,
            fill_start: vec![None; self.cfg.ribbons],
        });
    }

    /// Whether [`HbmSwitch::enable_chrome_trace`] is active.
    pub fn chrome_trace_enabled(&self) -> bool {
        self.chrome.is_some()
    }

    /// Take the recorded Chrome trace, folding the HBM command log
    /// into per-bank duration tracks: one track per `(channel, bank)`
    /// carrying ACT (shown over its tRCD window), RD/WR (to bus
    /// release), PRE (tRP) and REFsb (tRFCsb), plus one `tFAW` lane per
    /// channel where every ACT opens its rolling four-activate window.
    /// Commands strictly outside the trace window are skipped; track
    /// names are emitted only for banks that recorded at least one
    /// in-window command.
    pub fn take_chrome_trace(&mut self) -> Option<TraceRecorder> {
        let mut ct = self.chrome.take()?;
        let window = ct.rec.window();
        let timing = *self.group.timing();
        let bpc = self.group.geometry().banks_per_channel;
        let lanes = bpc as u64 + 1;
        for (c, ch) in self.group.channels().enumerate() {
            let mut named = vec![false; bpc + 1];
            for cmd in ch.commands() {
                let (name, start, end) = match cmd.kind {
                    HbmCommandKind::Activate { .. } => ("ACT", cmd.at, cmd.at + timing.t_rcd),
                    HbmCommandKind::Read { end, .. } => ("RD", cmd.at, end),
                    HbmCommandKind::Write { end, .. } => ("WR", cmd.at, end),
                    HbmCommandKind::Precharge => ("PRE", cmd.at, cmd.at + timing.t_rp),
                    HbmCommandKind::RefreshSb => ("REFsb", cmd.at, cmd.at + timing.t_rfc_sb),
                };
                if window.overlaps(start, end) {
                    let tid = c as u64 * lanes + cmd.bank as u64;
                    if !named[cmd.bank] {
                        named[cmd.bank] = true;
                        ct.rec
                            .set_thread_name(PID_HBM, tid, &format!("ch{c:02}/b{:02}", cmd.bank));
                    }
                    ct.rec.complete(PID_HBM, tid, name, start, end);
                }
                if matches!(cmd.kind, HbmCommandKind::Activate { .. }) {
                    let faw_end = cmd.at + timing.t_faw;
                    if window.overlaps(cmd.at, faw_end) {
                        let tid = c as u64 * lanes + bpc as u64;
                        if !named[bpc] {
                            named[bpc] = true;
                            ct.rec
                                .set_thread_name(PID_HBM, tid, &format!("ch{c:02}/tFAW"));
                        }
                        ct.rec.complete(PID_HBM, tid, "tFAW", cmd.at, faw_end);
                    }
                }
            }
        }
        Some(ct.rec)
    }

    /// Stream live telemetry into `sink` while [`HbmSwitch::run_source`]
    /// executes: one [`rip_telemetry::EpochDelta`] per `period` of sim
    /// time, plus sampled packet-lifecycle span events when
    /// `sample_one_in > 0` (a packet is sampled when
    /// `fnv1a(flow) % sample_one_in == 0` — keyed on the flow hash, not
    /// an RNG, so the sampled set is identical across same-seed runs).
    ///
    /// Determinism rules: epoch boundaries are exact multiples of
    /// `period` in sim time (never wall-clock), all record maps are
    /// `BTreeMap`-ordered, and streaming never alters the simulation —
    /// a live run's report is the silent run's report plus the live
    /// gauge series. The final epoch delta is taken against the full
    /// end-of-run registry (device + photonic aggregates included), so
    /// replaying every emitted delta reconstructs
    /// [`SwitchReport::metrics`] byte-identically.
    ///
    /// Only [`HbmSwitch::run_source`] flushes; [`HbmSwitch::run_preloaded`]
    /// (the batch oracle) stays silent.
    pub fn enable_live_telemetry(
        &mut self,
        period: TimeDelta,
        sample_one_in: u64,
        sink: Box<dyn TelemetrySink + Send>,
    ) {
        let clock = EpochClock::new(period);
        self.live_boundary_ps = clock.next_boundary().as_ps();
        self.live = Some(LiveTelemetry {
            clock,
            prev: Snapshot::empty(),
            sink,
            sample_one_in,
            sampled: PacketIdSet::default(),
            epochs_emitted: 0,
            spans_emitted: 0,
            finished: false,
        });
    }

    /// Epoch records emitted so far (0 when live telemetry is off).
    pub fn live_epochs_emitted(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.epochs_emitted)
    }

    /// Span records emitted so far (0 when live telemetry is off).
    pub fn live_spans_emitted(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.spans_emitted)
    }

    /// Flush every epoch whose boundary is at or before the next event
    /// time `t` (an event exactly at a boundary belongs to the next
    /// epoch). `pulled` is the feeder's source-progress counter.
    ///
    /// Called before every event dispatch, so the no-flush case must be
    /// one integer compare: `live_boundary_ps` caches the next boundary
    /// and is `u64::MAX` whenever live telemetry is off or finished.
    #[inline]
    fn live_flush_epochs(&mut self, t: SimTime, pulled: u64) {
        while t.as_ps() >= self.live_boundary_ps {
            self.live_flush_one(pulled);
        }
    }

    /// Close the currently accumulating epoch and emit its delta.
    fn live_flush_one(&mut self, pulled: u64) {
        let t0 = prof_now(&self.prof);
        // Take `live` out so the sink call can borrow `self.metrics`
        // without aliasing.
        let mut live = self.live.take().expect("live checked by caller");
        let (epoch, _from, to) = live.clock.advance();
        self.live_boundary_ps = live.clock.next_boundary().as_ps();
        self.stamp_live_gauges(to, pulled);
        let snap = self.metrics.snapshot(to);
        let delta = snap.delta_since(&live.prev);
        live.sink.on_epoch(LIVE_SOURCE, epoch, &delta);
        live.prev = snap;
        live.epochs_emitted += 1;
        self.live = Some(live);
        prof_add(&mut self.prof, Phase::TelemetryExport, t0);
        // One profile record per telemetry epoch, emitted after the
        // epoch's own export time was attributed.
        if let Some(p) = self.prof.as_mut() {
            p.flush();
        }
    }

    /// The per-epoch gauge series: working-set and source progress,
    /// stamped at the epoch boundary so soak runs can watch growth live.
    fn stamp_live_gauges(&mut self, at: SimTime, pulled: u64) {
        self.metrics
            .set_gauge("switch.packets.in_flight", at, self.live_packets as f64);
        self.metrics.set_gauge(
            "switch.packets.peak_in_flight",
            at,
            self.peak_in_flight as f64,
        );
        self.metrics.set_gauge(
            "switch.packets.delivered",
            at,
            self.delivered_packets as f64,
        );
        self.metrics
            .set_gauge("switch.feeder.pulled_packets", at, pulled as f64);
        // Watchdog inputs: drop/offered/capacity state visible every
        // epoch, not just at run end.
        self.metrics
            .set_gauge("switch.packets.offered", at, self.offered_packets as f64);
        self.metrics.set_gauge(
            "switch.packets.dropped",
            at,
            (self.dropped_packets_fault + self.dropped_packets_congestion) as f64,
        );
        self.metrics.set_gauge(
            "switch.capacity.dead_channels",
            at,
            self.dead_channels as f64,
        );
    }

    /// Emit the terminal records: a final epoch delta taken against the
    /// complete end-of-run registry (so merged deltas reconstruct
    /// [`SwitchReport::metrics`] exactly), then `run_end` with the
    /// totals.
    fn live_finish(&mut self, pulled: u64) {
        if self.live.as_ref().is_none_or(|l| l.finished) {
            return;
        }
        // Same end-of-run instant the report derives.
        let first = self.first_arrival.unwrap_or(SimTime::ZERO);
        let span = self.last_departure.saturating_since(first);
        let end = first + span;
        let t0 = prof_now(&self.prof);
        let mut live = self.live.take().expect("checked above");
        let epoch = live.clock.epoch();
        self.stamp_live_gauges(end, pulled);
        let final_metrics = self.final_metrics(end, span);
        let snap = final_metrics.snapshot(end);
        let delta = snap.delta_since(&live.prev);
        live.sink.on_epoch(LIVE_SOURCE, epoch, &delta);
        live.epochs_emitted += 1;
        live.sink.on_run_end(LIVE_SOURCE, end, &final_metrics);
        live.prev = snap;
        live.finished = true;
        self.live_boundary_ps = u64::MAX;
        self.live = Some(live);
        prof_add(&mut self.prof, Phase::TelemetryExport, t0);
    }

    /// Flush whatever the profiler accumulated since the last epoch
    /// record — the end-of-run catch-all (and the only flush for runs
    /// without live telemetry).
    fn prof_finish(&mut self) {
        if let Some(p) = self.prof.as_mut() {
            p.flush_nonempty();
        }
    }

    /// The profile phase an event's handling is attributed to.
    fn phase_of(ev: &Ev) -> Phase {
        match ev {
            Ev::Arrival(_) | Ev::FlushTimeout { .. } => Phase::BatchAssembly,
            Ev::BatchAtTail(_) | Ev::ReadTurn | Ev::FrameAtHead(_) => Phase::HbmTiming,
            Ev::Drain(_) => Phase::BatchDrain,
            Ev::ArrivalsDone | Ev::Fault(_) => Phase::Dispatch,
        }
    }

    /// Emit `stage` for `packet` if it is being sampled.
    fn live_span(&mut self, packet: u64, stage: &'static str, at: SimTime, port: usize) {
        if let Some(live) = self.live.as_mut() {
            if live.sampled.contains(&packet) {
                live.spans_emitted += 1;
                live.sink.on_span(
                    LIVE_SOURCE,
                    &SpanEvent {
                        packet,
                        stage,
                        at,
                        port,
                    },
                );
            }
        }
    }

    /// Emit a terminal `stage` for `packet` and stop sampling it.
    fn live_span_end(&mut self, packet: u64, stage: &'static str, at: SimTime, port: usize) {
        if let Some(live) = self.live.as_mut() {
            if live.sampled.remove(&packet) {
                live.spans_emitted += 1;
                live.sink.on_span(
                    LIVE_SOURCE,
                    &SpanEvent {
                        packet,
                        stage,
                        at,
                        port,
                    },
                );
            }
        }
    }

    /// HBM frame-occupancy series (non-empty only when tracing is on).
    pub fn hbm_occupancy(&self) -> &Series {
        &self.hbm_occupancy
    }

    fn record(&mut self, now: SimTime, ev: SwitchEvent) {
        if let Some(log) = self.trace.as_mut() {
            log.push(now, ev);
            let buffered: u64 = (0..self.cfg.ribbons)
                .map(|o| self.pfi.frames_buffered(o))
                .sum();
            self.hbm_occupancy.record(now, buffered as f64);
        }
    }

    /// Time for one batch to cross an internal (sped-up) interface.
    fn batch_time(&self) -> TimeDelta {
        self.cfg
            .internal_rate()
            .transfer_time(self.cfg.batch_size())
    }

    /// Interval between cyclical read turns: one frame per output per
    /// `K / internal rate`, round-robin over N outputs.
    fn read_interval(&self) -> TimeDelta {
        self.cfg
            .internal_rate()
            .transfer_time(self.cfg.frame_size())
            / self.cfg.ribbons as u64
    }

    /// Tail→head bypass transit time: one frame over the full HBM-width
    /// path.
    fn bypass_latency(&self) -> TimeDelta {
        self.cfg.hbm_peak().transfer_time(self.cfg.frame_size())
    }

    fn send_batch(&mut self, q: &mut impl EventSink<Ev>, now: SimTime, batch: Batch) {
        let i = batch.input;
        let dt = self.batch_time();
        let t0 = now.max(self.input_xbar_free[i]);
        self.input_xbar_free[i] = t0 + dt;
        self.batches_in_flight += 1;
        // Serialization over N crossbar slots plus worst-case alignment
        // until the input faces module 0.
        q.schedule(t0 + dt + dt, Ev::BatchAtTail(batch));
    }

    fn write_frame(&mut self, now: SimTime, frame: Frame) {
        let o = frame.output;
        if self.live.is_some() {
            let mut last = u64::MAX;
            for batch in &frame.batches {
                for c in &batch.chunks {
                    if c.packet != last {
                        last = c.packet;
                        self.live_span(c.packet, "hbm_write", now, o);
                    }
                }
            }
        }
        // Frame fill efficiency: payload actually carried vs. the fixed
        // frame capacity the HBM write pays for.
        self.metrics
            .inc("switch.frame.payload_bytes", frame.payload().bytes());
        self.metrics
            .inc("switch.frame.capacity_bytes", self.cfg.frame_size().bytes());
        self.metrics.inc("switch.frames.written", 1);
        let op = self.pfi.write_frame(&mut self.group, now, o);
        if let Some(ct) = self.chrome.as_mut() {
            ct.frame_span(o, FRAME_LANE_WRITE, "write", now, op.end);
        }
        self.hbm_frames[o].push_back((frame, op.end));
        self.sample_output_depth(now, o);
        self.record(
            now,
            SwitchEvent::FrameWritten {
                output: o,
                index: op.frame_index,
            },
        );
    }

    /// Sample output `o`'s HBM queue depth (frames) into its series and
    /// depth histogram.
    fn sample_output_depth(&mut self, now: SimTime, o: usize) {
        let depth = self.pfi.frames_buffered(o) as f64;
        self.output_depth[o].record(now, depth);
        self.metrics.observe(&self.out_depth_keys[o], depth);
    }

    /// Total frames currently buffered in the HBM across outputs.
    fn hbm_frames_total(&self) -> u64 {
        (0..self.cfg.ribbons)
            .map(|o| self.pfi.frames_buffered(o))
            .sum()
    }

    /// Integrate degraded-time and lost-capacity up to `now`.
    fn roll_capacity(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_roll);
        if !dt.is_zero() {
            if self.active_faults > 0 {
                self.time_degraded += dt;
            }
            if self.dead_channels > 0 {
                let lost = self.cfg.hbm_geometry.channel_rate() * self.dead_channels as u64;
                self.capacity_lost += lost.data_in(dt);
            }
        }
        self.last_roll = self.last_roll.max(now);
    }

    fn on_fault(&mut self, q: &mut impl EventSink<Ev>, now: SimTime, f: FaultEvent) {
        if f.kind.is_photonic() {
            return; // front-end scope; applied by the SPS layer
        }
        self.roll_capacity(now);
        if self.baseline_occupancy.is_none() && matches!(f.action, FaultAction::Inject) {
            self.baseline_occupancy = Some(self.hbm_frames_total());
        }
        match (f.kind, f.action) {
            (FaultKind::HbmChannelDown { channel }, FaultAction::Inject) => {
                self.group.fail_channel(channel);
                self.dead_channels += 1;
                self.active_faults += 1;
            }
            (FaultKind::HbmChannelDown { channel }, FaultAction::Recover) => {
                self.group.recover_channel(channel);
                self.dead_channels -= 1;
                self.active_faults -= 1;
            }
            (FaultKind::HbmBankStuck { channel, bank }, FaultAction::Inject) => {
                self.group.stick_bank(channel, bank);
                self.active_faults += 1;
            }
            (FaultKind::HbmBankStuck { channel, bank }, FaultAction::Recover) => {
                self.group.unstick_bank(channel, bank);
                self.active_faults -= 1;
            }
            (FaultKind::RefreshStorm { duration }, FaultAction::Inject) => {
                self.pfi.set_refresh_storm(now + duration);
                self.active_faults += 1;
                // Storms self-recover: schedule the bookkeeping event.
                q.schedule(
                    now + duration,
                    Ev::Fault(FaultEvent {
                        at: now + duration,
                        kind: f.kind,
                        action: FaultAction::Recover,
                    }),
                );
            }
            (FaultKind::RefreshStorm { .. }, FaultAction::Recover) => {
                self.active_faults -= 1;
            }
            (FaultKind::WavelengthLoss { .. } | FaultKind::PlaneDown { .. }, _) => {
                unreachable!("photonic faults returned above")
            }
        }
        if let Err(e) = self.pfi.check_degraded(&self.group) {
            panic!("fault plan drives the PFI engine past redistribution limits: {e}");
        }
        if self.active_faults == 0
            && self.pending_recovery.is_none()
            && self.recovery_drain.is_none()
        {
            self.pending_recovery = Some(now);
        }
    }

    fn system_empty(&self) -> bool {
        self.arrivals_done
            && self.batches_in_flight == 0
            && match &self.queued_mirror {
                // Sharded run: the assemblers live on the shard workers;
                // the replayed occupancy mirror is the authority.
                Some(m) => m.iter().all(|q| q.is_zero()),
                None => self.assemblers.iter().all(|a| a.total_queued().is_zero()),
            }
            && self.tail.occupancy().bytes.is_zero()
            && (0..self.cfg.ribbons).all(|o| {
                self.pfi.frames_buffered(o) == 0
                    && self.pending_to_head[o] == 0
                    && !self.head.has_data(o)
                    && !self.drain_scheduled[o]
            })
    }

    fn handle(&mut self, q: &mut impl EventSink<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival(p) => self.on_arrival(q, now, p),
            Ev::ArrivalsDone => self.arrivals_done = true,
            Ev::BatchAtTail(b) => {
                self.batches_in_flight -= 1;
                self.on_batch_at_tail(now, b);
            }
            Ev::FlushTimeout { input, output } => {
                self.flush_pending[input][output] = false;
                if !self.assemblers[input].queued(output).is_zero() {
                    if let Some(b) = self.assemblers[input].flush_with(output, &mut self.chunk_pool)
                    {
                        self.padded_bytes += b.padding;
                        self.send_batch(q, now, b);
                    }
                }
            }
            Ev::ReadTurn => self.on_read_turn(q, now),
            Ev::FrameAtHead(frame) => {
                let o = frame.output;
                self.pending_to_head[o] -= 1;
                self.head.push_frame(frame);
                if !self.drain_scheduled[o] && self.head.has_data(o) {
                    self.drain_scheduled[o] = true;
                    q.schedule(now, Ev::Drain(o));
                }
            }
            Ev::Drain(o) => self.on_drain(q, now, o),
            Ev::Fault(f) => self.on_fault(q, now, f),
        }
        // After the last recovery, watch for the HBM backlog returning
        // to its pre-fault level — the time-to-drain metric.
        if let (Some(t0), Some(base)) = (self.pending_recovery, self.baseline_occupancy) {
            if self.hbm_frames_total() <= base {
                self.recovery_drain = Some(now.saturating_since(t0));
                self.pending_recovery = None;
            }
        }
    }

    fn on_arrival(&mut self, q: &mut impl EventSink<Ev>, now: SimTime, p: Packet) {
        self.offered_packets += 1;
        self.offered_bytes += p.size;
        self.first_arrival.get_or_insert(now);
        let a = &mut self.assemblers[p.input];
        if a.total_queued() + p.size > self.cfg.input_queue_limit {
            self.dropped_input += 1;
            self.dropped_bytes += p.size;
            self.dropped_ids.insert(p.id);
            if self.active_faults > 0 {
                self.dropped_packets_fault += 1;
            } else {
                self.dropped_packets_congestion += 1;
            }
            self.record(now, SwitchEvent::InputDrop { input: p.input });
            // A would-be-sampled packet's drop is still visible in the
            // span stream (it was never admitted, so it is not tracked).
            if let Some(live) = self.live.as_mut() {
                if live.samples_flow(&p.flow) {
                    live.spans_emitted += 1;
                    live.sink.on_span(
                        LIVE_SOURCE,
                        &SpanEvent {
                            packet: p.id,
                            stage: "input_drop",
                            at: now,
                            port: p.input,
                        },
                    );
                }
            }
            return;
        }
        self.live_packets += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.live_packets);
        if let Some(live) = self.live.as_mut() {
            if live.samples_flow(&p.flow) {
                live.sampled.insert(p.id);
                live.spans_emitted += 1;
                live.sink.on_span(
                    LIVE_SOURCE,
                    &SpanEvent {
                        packet: p.id,
                        stage: "arrival",
                        at: now,
                        port: p.input,
                    },
                );
            }
        }
        let was_empty = a.queued(p.output).is_zero();
        let mut batches = std::mem::take(&mut self.batch_scratch);
        debug_assert!(batches.is_empty());
        self.assemblers[p.input].push_into(&p, &mut self.chunk_pool, &mut batches);
        let queued = self.assemblers[p.input].total_queued();
        self.input_peak = self.input_peak.max(queued);
        if was_empty
            && self.cfg.batch_timeout_batches > 0
            && !self.assemblers[p.input].queued(p.output).is_zero()
            && !self.flush_pending[p.input][p.output]
        {
            self.flush_pending[p.input][p.output] = true;
            let timeout = self.batch_time() * self.cfg.batch_timeout_batches;
            q.schedule(
                now + timeout,
                Ev::FlushTimeout {
                    input: p.input,
                    output: p.output,
                },
            );
        }
        for b in batches.drain(..) {
            self.send_batch(q, now, b);
        }
        self.batch_scratch = batches;
    }

    fn on_batch_at_tail(&mut self, now: SimTime, b: Batch) {
        if self.live.is_some() {
            // A packet's chunks are contiguous within a batch, so
            // adjacent dedupe yields one span per packet per batch.
            let mut last = u64::MAX;
            for c in &b.chunks {
                if c.packet != last {
                    last = c.packet;
                    self.live_span(c.packet, "sram_enqueue", now, b.output);
                }
            }
        }
        let batch_output = b.output;
        if let Some(ct) = self.chrome.as_mut() {
            ct.fill_start[batch_output].get_or_insert(now);
        }
        if let Some(frame) = self.tail.push_batch(b) {
            let o = frame.output;
            if let Some(ct) = self.chrome.as_mut() {
                if let Some(start) = ct.fill_start[o].take() {
                    ct.frame_span(o, FRAME_LANE_FILL, "fill", start, now);
                }
            }
            if !self.pfi.can_accept_frame(&self.group, o) {
                // Per-output HBM region full: the frame is lost.
                self.dropped_frames += 1;
                self.dropped_bytes += frame.payload();
                for batch in &frame.batches {
                    for c in &batch.chunks {
                        if self.dropped_ids.insert(c.packet) {
                            self.live_packets -= 1;
                            if self.active_faults > 0 {
                                self.dropped_packets_fault += 1;
                            } else {
                                self.dropped_packets_congestion += 1;
                            }
                            self.live_span_end(c.packet, "frame_drop", now, o);
                        }
                    }
                }
                self.record(now, SwitchEvent::FrameDrop { output: o });
                for batch in frame.batches {
                    self.chunk_pool.put(batch.chunks);
                }
            } else {
                self.write_frame(now, frame);
            }
        }
    }

    fn on_read_turn(&mut self, q: &mut impl EventSink<Ev>, now: SimTime) {
        let o = self.read_cursor;
        self.read_cursor = (self.read_cursor + 1) % self.cfg.ribbons;
        let room = self.head.frames_buffered(o) + self.pending_to_head[o] < self.cfg.head_frames;
        if room {
            let hbm_ready = self.hbm_frames[o]
                .front()
                .is_some_and(|&(_, ready)| ready <= now);
            if self.pfi.frames_buffered(o) > 0 && hbm_ready {
                let op = self
                    .pfi
                    .read_frame(&mut self.group, now, o)
                    .expect("frames_buffered > 0");
                let (frame, written) = self.hbm_frames[o].pop_front().expect("mirror in sync");
                self.pending_to_head[o] += 1;
                if let Some(ct) = self.chrome.as_mut() {
                    ct.frame_span(o, FRAME_LANE_READ, "read", now, op.end);
                }
                if self.live.is_some() {
                    let mut last = u64::MAX;
                    for batch in &frame.batches {
                        for c in &batch.chunks {
                            if c.packet != last {
                                last = c.packet;
                                self.live_span(c.packet, "hbm_read", now, o);
                            }
                        }
                    }
                }
                // HBM-path latency: write completion → head arrival.
                self.metrics
                    .observe("switch.path.hbm_ns", op.end.since(written).as_ns_f64());
                self.metrics.inc("switch.frames.read", 1);
                self.sample_output_depth(now, o);
                self.record(
                    now,
                    SwitchEvent::FrameRead {
                        output: o,
                        index: op.frame_index,
                    },
                );
                q.schedule(op.end, Ev::FrameAtHead(frame));
            } else if self.cfg.padding_and_bypass
                && self.pfi.frames_buffered(o) == 0
                && self.tail.forming_len(o) > 0
            {
                // HBM empty for this output: pad the partial frame and
                // bypass the HBM straight into the head SRAM (§4).
                let frame = self.tail.take_padded_frame(o).expect("forming_len > 0");
                self.padded_bytes += self.cfg.batch_size() * frame.padded_batches;
                self.pending_to_head[o] += 1;
                let bypass_end = now + self.bypass_latency();
                if let Some(ct) = self.chrome.as_mut() {
                    // A padded frame ends its fill here and bypasses the
                    // HBM, so its "read" lane carries the bypass hop.
                    if let Some(start) = ct.fill_start[o].take() {
                        ct.frame_span(o, FRAME_LANE_FILL, "fill", start, now);
                    }
                    ct.frame_span(o, FRAME_LANE_READ, "bypass", now, bypass_end);
                }
                if self.live.is_some() {
                    let mut last = u64::MAX;
                    for batch in &frame.batches {
                        for c in &batch.chunks {
                            if c.packet != last {
                                last = c.packet;
                                self.live_span(c.packet, "hbm_bypass", now, o);
                            }
                        }
                    }
                }
                self.metrics
                    .observe("switch.path.bypass_ns", self.bypass_latency().as_ns_f64());
                self.metrics.inc("switch.frames.bypass", 1);
                self.record(now, SwitchEvent::Bypass { output: o });
                q.schedule(now + self.bypass_latency(), Ev::FrameAtHead(frame));
            }
        }
        if !self.system_empty() {
            q.schedule(now + self.read_interval(), Ev::ReadTurn);
        }
    }

    fn on_drain(&mut self, q: &mut impl EventSink<Ev>, now: SimTime, o: usize) {
        match self.head.pop_batch(o) {
            Some(batch) => {
                let payload = batch.payload();
                let (end, deps) = self.outputs[o].drain_batch(&batch, now);
                if let Some(ct) = self.chrome.as_mut() {
                    ct.frame_span(o, FRAME_LANE_DRAIN, "drain", now, end);
                }
                self.delivered_bytes += payload;
                // Loss-free runs keep the drop set empty; skip the
                // per-departure probe entirely then.
                let check_drops = !self.dropped_ids.is_empty();
                for d in deps {
                    if check_drops && self.dropped_ids.contains(&d.packet) {
                        continue; // partially dropped packet: not delivered
                    }
                    self.delivered_packets += 1;
                    self.live_packets -= 1;
                    self.delays_ns.record(d.time.since(d.arrival).as_ns_f64());
                    self.last_departure = self.last_departure.max(d.time);
                    self.live_span_end(d.packet, "departure", d.time, o);
                    self.departures.push(d);
                }
                // The batch's payload left the switch; recycle its
                // chunk storage for future batch formation.
                self.chunk_pool.put(batch.chunks);
                q.schedule(end, Ev::Drain(o));
            }
            None => {
                self.drain_scheduled[o] = false;
            }
        }
    }

    /// Run an arrival-ordered trace to completion (or `horizon`,
    /// whichever comes first) and report. Consumes the switch: the
    /// report takes ownership of the delay histogram and departure log
    /// instead of cloning them. Use [`HbmSwitch::run_source`] to keep
    /// the switch alive for post-run inspection.
    pub fn run(self, trace: &[Packet], horizon: SimTime) -> SwitchReport {
        self.run_with_faults(trace, horizon, &FaultPlan::default())
    }

    /// Run a trace while applying `plan` mid-flight: channels fail and
    /// recover, banks stick, refresh storms rage — and the report's
    /// degraded-mode fields account for it. Channel indices in the plan
    /// are switch-local (`0..T`); photonic events are ignored here (the
    /// SPS layer applies them at the front end). An empty plan is
    /// byte-identical to [`HbmSwitch::run`].
    ///
    /// Internally this replays the trace through the streaming engine
    /// ([`HbmSwitch::run_source`]); same-seed results are byte-identical
    /// to the materialized batch engine ([`HbmSwitch::run_preloaded`]).
    ///
    /// # Panics
    /// Panics if the plan degrades the device past what the PFI engine
    /// can redistribute (see `PfiController::check_degraded`).
    pub fn run_with_faults(
        mut self,
        trace: &[Packet],
        horizon: SimTime,
        plan: &FaultPlan,
    ) -> SwitchReport {
        self.run_source(ReplaySource::new(trace), horizon, plan);
        self.into_report()
    }

    /// The materialized-trace reference engine: pre-schedules every
    /// arrival into the event queue before running, exactly like the
    /// original batch pipeline (O(horizon) memory). Kept as the
    /// byte-identity oracle for the streaming engine — the equivalence
    /// property suite runs both and compares serialized reports.
    pub fn run_preloaded(
        &mut self,
        trace: &[Packet],
        horizon: SimTime,
        plan: &FaultPlan,
    ) -> SwitchReport {
        let mut q: EventQueue<Ev> = EventQueue::with_kind(self.queue_kind);
        let mut last_arrival = SimTime::ZERO;
        for p in trace {
            assert!(p.arrival >= last_arrival, "trace must be arrival-ordered");
            last_arrival = p.arrival;
            q.schedule(p.arrival, Ev::Arrival(*p));
        }
        for ev in plan.events() {
            if !ev.kind.is_photonic() {
                q.schedule(ev.at, Ev::Fault(*ev));
            }
        }
        q.schedule(last_arrival, Ev::ArrivalsDone);
        q.schedule(SimTime::ZERO, Ev::ReadTurn);
        while let Some(t) = q.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = q.pop().expect("peeked");
            self.handle(&mut q, now, ev);
        }
        self.roll_capacity(self.last_departure);
        self.report()
    }

    /// The streaming engine: pull arrivals incrementally from `source`
    /// as simulated time advances, instead of pre-scheduling the whole
    /// trace. Memory is O(in-flight packets + event queue), independent
    /// of the horizon, so soak runs can extend arbitrarily.
    ///
    /// Determinism / equivalence argument (the equivalence suite checks
    /// this byte-for-byte): the batch engine's only use of the
    /// pre-scheduled arrivals is that, at any instant `t`, arrivals pop
    /// before every other event at `t` (they were scheduled first, so
    /// they hold the lowest tie-break sequence numbers). This loop
    /// reproduces that order with a one-packet [`Feeder`] lookahead:
    /// the pending arrival is dispatched whenever its time is `<=` the
    /// queue's next event time, and static faults are scheduled before
    /// the initial `ReadTurn` just as the batch path orders them. The
    /// `arrivals_done` flag (batch: an `ArrivalsDone` event at the last
    /// arrival time) is set as soon as the source is exhausted; the
    /// flag is only read by the read engine's shutdown check, which in
    /// the batch order always runs after `ArrivalsDone` at equal times,
    /// so the earlier set is unobservable.
    ///
    /// Does not consume the switch — inspect traces/series afterwards,
    /// then call [`HbmSwitch::report`] or [`HbmSwitch::into_report`].
    pub fn run_source<S: PacketSource>(&mut self, source: S, horizon: SimTime, plan: &FaultPlan) {
        let mut source = source;
        let mut q: EventQueue<Ev> = EventQueue::with_kind(self.queue_kind);
        for ev in plan.events() {
            if !ev.kind.is_photonic() {
                q.schedule(ev.at, Ev::Fault(*ev));
            }
        }
        q.schedule(SimTime::ZERO, Ev::ReadTurn);
        let mut feeder = Feeder::new(|| source.next_packet().map(|p| (p.arrival, p)));
        loop {
            if feeder.is_exhausted() {
                self.arrivals_done = true;
            }
            // Lap structure when the profiler is attached: peeks and
            // pops are `KernelPop`, the epoch flush self-attributes to
            // `TelemetryExport` inside `live_flush_one`, and the
            // dispatch is attributed by event kind. Laps chain without
            // overlap, so summed phase time stays below wall time; the
            // lap starters are 1-in-64 sampled (see `prof_now_sampled`)
            // to keep the per-event clock cost inside the <3% budget.
            let mut t0 = prof_now_sampled(&mut self.prof);
            let take_arrival = match (feeder.peek_time(), q.peek_time()) {
                (Some(a), Some(t)) => a <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                let at = feeder.peek_time().expect("peeked");
                if at > horizon {
                    break;
                }
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                self.live_flush_epochs(at, feeder.pulled());
                let mut t0 = prof_renew(t0);
                let (_, p) = feeder.pop().expect("peeked");
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                self.handle(&mut q, at, Ev::Arrival(p));
                prof_add(&mut self.prof, Phase::BatchAssembly, t0);
            } else {
                let t = q.peek_time().expect("peeked");
                if t > horizon {
                    break;
                }
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                self.live_flush_epochs(t, feeder.pulled());
                let mut t0 = prof_renew(t0);
                let (now, ev) = q.pop().expect("peeked");
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                let phase = Self::phase_of(&ev);
                self.handle(&mut q, now, ev);
                prof_add(&mut self.prof, phase, t0);
            }
        }
        self.roll_capacity(self.last_departure);
        let pulled = feeder.pulled();
        drop(feeder);
        self.live_finish(pulled);
        self.prof_finish();
    }

    /// Run per-port packet sources through the engine selected by
    /// [`RouterConfig`]'s `engine` field: [`EngineKind::Sequential`]
    /// merges the ports and runs [`HbmSwitch::run_source`] (bit-for-bit
    /// the classic path), [`EngineKind::Sharded`] partitions the ports
    /// over worker threads running [`ShardEngine`]s and replays their
    /// boundary effects in the serial core. Both engines produce
    /// byte-identical reports, traces and telemetry for the same ports
    /// and seed — the sequential engine is the differential oracle the
    /// equivalence suite holds the sharded one to.
    pub fn run_ports<S: PacketSource + Send>(
        &mut self,
        ports: Vec<S>,
        horizon: SimTime,
        plan: &FaultPlan,
    ) {
        self.run_ports_tuned(ports, horizon, plan, ShardTuning::default());
    }

    /// [`HbmSwitch::run_ports`] with explicit conservative-window
    /// tuning for the sharded engine. Any tuning is byte-identical to
    /// any other (the equivalence proptest randomizes it); the knobs
    /// only trade messaging overhead against shard run-ahead. Ignored
    /// by the sequential engine.
    pub fn run_ports_tuned<S: PacketSource + Send>(
        &mut self,
        ports: Vec<S>,
        horizon: SimTime,
        plan: &FaultPlan,
        tuning: ShardTuning,
    ) {
        match self.cfg.engine {
            EngineKind::Sequential => self.run_source(MergedSource::new(ports), horizon, plan),
            EngineKind::Sharded { shards } => {
                self.run_sharded(ports, shards, horizon, plan, tuning.sanitized())
            }
        }
    }

    fn shard_params(&self, tuning: ShardTuning) -> ShardParams {
        ShardParams {
            ribbons: self.cfg.ribbons,
            batch_size: self.cfg.batch_size(),
            input_queue_limit: self.cfg.input_queue_limit,
            batch_timeout_batches: self.cfg.batch_timeout_batches,
            batch_time: self.batch_time(),
            fibers: self.cfg.alpha(),
            wavelengths: self.cfg.wavelengths,
            window: self.cfg.hbm_timing.lookahead_bound() * tuning.window_mult,
            block_events: tuning.block_events,
        }
    }

    /// The sharded engine: partition the ports round-robin over worker
    /// threads, each simulating its slice of the input stage ahead of
    /// the core under conservative-window synchronization, and replay
    /// their timestamped boundary effects in the exact global
    /// `(time, seq)` order the sequential engine realizes.
    fn run_sharded<S: PacketSource + Send>(
        &mut self,
        ports: Vec<S>,
        shards: usize,
        horizon: SimTime,
        plan: &FaultPlan,
        tuning: ShardTuning,
    ) {
        assert!(shards > 0, "EngineKind::validate admits only 1..=ribbons");
        let shards = shards.min(ports.len().max(1));
        let params = self.shard_params(tuning);
        let mut buckets: Vec<Vec<S>> = (0..shards).map(|_| Vec::new()).collect();
        for (i, s) in ports.into_iter().enumerate() {
            buckets[i % shards].push(s);
        }
        let profiling = self.prof.is_some();
        crossbeam::thread::scope(|scope| {
            let mut streams = Vec::with_capacity(shards);
            for (s, bucket) in buckets.into_iter().enumerate() {
                let (tx, rx) = std::sync::mpsc::sync_channel(tuning.channel_blocks);
                // Shard workers join the engine's hub under their own
                // source names, flushing one record per shard run.
                let shard_prof = self
                    .prof
                    .as_ref()
                    .map(|p| EngineProfiler::new(p.hub().clone(), &format!("shard{s:02}")));
                let engine = ShardEngine::new(params, bucket).with_profiler(shard_prof);
                scope.spawn(move |_| engine.run(tx));
                streams.push(ShardStream::new(rx).timed(profiling));
            }
            self.run_sharded_core(streams, horizon, plan);
        })
        .expect("shard worker panicked");
    }

    /// The serial core of the sharded engine. Mirrors
    /// [`HbmSwitch::run_source`] exactly — same loop structure, same
    /// arrival-first tie rule, same feeder-progress accounting — except
    /// arrivals come from the k-way merge of shard effect streams and
    /// `Arrival`/`FlushTimeout` consequences are replayed from the
    /// shard-computed effects instead of recomputed.
    fn run_sharded_core(
        &mut self,
        mut streams: Vec<ShardStream>,
        horizon: SimTime,
        plan: &FaultPlan,
    ) {
        let n = self.cfg.ribbons;
        let shards = streams.len();
        // Lane layout: `0..n` per-input BatchAtTail calendars (each
        // input's crossbar dispatch times are strictly increasing),
        // `n` the flush calendar (fire = arm + constant), `n + 1` the
        // strictly periodic read turns. Everything else (drains,
        // frame-at-head, faults) keeps the kernel wheel/heap.
        let read_lane = n + 1;
        let mut q: ShardedEventQueue<Ev> = ShardedEventQueue::new(self.queue_kind, n + 2);
        for ev in plan.events() {
            if !ev.kind.is_photonic() {
                q.schedule(ev.at, Ev::Fault(*ev));
            }
        }
        q.schedule_lane(read_lane, SimTime::ZERO, Ev::ReadTurn);
        self.queued_mirror = Some(vec![DataSize::ZERO; n]);
        let mut dispatched: u64 = 0;
        let mut pulled: u64;
        loop {
            // Same lap structure (and 1-in-64 lap sampling) as
            // `run_source`, with two extra phases: blocked `recv` time
            // accumulates inside the streams (summed below as
            // `ChannelRecv`) and shard-effect replay is `SerialReplay`.
            let mut t0 = prof_now_sampled(&mut self.prof);
            let next = Self::peek_min_arrival(&mut streams);
            if next.is_none() {
                self.arrivals_done = true;
            }
            // Feeder-progress mirror: the sequential feeder holds one
            // lookahead packet whenever the merged stream has more.
            pulled = dispatched + u64::from(next.is_some());
            let take_arrival = match (next.map(|(t, _)| t), q.peek_time()) {
                (Some(a), Some(t)) => a <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                let (at, s) = next.expect("peeked");
                if at > horizon {
                    break;
                }
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                self.live_flush_epochs(at, pulled);
                let mut t0 = prof_renew(t0);
                let fx = streams[s].pop_arrival();
                dispatched += 1;
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                self.apply_arrival(&mut q, at, fx);
                prof_add(&mut self.prof, Phase::SerialReplay, t0);
            } else {
                let t = q.peek_time().expect("peeked");
                if t > horizon {
                    break;
                }
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                self.live_flush_epochs(t, pulled);
                let mut t0 = prof_renew(t0);
                let (now, ev) = q.pop().expect("peeked");
                prof_lap(&mut self.prof, Phase::KernelPop, &mut t0);
                match ev {
                    Ev::FlushTimeout { input, output } => {
                        let fx = streams[input % shards]
                            .next_flush()
                            .expect("armed flush must have a boundary effect");
                        assert!(
                            fx.input == input && fx.output == output && fx.fire == now,
                            "flush replay out of order: event ({input},{output})@{now} \
                             vs effect ({},{})@{}",
                            fx.input,
                            fx.output,
                            fx.fire
                        );
                        self.apply_flush(&mut q, fx);
                        prof_add(&mut self.prof, Phase::SerialReplay, t0);
                    }
                    ev => {
                        let phase = Self::phase_of(&ev);
                        let mut sink = LaneRouter {
                            q: &mut q,
                            read_lane,
                        };
                        self.handle(&mut sink, now, ev);
                        prof_add(&mut self.prof, phase, t0);
                    }
                }
            }
        }
        self.roll_capacity(self.last_departure);
        if self.prof.is_some() {
            let (recv_ns, recv_blocks) = streams.iter().fold((0u64, 0u64), |(ns, n), s| {
                (ns + s.recv_wait_ns(), n + s.recv_waits())
            });
            if let Some(p) = self.prof.as_mut() {
                p.acc_mut()
                    .add_ns_n(Phase::ChannelRecv, recv_ns, recv_blocks);
            }
        }
        drop(streams);
        self.queued_mirror = None;
        self.live_finish(pulled);
        self.prof_finish();
    }

    /// The earliest undispatched arrival across the shard streams, by
    /// the same strict `(arrival, input, id)` key [`MergedSource`]
    /// merges with — a two-level merge under one total order yields the
    /// sequential engine's global arrival order.
    fn peek_min_arrival(streams: &mut [ShardStream]) -> Option<(SimTime, usize)> {
        let mut best: Option<((SimTime, usize, u64), usize)> = None;
        for (s, stream) in streams.iter_mut().enumerate() {
            if let Some(fx) = stream.peek_arrival() {
                let key = (fx.p.arrival, fx.p.input, fx.p.id);
                if best.as_ref().is_none_or(|(b, _)| key < *b) {
                    best = Some((key, s));
                }
            }
        }
        best.map(|((at, _, _), s)| (at, s))
    }

    /// Replay one arrival's boundary effect — statement-for-statement
    /// the sequential `on_arrival`, with the assembler work replaced by
    /// the shard's precomputed results and the drop classification
    /// (fault vs congestion) applied here, where `active_faults` lives.
    fn apply_arrival(&mut self, q: &mut ShardedEventQueue<Ev>, now: SimTime, fx: ArrivalFx) {
        let ArrivalFx {
            p,
            admitted,
            arm_flush,
            batches,
            queued_after,
        } = fx;
        self.offered_packets += 1;
        self.offered_bytes += p.size;
        self.first_arrival.get_or_insert(now);
        if !admitted {
            self.dropped_input += 1;
            self.dropped_bytes += p.size;
            self.dropped_ids.insert(p.id);
            if self.active_faults > 0 {
                self.dropped_packets_fault += 1;
            } else {
                self.dropped_packets_congestion += 1;
            }
            self.record(now, SwitchEvent::InputDrop { input: p.input });
            if let Some(live) = self.live.as_mut() {
                if live.samples_flow(&p.flow) {
                    live.spans_emitted += 1;
                    live.sink.on_span(
                        LIVE_SOURCE,
                        &SpanEvent {
                            packet: p.id,
                            stage: "input_drop",
                            at: now,
                            port: p.input,
                        },
                    );
                }
            }
            return;
        }
        self.live_packets += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.live_packets);
        if let Some(live) = self.live.as_mut() {
            if live.samples_flow(&p.flow) {
                live.sampled.insert(p.id);
                live.spans_emitted += 1;
                live.sink.on_span(
                    LIVE_SOURCE,
                    &SpanEvent {
                        packet: p.id,
                        stage: "arrival",
                        at: now,
                        port: p.input,
                    },
                );
            }
        }
        if let Some(m) = self.queued_mirror.as_mut() {
            m[p.input] = queued_after;
        }
        self.input_peak = self.input_peak.max(queued_after);
        // Schedule order matches the sequential handler (flush timer
        // before batch sends) so global sequence numbers line up.
        if arm_flush {
            let timeout = self.batch_time() * self.cfg.batch_timeout_batches;
            q.schedule_lane(
                self.cfg.ribbons,
                now + timeout,
                Ev::FlushTimeout {
                    input: p.input,
                    output: p.output,
                },
            );
        }
        for (at, b) in batches {
            self.batches_in_flight += 1;
            q.schedule_lane(p.input, at, Ev::BatchAtTail(b));
        }
    }

    /// Replay one flush-timer effect — the sequential `FlushTimeout`
    /// handler with the assembler flush replaced by the shard's result.
    fn apply_flush(&mut self, q: &mut ShardedEventQueue<Ev>, fx: FlushFx) {
        if let Some(m) = self.queued_mirror.as_mut() {
            m[fx.input] = fx.queued_after;
        }
        if let Some((at, b)) = fx.batch {
            self.padded_bytes += b.padding;
            self.batches_in_flight += 1;
            q.schedule_lane(fx.input, at, Ev::BatchAtTail(b));
        }
    }

    /// Serialize the complete mid-run state (plus the pending event
    /// queue and feeder position) into a [`Value`] for a snapshot.
    ///
    /// Diagnostic captures that exist for post-run inspection — the
    /// bounded event trace and the Chrome trace recorder — are not
    /// checkpointable; a run with either enabled is rejected here
    /// rather than resumed with silently truncated diagnostics.
    fn save_state(&self, q: &EventQueue<Ev>, feeder: FeederState) -> Result<Value, SnapshotError> {
        if self.trace.is_some() {
            return Err(SnapshotError::Unsupported(
                "switch event tracing cannot be checkpointed".into(),
            ));
        }
        if self.chrome.is_some() {
            return Err(SnapshotError::Unsupported(
                "chrome trace capture cannot be checkpointed".into(),
            ));
        }
        let mut dropped_ids: Vec<u64> = self.dropped_ids.iter().copied().collect();
        dropped_ids.sort_unstable();
        let live = self.live.as_ref().map(|l| {
            let mut sampled: Vec<u64> = l.sampled.iter().copied().collect();
            sampled.sort_unstable();
            LiveState {
                clock: l.clock.clone(),
                prev: l.prev.clone(),
                sample_one_in: l.sample_one_in,
                sampled,
                epochs_emitted: l.epochs_emitted,
                spans_emitted: l.spans_emitted,
                finished: l.finished,
            }
        });
        Ok(SwitchState {
            cfg: self.cfg.to_value(),
            group: self.group.clone(),
            pfi: self.pfi.clone(),
            assemblers: self.assemblers.clone(),
            input_xbar_free: self.input_xbar_free.clone(),
            flush_pending: self.flush_pending.clone(),
            tail: self.tail.clone(),
            hbm_frames: self.hbm_frames.clone(),
            head: self.head.clone(),
            pending_to_head: self.pending_to_head.clone(),
            outputs: self.outputs.clone(),
            drain_scheduled: self.drain_scheduled.clone(),
            read_cursor: self.read_cursor,
            batches_in_flight: self.batches_in_flight,
            arrivals_done: self.arrivals_done,
            dropped_ids,
            offered_packets: self.offered_packets,
            offered_bytes: self.offered_bytes,
            delivered_packets: self.delivered_packets,
            delivered_bytes: self.delivered_bytes,
            dropped_input: self.dropped_input,
            dropped_frames: self.dropped_frames,
            dropped_bytes: self.dropped_bytes,
            padded_bytes: self.padded_bytes,
            live_packets: self.live_packets,
            peak_in_flight: self.peak_in_flight,
            active_faults: self.active_faults,
            dead_channels: self.dead_channels,
            last_roll: self.last_roll,
            time_degraded: self.time_degraded,
            capacity_lost: self.capacity_lost,
            baseline_occupancy: self.baseline_occupancy,
            pending_recovery: self.pending_recovery,
            recovery_drain: self.recovery_drain,
            dropped_packets_fault: self.dropped_packets_fault,
            dropped_packets_congestion: self.dropped_packets_congestion,
            delays_ns: self.delays_ns.clone(),
            departures: self.departures.clone(),
            first_arrival: self.first_arrival,
            last_departure: self.last_departure,
            input_peak: self.input_peak,
            hbm_occupancy: self.hbm_occupancy.clone(),
            metrics: self.metrics.clone(),
            output_depth: self.output_depth.clone(),
            live,
            queue: q.entries(),
            queue_next_seq: q.next_seq(),
            queue_last_popped: q.now(),
            feeder,
        }
        .to_value())
    }

    /// Overwrite this (freshly built, same-config) switch with a
    /// snapshotted mid-run state, rebuild the event queue, and rewind
    /// `source` to the checkpointed position. The snapshot's config
    /// echo must match `self.cfg` and the live-telemetry shape (period,
    /// sampling rate, on/off) must match how this switch was set up —
    /// anything else is a [`SnapshotError::Mismatch`].
    fn restore_from<S: PacketSource + StatefulSource>(
        &mut self,
        st: SwitchState,
        q: &mut EventQueue<Ev>,
        source: S,
    ) -> Result<CkptFeeder<S>, SnapshotError> {
        if self.cfg.to_value() != st.cfg {
            return Err(SnapshotError::Mismatch(
                "router configuration differs from the checkpointed run".into(),
            ));
        }
        match (self.live.as_mut(), st.live) {
            (None, None) => {}
            (Some(live), Some(ls)) => {
                if live.clock.period() != ls.clock.period() {
                    return Err(SnapshotError::Mismatch(format!(
                        "telemetry epoch period differs: run has {}, snapshot has {}",
                        live.clock.period(),
                        ls.clock.period()
                    )));
                }
                if live.sample_one_in != ls.sample_one_in {
                    return Err(SnapshotError::Mismatch(format!(
                        "span sampling rate differs: run has 1-in-{}, snapshot has 1-in-{}",
                        live.sample_one_in, ls.sample_one_in
                    )));
                }
                live.clock = ls.clock;
                live.prev = ls.prev;
                live.sampled = ls.sampled.into_iter().collect();
                live.epochs_emitted = ls.epochs_emitted;
                live.spans_emitted = ls.spans_emitted;
                live.finished = ls.finished;
                self.live_boundary_ps = if ls.finished {
                    u64::MAX
                } else {
                    self.live
                        .as_ref()
                        .expect("just matched")
                        .clock
                        .next_boundary()
                        .as_ps()
                };
            }
            (Some(_), None) => {
                return Err(SnapshotError::Mismatch(
                    "run streams live telemetry but the snapshot was taken without it".into(),
                ));
            }
            (None, Some(_)) => {
                return Err(SnapshotError::Mismatch(
                    "snapshot streams live telemetry but this run has it off".into(),
                ));
            }
        }
        self.group = st.group;
        self.pfi = st.pfi;
        self.assemblers = st.assemblers;
        self.input_xbar_free = st.input_xbar_free;
        self.flush_pending = st.flush_pending;
        self.tail = st.tail;
        self.hbm_frames = st.hbm_frames;
        self.head = st.head;
        self.pending_to_head = st.pending_to_head;
        self.outputs = st.outputs;
        self.drain_scheduled = st.drain_scheduled;
        self.read_cursor = st.read_cursor;
        self.batches_in_flight = st.batches_in_flight;
        self.arrivals_done = st.arrivals_done;
        self.dropped_ids = st.dropped_ids.into_iter().collect();
        self.offered_packets = st.offered_packets;
        self.offered_bytes = st.offered_bytes;
        self.delivered_packets = st.delivered_packets;
        self.delivered_bytes = st.delivered_bytes;
        self.dropped_input = st.dropped_input;
        self.dropped_frames = st.dropped_frames;
        self.dropped_bytes = st.dropped_bytes;
        self.padded_bytes = st.padded_bytes;
        self.live_packets = st.live_packets;
        self.peak_in_flight = st.peak_in_flight;
        self.active_faults = st.active_faults;
        self.dead_channels = st.dead_channels;
        self.last_roll = st.last_roll;
        self.time_degraded = st.time_degraded;
        self.capacity_lost = st.capacity_lost;
        self.baseline_occupancy = st.baseline_occupancy;
        self.pending_recovery = st.pending_recovery;
        self.recovery_drain = st.recovery_drain;
        self.dropped_packets_fault = st.dropped_packets_fault;
        self.dropped_packets_congestion = st.dropped_packets_congestion;
        self.delays_ns = st.delays_ns;
        self.departures = st.departures;
        self.first_arrival = st.first_arrival;
        self.last_departure = st.last_departure;
        self.input_peak = st.input_peak;
        self.hbm_occupancy = st.hbm_occupancy;
        self.metrics = st.metrics;
        self.output_depth = st.output_depth;
        *q = EventQueue::from_entries_in(
            self.queue_kind,
            st.queue,
            st.queue_next_seq,
            st.queue_last_popped,
        );
        CkptFeeder::restore(source, &st.feeder)
            .map_err(|e| SnapshotError::Mismatch(format!("feeder state does not decode: {e}")))
    }

    /// Snapshot-if-due gate, called at the run loop's checkpoint point
    /// (after the epoch flush, before the event dispatch). Returns
    /// `Ok(true)` when the stop flag fired and a final snapshot was
    /// persisted — the caller returns [`RunOutcome::Interrupted`].
    fn checkpoint_if_due<S: PacketSource + StatefulSource>(
        &self,
        q: &EventQueue<Ev>,
        feeder: &CkptFeeder<S>,
        every_epochs: u64,
        last_ckpt: &mut u64,
        should_stop: &mut dyn FnMut() -> bool,
        persist: &mut dyn FnMut(&Value, u64, u64) -> Result<(), SnapshotError>,
    ) -> Result<bool, SnapshotError> {
        let epochs = self.live_epochs_emitted();
        if epochs == *last_ckpt {
            return Ok(false);
        }
        let stop = should_stop();
        if !stop && epochs - *last_ckpt < every_epochs {
            return Ok(false);
        }
        let state = self.save_state(q, feeder.save())?;
        persist(&state, epochs, self.live_spans_emitted())?;
        *last_ckpt = epochs;
        Ok(stop)
    }

    /// [`HbmSwitch::run_source`] with crash-safe checkpointing: every
    /// `every_epochs` closed telemetry epochs (and whenever
    /// `should_stop` returns true at an epoch boundary) the complete
    /// mid-run state — switch, pending event queue, feeder/source
    /// position, telemetry clock and record counters — is handed to
    /// `persist` as a [`Value`], together with the epoch and span
    /// record counts emitted so far.
    ///
    /// Pass `resume: Some(state)` (a previously persisted value) to
    /// continue an interrupted run: the final report and every
    /// telemetry record emitted after the checkpoint are byte-identical
    /// to the uninterrupted same-seed run, because snapshots are taken
    /// at the loop's idempotent point — after the epoch flush, before
    /// the next dispatch — and capture the exact pop order of the event
    /// queue. On resume the fault `plan` is ignored: pending fault
    /// events live in the snapshotted queue.
    ///
    /// Checkpoints ride the telemetry epoch clock, so live telemetry
    /// must be enabled ([`HbmSwitch::enable_live_telemetry`]) with the
    /// same period and sampling rate as the checkpointed run; the
    /// driver-facing validation for that is
    /// [`ConfigError::CheckpointNeedsEpochs`].
    ///
    /// # Panics
    /// Panics if `every_epochs` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn run_source_checkpointed<S, FStop, FPersist>(
        &mut self,
        source: S,
        horizon: SimTime,
        plan: &FaultPlan,
        resume: Option<&Value>,
        every_epochs: u64,
        mut should_stop: FStop,
        mut persist: FPersist,
    ) -> Result<RunOutcome, SnapshotError>
    where
        S: PacketSource + StatefulSource,
        FStop: FnMut() -> bool,
        FPersist: FnMut(&Value, u64, u64) -> Result<(), SnapshotError>,
    {
        assert!(every_epochs > 0, "checkpoint interval must be positive");
        let mut q: EventQueue<Ev> = EventQueue::with_kind(self.queue_kind);
        let mut feeder = match resume {
            Some(v) => {
                let t0 = prof_now(&self.prof);
                let st = SwitchState::from_value(v).map_err(|e| {
                    SnapshotError::Mismatch(format!(
                        "snapshot does not decode as a switch state: {e}"
                    ))
                })?;
                let feeder = self.restore_from(st, &mut q, source)?;
                prof_add(&mut self.prof, Phase::CheckpointRestore, t0);
                feeder
            }
            None => {
                for ev in plan.events() {
                    if !ev.kind.is_photonic() {
                        q.schedule(ev.at, Ev::Fault(*ev));
                    }
                }
                q.schedule(SimTime::ZERO, Ev::ReadTurn);
                CkptFeeder::new(source)
            }
        };
        let mut last_ckpt = self.live_epochs_emitted();
        loop {
            if feeder.is_exhausted() {
                self.arrivals_done = true;
            }
            let take_arrival = match (feeder.peek_time(), q.peek_time()) {
                (Some(a), Some(t)) => a <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                let at = feeder.peek_time().expect("peeked");
                if at > horizon {
                    break;
                }
                self.live_flush_epochs(at, feeder.pulled());
                // Mirror `checkpoint_if_due`'s quick-return guard so
                // the per-event path pays no clock read; only epoch
                // boundaries time the snapshot work.
                let tck = if self.live_epochs_emitted() != last_ckpt {
                    prof_now(&self.prof)
                } else {
                    None
                };
                let stop = self.checkpoint_if_due(
                    &q,
                    &feeder,
                    every_epochs,
                    &mut last_ckpt,
                    &mut should_stop,
                    &mut persist,
                )?;
                prof_add(&mut self.prof, Phase::CheckpointSave, tck);
                if stop {
                    self.prof_finish();
                    return Ok(RunOutcome::Interrupted);
                }
                let (_, p) = feeder.pop().expect("peeked");
                self.handle(&mut q, at, Ev::Arrival(p));
            } else {
                let t = q.peek_time().expect("peeked");
                if t > horizon {
                    break;
                }
                self.live_flush_epochs(t, feeder.pulled());
                let tck = if self.live_epochs_emitted() != last_ckpt {
                    prof_now(&self.prof)
                } else {
                    None
                };
                let stop = self.checkpoint_if_due(
                    &q,
                    &feeder,
                    every_epochs,
                    &mut last_ckpt,
                    &mut should_stop,
                    &mut persist,
                )?;
                prof_add(&mut self.prof, Phase::CheckpointSave, tck);
                if stop {
                    self.prof_finish();
                    return Ok(RunOutcome::Interrupted);
                }
                let (now, ev) = q.pop().expect("peeked");
                self.handle(&mut q, now, ev);
            }
        }
        self.roll_capacity(self.last_departure);
        let pulled = feeder.pulled();
        drop(feeder);
        self.live_finish(pulled);
        self.prof_finish();
        Ok(RunOutcome::Completed)
    }

    /// Build the report from current state, cloning the delay histogram
    /// and departure log (use [`HbmSwitch::into_report`] at end of run
    /// to avoid the clones).
    pub fn report(&self) -> SwitchReport {
        self.build_report(self.delays_ns.clone(), self.departures.clone())
    }

    /// Build the end-of-run report, consuming the switch: the delay
    /// histogram and the (potentially very large) departure log move
    /// into the report instead of being cloned.
    pub fn into_report(mut self) -> SwitchReport {
        let delays_ns = std::mem::replace(&mut self.delays_ns, Histogram::new());
        let departures = std::mem::take(&mut self.departures);
        self.build_report(delays_ns, departures)
    }

    fn build_report(&self, delays_ns: Histogram, departures: Vec<PacketDeparture>) -> SwitchReport {
        let first = self.first_arrival.unwrap_or(SimTime::ZERO);
        let span = self.last_departure.saturating_since(first);
        let delivered_rate = if span.is_zero() {
            DataRate::ZERO
        } else {
            DataRate::from_bps(
                u64::try_from(
                    self.delivered_bytes.bits() as u128 * rip_units::PS_PER_S as u128
                        / span.as_ps() as u128,
                )
                .expect("rate overflow"),
            )
        };
        let end = first + span;
        let lane_cv = if self.outputs.is_empty() {
            0.0
        } else {
            self.outputs.iter().map(|p| p.lane_spread_cv()).sum::<f64>() / self.outputs.len() as f64
        };
        let metrics = self.final_metrics(end, span);
        SwitchReport {
            offered_packets: self.offered_packets,
            offered_bytes: self.offered_bytes,
            delivered_packets: self.delivered_packets,
            delivered_bytes: self.delivered_bytes,
            dropped_input: self.dropped_input,
            dropped_frames: self.dropped_frames,
            dropped_bytes: self.dropped_bytes,
            padded_bytes: self.padded_bytes,
            peak_in_flight_packets: self.peak_in_flight,
            delays_ns,
            departures,
            span,
            delivered_rate,
            delivery_fraction: if self.offered_bytes.is_zero() {
                1.0
            } else {
                self.delivered_bytes.bits() as f64 / self.offered_bytes.bits() as f64
            },
            hbm_utilization: if span.is_zero() {
                0.0
            } else {
                self.group.utilization(first, end)
            },
            input_peak: self.input_peak,
            tail_peak: self.tail.occupancy().peak,
            head_peak: self.head.occupancy().peak,
            lane_spread_cv: lane_cv,
            dropped_packets_fault: self.dropped_packets_fault,
            dropped_packets_congestion: self.dropped_packets_congestion,
            time_degraded: self.time_degraded,
            capacity_lost: self.capacity_lost,
            recovery_drain: self.recovery_drain,
            metrics,
        }
    }

    /// The run-time registry plus the end-of-run aggregates pulled from
    /// the HBM device model and the photonic egress stages. Every value
    /// derives from sim time and deterministic counters — never
    /// wall-clock — so repeated same-seed runs serialize identically.
    fn final_metrics(&self, end: SimTime, span: TimeDelta) -> MetricsRegistry {
        let mut m = self.metrics.clone();
        // HBM command mix, row locality and stall accounting.
        let (mut act, mut pre, mut rd, mut wr, mut refr) = (0u64, 0u64, 0u64, 0u64, 0u64);
        let (mut hits, mut misses) = (0u64, 0u64);
        let (mut faw_ps, mut turn_ps, mut bus_ps) = (0u64, 0u64, 0u64);
        for ch in self.group.channels() {
            let s = ch.stats();
            act += s.activates.get();
            pre += s.precharges.get();
            rd += s.reads.get();
            wr += s.writes.get();
            refr += s.refreshes.get();
            hits += s.row_hits.get();
            misses += s.row_misses.get();
            faw_ps += s.faw_stall.total().as_ps();
            turn_ps += s.turnaround.total().as_ps();
            bus_ps += s.bus_busy.total().as_ps();
            if !span.is_zero() {
                for b in 0..ch.num_banks() {
                    m.observe(
                        "hbm.bank_busy_frac",
                        ch.bank_busy(b).as_ps() as f64 / span.as_ps() as f64,
                    );
                }
            }
        }
        m.inc("hbm.cmd.act", act);
        m.inc("hbm.cmd.pre", pre);
        m.inc("hbm.cmd.rd", rd);
        m.inc("hbm.cmd.wr", wr);
        m.inc("hbm.cmd.ref", refr);
        m.inc("hbm.row_hits", hits);
        m.inc("hbm.row_misses", misses);
        m.inc("hbm.faw_stall_ps", faw_ps);
        m.inc("hbm.wtr_turnaround_ps", turn_ps);
        m.inc("hbm.bus_busy_ps", bus_ps);
        if hits + misses > 0 {
            m.set_gauge(
                "hbm.row_hit_ratio",
                end,
                hits as f64 / (hits + misses) as f64,
            );
        }
        // Streaming-memory high-water mark; summed across planes when
        // SPS merges registries, giving an upper bound on the router's
        // total in-flight footprint.
        m.inc("switch.packets.peak_in_flight", self.peak_in_flight);
        // Run totals as counters (additive across planes under the SPS
        // merge; the live gauge series of the same names carries the
        // per-epoch view).
        m.inc("switch.packets.offered", self.offered_packets);
        m.inc("switch.packets.delivered", self.delivered_packets);
        m.inc(
            "switch.packets.dropped",
            self.dropped_packets_fault + self.dropped_packets_congestion,
        );
        // Frame fill efficiency over everything written to the HBM.
        let cap = m.counter("switch.frame.capacity_bytes");
        if cap > 0 {
            m.set_gauge(
                "switch.frame.fill_efficiency",
                end,
                m.counter("switch.frame.payload_bytes") as f64 / cap as f64,
            );
        }
        // Photonic egress: per-lane utilization and E/O energy totals.
        let mut oeo_bits = 0u64;
        let mut oeo_events = 0u64;
        let mut oeo_joules = 0.0f64;
        let lane_bps = self.cfg.rate_per_wavelength.bps();
        for p in &self.outputs {
            oeo_bits += p.oeo().total_converted().bits();
            oeo_events += p.oeo().conversions();
            oeo_joules += p.oeo_energy_joules();
            if !span.is_zero() && lane_bps > 0 {
                let span_s = span.as_ps() as f64 * 1e-12;
                for &bytes in p.lane_bytes() {
                    m.observe(
                        "phy.lane_util",
                        bytes as f64 * 8.0 / (lane_bps as f64 * span_s),
                    );
                }
            }
        }
        m.inc("phy.oeo_bits", oeo_bits);
        m.inc("phy.oeo_conversions", oeo_events);
        m.set_gauge("phy.oeo_energy_j", end, oeo_joules);
        m
    }

    /// Access to the HBM group (device-level stats).
    pub fn hbm(&self) -> &HbmGroup {
        &self.group
    }

    /// The live telemetry registry (run-time metrics only; the full
    /// set including device/photonic aggregates is in
    /// [`SwitchReport::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Per-output HBM queue depth series (frames over sim time).
    pub fn output_depth(&self, o: usize) -> &Series {
        &self.output_depth[o]
    }

    /// Toggle HBM command recording on every channel, so a run's
    /// complete ACT/RD/WR/PRE/REFsb stream can be replayed through an
    /// independent timing-conformance checker afterwards.
    pub fn set_hbm_command_recording(&mut self, on: bool) {
        self.group.set_record_commands(on);
    }

    /// Access to an output port (lane stats, OEO energy).
    pub fn output_port(&self, o: usize) -> &OutputPort {
        &self.outputs[o]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_traffic::{ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix};

    /// Build an arrival-ordered trace for the small config.
    fn trace(load: f64, tm: &TrafficMatrix, horizon: SimTime, seed: u64) -> Vec<Packet> {
        let cfg = RouterConfig::small();
        let streams: Vec<Vec<Packet>> = (0..cfg.ribbons)
            .map(|i| {
                let mut g = PacketGenerator::new(
                    i,
                    cfg.port_rate(),
                    load * tm.row_load(i),
                    tm.row(i).to_vec(),
                    SizeDistribution::Imix,
                    ArrivalProcess::Poisson,
                    256,
                    seed,
                )
                .unwrap();
                g.generate_until(horizon)
            })
            .collect();
        rip_traffic::merge_streams(streams)
    }

    fn horizon_us(us: u64) -> SimTime {
        SimTime::from_ns(us * 1000)
    }

    #[test]
    fn delivers_everything_at_moderate_uniform_load() {
        let cfg = RouterConfig::small();
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.7, &tm, horizon_us(100), 42);
        assert!(!t.is_empty());
        let r = sw.run(&t, horizon_us(400));
        assert_eq!(r.dropped_input, 0, "input drops at moderate load");
        assert_eq!(r.dropped_frames, 0, "frame drops at moderate load");
        assert!(
            r.delivery_fraction > 0.999,
            "delivered only {}",
            r.delivery_fraction
        );
        assert_eq!(r.delivered_packets + r.dropped_input, r.offered_packets);
    }

    #[test]
    fn high_admissible_load_sustains_throughput() {
        let cfg = RouterConfig::small();
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.92, &tm, horizon_us(150), 7);
        let offered: u64 = t.iter().map(|p| p.size.bits()).sum();
        let r = sw.run(&t, horizon_us(600));
        // E3: ~100% throughput for admissible traffic.
        assert!(
            r.delivery_fraction > 0.995,
            "delivered {} of offered",
            r.delivery_fraction
        );
        let offered_rate = offered as f64 / (150e-6) / 1e9; // Gb/s
        assert!(offered_rate > 0.8 * 0.92 * 4.0 * 640.0 * 0.9 / 1.0); // sanity
    }

    #[test]
    fn departures_per_output_are_fifo_per_flow_pair() {
        let cfg = RouterConfig::small();
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(60), 3);
        let r = sw.run(&t, horizon_us(400));
        // Packets of the same (input, output) pair must depart in
        // arrival (id) order — PFI's frame ordering guarantee.
        use std::collections::HashMap;
        let mut key_of: HashMap<u64, (usize, usize)> = HashMap::new();
        for p in &t {
            key_of.insert(p.id, (p.input, p.output));
        }
        let mut last_id: HashMap<(usize, usize), u64> = HashMap::new();
        let mut by_time = r.departures.clone();
        by_time.sort_by_key(|d| (d.time, d.packet));
        for d in &by_time {
            let key = key_of[&d.packet];
            if let Some(&prev) = last_id.get(&key) {
                assert!(
                    d.packet > prev,
                    "pair {key:?}: packet {} departed after {}",
                    prev,
                    d.packet
                );
            }
            last_id.insert(key, d.packet);
        }
        assert!(r.delivered_packets > 100);
    }

    #[test]
    fn hotspot_inadmissible_load_drops_but_keeps_hot_output_saturated() {
        // Shrink the HBM so the per-output region (stack/4/32 KiB
        // frames) fills within a short run — at the real 64 GB stack the
        // router would absorb ~50 ms of oversubscription, the paper's
        // §4 buffering headline.
        let mut cfg = RouterConfig::small();
        cfg.hbm_geometry.stack_capacity = rip_units::DataSize::from_mib(32);
        cfg.validate().unwrap();
        assert_eq!(cfg.region_frames(), 256);
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        // Every input sends 60% of its traffic to output 0: column load
        // 4 x 0.9 x 0.6 = 2.16 -> inadmissible.
        let tm = TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 0.6);
        let t = trace(0.9, &tm, horizon_us(500), 5);
        let r = sw.run(&t, horizon_us(650));
        assert!(
            r.dropped_input + r.dropped_frames > 0,
            "oversubscription must drop"
        );
        // The hot output's line stays busy: delivered >= what output 0
        // can carry, i.e. delivery fraction ~ capacity/offered.
        assert!(r.delivery_fraction > 0.5, "{}", r.delivery_fraction);
        assert!(r.delivery_fraction < 0.95, "{}", r.delivery_fraction);
    }

    #[test]
    fn low_load_latency_is_bounded_by_padding_and_bypass() {
        let cfg = RouterConfig::small();
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.05, &tm, horizon_us(50), 9);
        let r = sw.run(&t, horizon_us(4000));
        assert!(
            r.delivery_fraction > 0.999,
            "padding/bypass must flush everything: {}",
            r.delivery_fraction
        );
        assert!(r.padded_bytes.bytes() > 0, "padding must have been used");
        // Delay bounded by the flush timeout + pipeline, far below the
        // horizon.
        let p99 = r.delays_ns.quantile(0.99).unwrap();
        assert!(p99 < 200_000.0, "p99 delay {p99} ns too large");
    }

    #[test]
    fn without_padding_low_load_strands_data() {
        let mut cfg = RouterConfig::small();
        cfg.padding_and_bypass = false;
        cfg.batch_timeout_batches = 0;
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.05, &tm, horizon_us(50), 9);
        let r = sw.run(&t, horizon_us(4000));
        // Partial frames and partial batches strand without padding;
        // full frames do still fill eventually at 5% load, so the loss
        // is partial but must be visible.
        assert!(
            r.delivery_fraction < 0.99,
            "expected stranding, delivered {}",
            r.delivery_fraction
        );
        // And the padded run of the sibling test delivers everything,
        // strictly more than this run.
        let mut padded_cfg = RouterConfig::small();
        padded_cfg.padding_and_bypass = true;
        let padded = HbmSwitch::new(padded_cfg).unwrap();
        let rp = padded.run(&t, horizon_us(4000));
        assert!(rp.delivery_fraction > r.delivery_fraction);
    }

    #[test]
    fn hbm_utilization_tracks_load() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let lo = HbmSwitch::new(cfg.clone()).unwrap();
        let r_lo = lo.run(&trace(0.3, &tm, horizon_us(100), 11), horizon_us(500));
        let hi = HbmSwitch::new(cfg.clone()).unwrap();
        let r_hi = hi.run(&trace(0.9, &tm, horizon_us(100), 11), horizon_us(500));
        assert!(
            r_hi.hbm_utilization > r_lo.hbm_utilization,
            "hi {} vs lo {}",
            r_hi.hbm_utilization,
            r_lo.hbm_utilization
        );
        // At 90% offered, both directions cross the HBM: utilization
        // approaches 0.9 (of the 2NP-rated group).
        assert!(r_hi.hbm_utilization > 0.6, "{}", r_hi.hbm_utilization);
    }

    #[test]
    fn dynamic_pages_absorb_hotspots_better_than_static_regions() {
        // Same tiny memory, same inadmissible hotspot: dynamic pages let
        // the hot output borrow idle outputs' buffer and drop less.
        let mk = |mode| {
            let mut cfg = RouterConfig::small();
            cfg.hbm_geometry.stack_capacity = rip_units::DataSize::from_mib(32);
            cfg.region_mode = mode;
            cfg
        };
        let tm = TrafficMatrix::hotspot(4, 1.0, 0, 0.6);
        let t = trace(0.9, &tm, horizon_us(500), 5);
        let s = HbmSwitch::new(mk(rip_hbm::RegionMode::Static)).unwrap();
        let rs = s.run(&t, horizon_us(650));
        let d = HbmSwitch::new(mk(rip_hbm::RegionMode::DynamicPages { page_rows: 8 })).unwrap();
        let rd = d.run(&t, horizon_us(650));
        assert!(rs.dropped_bytes.bytes() > 0, "static must drop here");
        assert!(
            rd.dropped_bytes < rs.dropped_bytes,
            "dynamic {} !< static {}",
            rd.dropped_bytes,
            rs.dropped_bytes
        );
        assert!(rd.delivery_fraction > rs.delivery_fraction);
    }

    #[test]
    fn per_lane_egress_adds_wavelength_serialization_delay() {
        let tm = TrafficMatrix::uniform(4, 1.0);
        let base = RouterConfig::small();
        let t = trace(0.6, &tm, horizon_us(80), 31);
        let agg = HbmSwitch::new(base.clone()).unwrap();
        let ra = agg.run(&t, horizon_us(400));
        let mut cfg = base;
        cfg.per_lane_egress = true;
        let lane = HbmSwitch::new(cfg).unwrap();
        let rl = lane.run(&t, horizon_us(400));
        // Both deliver everything at moderate load...
        assert!(ra.delivery_fraction > 0.999);
        assert!(rl.delivery_fraction > 0.999, "{}", rl.delivery_fraction);
        // ...but the lane model pays per-wavelength serialization.
        let ma = ra.delays_ns.mean().unwrap();
        let ml = rl.delays_ns.mean().unwrap();
        assert!(ml > ma, "lane mean {ml} !> aggregate mean {ma}");
    }

    #[test]
    fn trace_records_frame_lifecycle() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(60), 37);
        let mut sw = HbmSwitch::new(cfg).unwrap();
        sw.enable_trace(100_000);
        sw.run_source(
            ReplaySource::new(&t),
            horizon_us(300),
            &FaultPlan::default(),
        );
        assert!(sw.report().delivered_packets > 0);
        let log = sw.trace().expect("tracing enabled");
        let mut writes = 0u64;
        let mut reads = 0u64;
        let mut last_t = rip_units::SimTime::ZERO;
        for &(at, ev) in log.events() {
            assert!(at >= last_t, "trace must be time-ordered");
            last_t = at;
            match ev {
                SwitchEvent::FrameWritten { .. } => writes += 1,
                SwitchEvent::FrameRead { .. } => reads += 1,
                _ => {}
            }
        }
        assert!(writes > 0, "frames must have been written");
        assert!(reads <= writes, "cannot read more frames than written");
        // Occupancy series populated and bounded by what was written.
        let occ = sw.hbm_occupancy();
        assert!(occ.samples_seen() > 0);
        assert!(occ.max().unwrap() <= writes as f64);
    }

    #[test]
    fn tracing_off_records_nothing() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.5, &tm, horizon_us(20), 38);
        let mut sw = HbmSwitch::new(cfg).unwrap();
        sw.run_source(
            ReplaySource::new(&t),
            horizon_us(100),
            &FaultPlan::default(),
        );
        assert!(sw.trace().is_none());
        assert_eq!(sw.hbm_occupancy().samples_seen(), 0);
    }

    #[test]
    fn streaming_engine_matches_preloaded_engine() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(80), 19);
        let mut batch = HbmSwitch::new(cfg.clone()).unwrap();
        let rb = batch.run_preloaded(&t, horizon_us(400), &FaultPlan::default());
        let rs = HbmSwitch::new(cfg).unwrap().run(&t, horizon_us(400));
        assert_eq!(
            format!("{rb:?}"),
            format!("{rs:?}"),
            "streaming run must be indistinguishable from the batch engine"
        );
    }

    #[test]
    fn in_flight_telemetry_balances() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.7, &tm, horizon_us(100), 23);
        let r = HbmSwitch::new(cfg).unwrap().run(&t, horizon_us(400));
        assert!(r.peak_in_flight_packets > 0);
        assert!(r.peak_in_flight_packets <= r.offered_packets);
        // The run drained fully, so the peak is far below the horizon's
        // total packet count — the O(in-flight) memory claim.
        assert!(
            r.peak_in_flight_packets < r.offered_packets / 2,
            "peak {} vs offered {}",
            r.peak_in_flight_packets,
            r.offered_packets
        );
        assert_eq!(
            r.metrics.counter("switch.packets.peak_in_flight"),
            r.peak_in_flight_packets
        );
    }

    #[test]
    fn empty_trace_is_safe() {
        let cfg = RouterConfig::small();
        let sw = HbmSwitch::new(cfg).unwrap();
        let r = sw.run(&[], horizon_us(1));
        assert_eq!(r.offered_packets, 0);
        assert_eq!(r.delivery_fraction, 1.0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.6, &tm, horizon_us(40), 21);
        let a = HbmSwitch::new(cfg.clone()).unwrap();
        let ra = a.run(&t, horizon_us(200));
        let b = HbmSwitch::new(cfg).unwrap();
        let rb = b.run(&t, horizon_us(200));
        assert_eq!(ra.delivered_packets, rb.delivered_packets);
        assert_eq!(ra.delivered_bytes, rb.delivered_bytes);
        assert_eq!(ra.departures.len(), rb.departures.len());
        assert_eq!(
            ra.departures.last().map(|d| (d.packet, d.time)),
            rb.departures.last().map(|d| (d.packet, d.time))
        );
    }

    /// Split an arrival-ordered trace into per-port lanes (re-merging
    /// them by `(arrival, input, id)` reproduces the original order).
    fn port_lanes(t: &[Packet], n: usize) -> Vec<Vec<Packet>> {
        let mut lanes = vec![Vec::new(); n];
        for p in t {
            lanes[p.input].push(*p);
        }
        lanes
    }

    fn run_ports_report(mut cfg: RouterConfig, engine: EngineKind, t: &[Packet]) -> String {
        cfg.engine = engine;
        let lanes = port_lanes(t, cfg.ribbons);
        let mut sw = HbmSwitch::new(cfg).unwrap();
        sw.run_ports(
            lanes.iter().map(|l| ReplaySource::new(l)).collect(),
            horizon_us(400),
            &FaultPlan::default(),
        );
        format!("{:?}", sw.into_report())
    }

    #[test]
    fn sharded_engine_matches_sequential_byte_for_byte() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(80), 19);
        let base = run_ports_report(cfg.clone(), EngineKind::Sequential, &t);
        for shards in [1, 2, 4] {
            let got = run_ports_report(cfg.clone(), EngineKind::Sharded { shards }, &t);
            assert_eq!(got, base, "sharded({shards}) diverged from sequential");
        }
    }

    #[test]
    fn sharded_engine_matches_sequential_with_flush_heavy_low_load() {
        // Low load exercises the flush-timer replay path heavily.
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.05, &tm, horizon_us(80), 9);
        let base = run_ports_report(cfg.clone(), EngineKind::Sequential, &t);
        for shards in [2, 4] {
            let got = run_ports_report(cfg.clone(), EngineKind::Sharded { shards }, &t);
            assert_eq!(got, base, "sharded({shards}) diverged at low load");
        }
    }

    #[test]
    fn sharded_engine_matches_sequential_under_drops_and_faults() {
        // Tiny input limit forces input drops; the fault plan flips
        // `active_faults` mid-run, so the core-side drop classification
        // (fault vs congestion) must replay at the exact same events.
        let mut cfg = RouterConfig::small();
        cfg.input_queue_limit = rip_units::DataSize::from_kib(24);
        let tm = TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 0.6);
        let t = trace(0.9, &tm, horizon_us(120), 5);
        let plan = FaultPlan::new()
            .inject(
                SimTime::from_ns(20_000),
                FaultKind::RefreshStorm {
                    duration: TimeDelta::from_ns(40_000),
                },
            )
            .inject(
                SimTime::from_ns(30_000),
                FaultKind::HbmChannelDown { channel: 1 },
            )
            .recover(
                SimTime::from_ns(70_000),
                FaultKind::HbmChannelDown { channel: 1 },
            );
        let lanes = port_lanes(&t, cfg.ribbons);
        let run = |engine: EngineKind| {
            let mut c = cfg.clone();
            c.engine = engine;
            let mut sw = HbmSwitch::new(c).unwrap();
            sw.enable_trace(100_000);
            sw.run_ports(
                lanes.iter().map(|l| ReplaySource::new(l)).collect(),
                horizon_us(400),
                &plan,
            );
            let events = format!(
                "{:?}",
                sw.trace().expect("tracing on").events().collect::<Vec<_>>()
            );
            (format!("{:?}", sw.into_report()), events)
        };
        let (base_report, base_events) = run(EngineKind::Sequential);
        assert!(base_report.contains("dropped_input"), "sanity");
        for shards in [2, 4] {
            let (report, events) = run(EngineKind::Sharded { shards });
            assert_eq!(report, base_report, "sharded({shards}) report diverged");
            assert_eq!(events, base_events, "sharded({shards}) trace diverged");
        }
    }

    #[test]
    fn sharded_engine_streams_identical_live_telemetry() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(60), 42);
        let lanes = port_lanes(&t, cfg.ribbons);
        let run = |engine: EngineKind| {
            let mut c = cfg.clone();
            c.engine = engine;
            let staged = rip_telemetry::SharedSink::new();
            let mut sw = HbmSwitch::new(c).unwrap();
            sw.enable_live_telemetry(TimeDelta::from_ns(2_000), 64, Box::new(staged.clone()));
            sw.run_ports(
                lanes.iter().map(|l| ReplaySource::new(l)).collect(),
                horizon_us(300),
                &FaultPlan::default(),
            );
            (format!("{:?}", sw.into_report()), staged.take())
        };
        let (base_report, base_records) = run(EngineKind::Sequential);
        for shards in [2, 4] {
            let (report, records) = run(EngineKind::Sharded { shards });
            assert_eq!(report, base_report, "sharded({shards}) report diverged");
            assert_eq!(
                records.records(),
                base_records.records(),
                "sharded({shards}) live stream diverged"
            );
        }
    }

    #[test]
    fn window_tuning_never_changes_the_answer() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.6, &tm, horizon_us(40), 21);
        let lanes = port_lanes(&t, cfg.ribbons);
        let run = |tuning: ShardTuning| {
            let mut c = cfg.clone();
            c.engine = EngineKind::Sharded { shards: 2 };
            let mut sw = HbmSwitch::new(c).unwrap();
            sw.run_ports_tuned(
                lanes.iter().map(|l| ReplaySource::new(l)).collect(),
                horizon_us(200),
                &FaultPlan::default(),
                tuning,
            );
            format!("{:?}", sw.into_report())
        };
        let base = run(ShardTuning::default());
        for tuning in [
            ShardTuning {
                block_events: 1,
                window_mult: 1,
                channel_blocks: 1,
            },
            ShardTuning {
                block_events: 7,
                window_mult: 3,
                channel_blocks: 2,
            },
            ShardTuning {
                block_events: 4096,
                window_mult: 100_000,
                channel_blocks: 16,
            },
        ] {
            assert_eq!(run(tuning), base, "{tuning:?} changed the report");
        }
    }

    const CKPT_PERIOD: TimeDelta = TimeDelta::from_ns(2_000);

    /// A live-streaming switch for the checkpoint tests, with the
    /// staged sink handle to read records back out.
    fn ckpt_switch() -> (HbmSwitch, rip_telemetry::SharedSink) {
        let staged = rip_telemetry::SharedSink::new();
        let mut sw = HbmSwitch::new(RouterConfig::small()).unwrap();
        sw.enable_live_telemetry(CKPT_PERIOD, 64, Box::new(staged.clone()));
        (sw, staged)
    }

    #[test]
    fn checkpointing_does_not_perturb_the_run() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(40), 42);
        let (mut plain, plain_sink) = ckpt_switch();
        plain.run_source(
            ReplaySource::new(&t),
            horizon_us(200),
            &FaultPlan::default(),
        );
        let (mut ck, ck_sink) = ckpt_switch();
        let mut snapshots = 0u64;
        let outcome = ck
            .run_source_checkpointed(
                ReplaySource::new(&t),
                horizon_us(200),
                &FaultPlan::default(),
                None,
                1,
                || false,
                |_, _, _| {
                    snapshots += 1;
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        assert!(snapshots >= 3, "expected one snapshot per epoch");
        assert_eq!(
            format!("{:?}", plain.into_report()),
            format!("{:?}", ck.into_report()),
            "taking checkpoints changed the simulation"
        );
        assert_eq!(plain_sink.take().records(), ck_sink.take().records());
    }

    #[test]
    fn resume_from_any_checkpoint_continues_byte_identically() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(40), 42);
        let (mut base, base_sink) = ckpt_switch();
        let mut snaps: Vec<(Value, u64, u64)> = Vec::new();
        base.run_source_checkpointed(
            ReplaySource::new(&t),
            horizon_us(200),
            &FaultPlan::default(),
            None,
            1,
            || false,
            |v, epochs, spans| {
                snaps.push((v.clone(), epochs, spans));
                Ok(())
            },
        )
        .unwrap();
        let base_report = format!("{:?}", base.into_report());
        let base_records = base_sink.take();
        let base_records = base_records.records();
        assert!(snaps.len() >= 3);
        for (snap, epochs, spans) in &snaps {
            let (mut sw, sink) = ckpt_switch();
            let outcome = sw
                .run_source_checkpointed(
                    ReplaySource::new(&t),
                    horizon_us(200),
                    &FaultPlan::default(),
                    Some(snap),
                    1,
                    || false,
                    |_, _, _| Ok(()),
                )
                .unwrap();
            assert_eq!(outcome, RunOutcome::Completed);
            assert_eq!(
                format!("{:?}", sw.into_report()),
                base_report,
                "report diverged resuming from epoch {epochs}"
            );
            // Stream records emitted before the checkpoint plus the
            // resumed stream must equal the uninterrupted stream.
            let keep = (epochs + spans) as usize;
            let resumed = sink.take();
            let merged: Vec<_> = base_records
                .iter()
                .take(keep)
                .chain(resumed.records().iter())
                .cloned()
                .collect();
            let expect: Vec<_> = base_records.iter().cloned().collect();
            assert_eq!(
                merged, expect,
                "stream diverged resuming from epoch {epochs}"
            );
        }
    }

    #[test]
    fn stop_flag_snapshots_at_the_next_boundary_and_resumes() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(40), 42);
        let (mut base, base_sink) = ckpt_switch();
        base.run_source(
            ReplaySource::new(&t),
            horizon_us(200),
            &FaultPlan::default(),
        );
        let base_report = format!("{:?}", base.into_report());
        let base_records = base_sink.take();

        let (mut sw, sink) = ckpt_switch();
        let mut snap = None;
        let mut boundaries = 0u32;
        let outcome = sw
            .run_source_checkpointed(
                ReplaySource::new(&t),
                horizon_us(200),
                &FaultPlan::default(),
                None,
                1_000_000, // interval never fires; only the stop flag snapshots
                || {
                    boundaries += 1;
                    boundaries >= 3
                },
                |v, epochs, spans| {
                    snap = Some((v.clone(), epochs, spans));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(outcome, RunOutcome::Interrupted);
        let (snap, epochs, spans) = snap.expect("stop must have persisted a snapshot");
        // Nothing is emitted after the final snapshot, so the partial
        // stream is exactly the first epochs+spans records.
        let partial = sink.take();
        assert_eq!(partial.records().len() as u64, epochs + spans);

        let (mut resumed_sw, resumed_sink) = ckpt_switch();
        let outcome = resumed_sw
            .run_source_checkpointed(
                ReplaySource::new(&t),
                horizon_us(200),
                &FaultPlan::default(),
                Some(&snap),
                1_000_000,
                || false,
                |_, _, _| Ok(()),
            )
            .unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(format!("{:?}", resumed_sw.into_report()), base_report);
        let resumed = resumed_sink.take();
        let merged: Vec<_> = partial
            .records()
            .iter()
            .chain(resumed.records().iter())
            .cloned()
            .collect();
        let expect: Vec<_> = base_records.records().iter().cloned().collect();
        assert_eq!(merged, expect);
    }

    #[test]
    fn resume_rejects_a_different_configuration() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(40), 42);
        let (mut sw, _sink) = ckpt_switch();
        let mut snap = None;
        sw.run_source_checkpointed(
            ReplaySource::new(&t),
            horizon_us(200),
            &FaultPlan::default(),
            None,
            1,
            || false,
            |v, _, _| {
                snap = Some(v.clone());
                Ok(())
            },
        )
        .unwrap();
        let snap = snap.unwrap();

        // Different config: rejected before any state is overwritten.
        let mut other_cfg = RouterConfig::small();
        other_cfg.head_frames += 1;
        let staged = rip_telemetry::SharedSink::new();
        let mut other = HbmSwitch::new(other_cfg).unwrap();
        other.enable_live_telemetry(CKPT_PERIOD, 64, Box::new(staged.clone()));
        let err = other
            .run_source_checkpointed(
                ReplaySource::new(&t),
                horizon_us(200),
                &FaultPlan::default(),
                Some(&snap),
                1,
                || false,
                |_, _, _| Ok(()),
            )
            .unwrap_err();
        assert!(
            format!("{err}").contains("configuration differs"),
            "unexpected error: {err}"
        );

        // Live telemetry off: the snapshot carries a stream position
        // the run could not continue.
        let mut silent = HbmSwitch::new(RouterConfig::small()).unwrap();
        let err = silent
            .run_source_checkpointed(
                ReplaySource::new(&t),
                horizon_us(200),
                &FaultPlan::default(),
                Some(&snap),
                1,
                || false,
                |_, _, _| Ok(()),
            )
            .unwrap_err();
        assert!(
            format!("{err}").contains("live telemetry"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn diagnostic_captures_cannot_be_checkpointed() {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let t = trace(0.8, &tm, horizon_us(40), 42);
        let (mut sw, _sink) = ckpt_switch();
        sw.enable_trace(1000);
        let err = sw
            .run_source_checkpointed(
                ReplaySource::new(&t),
                horizon_us(200),
                &FaultPlan::default(),
                None,
                1,
                || false,
                |_, _, _| Ok(()),
            )
            .unwrap_err();
        assert!(
            format!("{err}").contains("tracing"),
            "unexpected error: {err}"
        );
    }
}
