//! Component-level fault schedules and degraded-mode accounting.
//!
//! A [`FaultPlan`] is a deterministic, time-stamped schedule of component
//! failures (and recoveries) threaded through every layer of the router:
//!
//! * **HBM** — [`FaultKind::HbmChannelDown`] and
//!   [`FaultKind::HbmBankStuck`] make the PFI engine re-derive its
//!   staggered interleave over the surviving channels/banks (in-flight
//!   data drains before a channel goes dark);
//! * **memory controller** — [`FaultKind::RefreshStorm`] models a rogue
//!   refresh engine pumping REFsb indiscriminately for a fixed duration;
//! * **photonics** — [`FaultKind::WavelengthLoss`] kills one comb-laser
//!   line of a ribbon, [`FaultKind::PlaneDown`] takes a whole HBM switch
//!   out of the optical split so ingress traffic re-steers onto the
//!   survivors.
//!
//! Plans are validated against a [`RouterConfig`] up front
//! ([`FaultPlan::validate`]) and replayed exactly — two runs with the
//! same seed and plan are byte-identical.

use std::error::Error;
use std::fmt;

use rip_units::{SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::config::RouterConfig;

/// One failing (or recovering) component.
///
/// At the router (SPS) level, `channel` indices are **global**
/// (`0..H·T`, plane = `channel / T`); a plan fed directly to one
/// [`crate::HbmSwitch`] uses switch-local indices (`0..T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// An HBM channel fails: it accepts no new frame segments (data
    /// already written drains out before the channel goes dark).
    HbmChannelDown {
        /// Failing channel.
        channel: usize,
    },
    /// A bank sticks: it cannot activate for new frames; its segments
    /// re-home onto healthy banks of the same interleaving group.
    HbmBankStuck {
        /// Channel holding the bank.
        channel: usize,
        /// Stuck bank.
        bank: usize,
    },
    /// The refresh engine goes rogue and pumps REFsb indiscriminately
    /// for `duration`, colliding with the PFI activate schedule.
    /// Self-recovering — explicit [`FaultAction::Recover`] is rejected.
    RefreshStorm {
        /// How long the storm lasts.
        duration: TimeDelta,
    },
    /// One WDM wavelength of a ribbon goes dark (a comb-laser line
    /// dying takes it out on every fiber of the ribbon).
    WavelengthLoss {
        /// Affected ribbon.
        ribbon: usize,
        /// Lost wavelength index.
        lambda: usize,
    },
    /// A whole HBM switch plane goes down: the optical split is rebuilt
    /// so its fibers re-steer to the surviving planes.
    PlaneDown {
        /// Failing switch plane.
        switch: usize,
    },
}

impl FaultKind {
    /// Whether this fault is applied at the optical front end (epoch
    /// re-split) rather than inside an HBM switch.
    pub fn is_photonic(&self) -> bool {
        matches!(
            self,
            FaultKind::WavelengthLoss { .. } | FaultKind::PlaneDown { .. }
        )
    }
}

/// Whether the component fails or returns to service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultAction {
    /// The component fails at the event time.
    Inject,
    /// The component returns to service at the event time.
    Recover,
}

/// One time-stamped fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// Which component.
    pub kind: FaultKind,
    /// Fail or recover.
    pub action: FaultAction,
}

/// A deterministic fault schedule, kept sorted by event time (events at
/// the same instant apply in insertion order).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (a run under it is byte-identical to a plain run).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a failure at `at`.
    pub fn inject(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(FaultEvent {
            at,
            kind,
            action: FaultAction::Inject,
        });
        self
    }

    /// Add a recovery at `at` (must match an earlier injection).
    pub fn recover(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(FaultEvent {
            at,
            kind,
            action: FaultAction::Recover,
        });
        self
    }

    /// Append an event, keeping the schedule time-sorted (stable).
    pub fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
        self.events.sort_by_key(|e| e.at);
    }

    /// The schedule, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether any event touches the optical front end.
    pub fn has_photonic_events(&self) -> bool {
        self.events.iter().any(|e| e.kind.is_photonic())
    }

    /// Check the plan against a configuration: indices in range,
    /// recoveries matching earlier injections, no duplicate active
    /// injections, storms self-recovering, and at least one switch
    /// plane alive at all times. Channel indices are validated against
    /// the router-wide range `0..H·T`.
    pub fn validate(&self, cfg: &RouterConfig) -> Result<(), FaultPlanError> {
        let channels = cfg.switches * cfg.channels();
        let banks = cfg.hbm_geometry.banks_per_channel;
        let mut active: Vec<FaultKind> = Vec::new();
        let mut planes_down = vec![false; cfg.switches];
        for ev in &self.events {
            match ev.kind {
                FaultKind::HbmChannelDown { channel } => {
                    if channel >= channels {
                        return Err(FaultPlanError::ChannelOutOfRange { channel, channels });
                    }
                }
                FaultKind::HbmBankStuck { channel, bank } => {
                    if channel >= channels {
                        return Err(FaultPlanError::ChannelOutOfRange { channel, channels });
                    }
                    if bank >= banks {
                        return Err(FaultPlanError::BankOutOfRange {
                            channel,
                            bank,
                            banks,
                        });
                    }
                }
                FaultKind::RefreshStorm { duration } => {
                    if matches!(ev.action, FaultAction::Recover) {
                        return Err(FaultPlanError::StormRecover);
                    }
                    if duration.is_zero() {
                        return Err(FaultPlanError::ZeroStormDuration);
                    }
                }
                FaultKind::WavelengthLoss { ribbon, lambda } => {
                    if ribbon >= cfg.ribbons {
                        return Err(FaultPlanError::RibbonOutOfRange {
                            ribbon,
                            ribbons: cfg.ribbons,
                        });
                    }
                    if lambda >= cfg.wavelengths {
                        return Err(FaultPlanError::WavelengthOutOfRange {
                            ribbon,
                            lambda,
                            wavelengths: cfg.wavelengths,
                        });
                    }
                }
                FaultKind::PlaneDown { switch } => {
                    if switch >= cfg.switches {
                        return Err(FaultPlanError::SwitchOutOfRange {
                            switch,
                            switches: cfg.switches,
                        });
                    }
                }
            }
            // Storms self-recover; everything else must pair up.
            if !matches!(ev.kind, FaultKind::RefreshStorm { .. }) {
                match ev.action {
                    FaultAction::Inject => {
                        if active.contains(&ev.kind) {
                            return Err(FaultPlanError::DuplicateInject { kind: ev.kind });
                        }
                        active.push(ev.kind);
                        if let FaultKind::PlaneDown { switch } = ev.kind {
                            planes_down[switch] = true;
                            if planes_down.iter().all(|&d| d) {
                                return Err(FaultPlanError::AllPlanesDown);
                            }
                        }
                    }
                    FaultAction::Recover => {
                        match active.iter().position(|k| *k == ev.kind) {
                            Some(i) => {
                                active.remove(i);
                            }
                            None => {
                                return Err(FaultPlanError::RecoverWithoutInject { kind: ev.kind });
                            }
                        }
                        if let FaultKind::PlaneDown { switch } = ev.kind {
                            planes_down[switch] = false;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The sub-plan one switch plane sees: HBM channel/bank events whose
    /// global channel lives on `switch` (re-indexed to switch-local
    /// channels), plus refresh storms (which hit every plane's
    /// controller). Front-end events are handled by the SPS layer and
    /// are excluded here.
    pub fn project_switch(&self, cfg: &RouterConfig, switch: usize) -> FaultPlan {
        let t = cfg.channels();
        let mut plan = FaultPlan::new();
        for ev in &self.events {
            let kind = match ev.kind {
                FaultKind::HbmChannelDown { channel } if channel / t == switch => {
                    FaultKind::HbmChannelDown {
                        channel: channel % t,
                    }
                }
                FaultKind::HbmBankStuck { channel, bank } if channel / t == switch => {
                    FaultKind::HbmBankStuck {
                        channel: channel % t,
                        bank,
                    }
                }
                FaultKind::RefreshStorm { duration } => FaultKind::RefreshStorm { duration },
                _ => continue,
            };
            plan.push(FaultEvent { kind, ..*ev });
        }
        plan
    }
}

/// Why a [`FaultPlan`] was rejected for a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// A channel index exceeds the router's `H·T` channels.
    ChannelOutOfRange {
        /// Offending index.
        channel: usize,
        /// Router-wide channel count.
        channels: usize,
    },
    /// A bank index exceeds the banks per channel.
    BankOutOfRange {
        /// Channel the event named.
        channel: usize,
        /// Offending bank index.
        bank: usize,
        /// Banks per channel.
        banks: usize,
    },
    /// A ribbon index exceeds `N`.
    RibbonOutOfRange {
        /// Offending index.
        ribbon: usize,
        /// Ribbon count.
        ribbons: usize,
    },
    /// A wavelength index exceeds `W`.
    WavelengthOutOfRange {
        /// Ribbon the event named.
        ribbon: usize,
        /// Offending wavelength index.
        lambda: usize,
        /// Wavelengths per fiber.
        wavelengths: usize,
    },
    /// A switch index exceeds `H`.
    SwitchOutOfRange {
        /// Offending index.
        switch: usize,
        /// Switch count.
        switches: usize,
    },
    /// Refresh storms self-recover; explicit recovery is meaningless.
    StormRecover,
    /// A refresh storm must last a positive duration.
    ZeroStormDuration,
    /// A recovery without a matching earlier injection.
    RecoverWithoutInject {
        /// The unmatched component.
        kind: FaultKind,
    },
    /// The same component injected twice without recovering in between.
    DuplicateInject {
        /// The doubly-injected component.
        kind: FaultKind,
    },
    /// The plan takes every switch plane down at once — nothing could
    /// carry traffic.
    AllPlanesDown,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::ChannelOutOfRange { channel, channels } => {
                write!(f, "channel {channel} out of range (router has {channels})")
            }
            FaultPlanError::BankOutOfRange {
                channel,
                bank,
                banks,
            } => write!(
                f,
                "bank {bank} of channel {channel} out of range ({banks} banks/channel)"
            ),
            FaultPlanError::RibbonOutOfRange { ribbon, ribbons } => {
                write!(f, "ribbon {ribbon} out of range (N = {ribbons})")
            }
            FaultPlanError::WavelengthOutOfRange {
                ribbon,
                lambda,
                wavelengths,
            } => write!(
                f,
                "wavelength {lambda} of ribbon {ribbon} out of range (W = {wavelengths})"
            ),
            FaultPlanError::SwitchOutOfRange { switch, switches } => {
                write!(f, "switch {switch} out of range (H = {switches})")
            }
            FaultPlanError::StormRecover => {
                write!(f, "refresh storms self-recover; drop the explicit Recover")
            }
            FaultPlanError::ZeroStormDuration => {
                write!(f, "refresh storm duration must be positive")
            }
            FaultPlanError::RecoverWithoutInject { kind } => {
                write!(f, "recovery of {kind:?} without a matching injection")
            }
            FaultPlanError::DuplicateInject { kind } => {
                write!(f, "{kind:?} injected twice without recovering")
            }
            FaultPlanError::AllPlanesDown => {
                write!(f, "plan takes every switch plane down at once")
            }
        }
    }
}

impl Error for FaultPlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_ns(us * 1000)
    }

    #[test]
    fn plan_sorts_events_by_time() {
        let plan = FaultPlan::new()
            .recover(t(20), FaultKind::HbmChannelDown { channel: 1 })
            .inject(t(5), FaultKind::HbmChannelDown { channel: 1 })
            .inject(t(10), FaultKind::PlaneDown { switch: 0 });
        let times: Vec<_> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![t(5), t(10), t(20)]);
        assert_eq!(plan.len(), 3);
        assert!(plan.has_photonic_events());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn validation_accepts_well_formed_plans() {
        let cfg = RouterConfig::small();
        let plan = FaultPlan::new()
            .inject(t(1), FaultKind::HbmChannelDown { channel: 3 })
            .recover(t(2), FaultKind::HbmChannelDown { channel: 3 })
            .inject(
                t(3),
                FaultKind::RefreshStorm {
                    duration: TimeDelta::from_ns(500),
                },
            )
            .inject(
                t(4),
                FaultKind::WavelengthLoss {
                    ribbon: 0,
                    lambda: 1,
                },
            )
            .inject(t(5), FaultKind::PlaneDown { switch: 2 });
        plan.validate(&cfg).expect("plan should be valid");
        // Empty plans are trivially valid.
        FaultPlan::new().validate(&cfg).unwrap();
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let cfg = RouterConfig::small(); // H=4, T=8, 32 banks, N=4, W=4
        let oob = FaultPlan::new().inject(t(1), FaultKind::HbmChannelDown { channel: 32 });
        assert_eq!(
            oob.validate(&cfg),
            Err(FaultPlanError::ChannelOutOfRange {
                channel: 32,
                channels: 32
            })
        );
        let bank = FaultPlan::new().inject(
            t(1),
            FaultKind::HbmBankStuck {
                channel: 0,
                bank: 32,
            },
        );
        assert!(matches!(
            bank.validate(&cfg),
            Err(FaultPlanError::BankOutOfRange { .. })
        ));
        let storm_rec = FaultPlan::new().recover(
            t(1),
            FaultKind::RefreshStorm {
                duration: TimeDelta::from_ns(10),
            },
        );
        assert_eq!(storm_rec.validate(&cfg), Err(FaultPlanError::StormRecover));
        let zero_storm = FaultPlan::new().inject(
            t(1),
            FaultKind::RefreshStorm {
                duration: TimeDelta::ZERO,
            },
        );
        assert_eq!(
            zero_storm.validate(&cfg),
            Err(FaultPlanError::ZeroStormDuration)
        );
        let unmatched = FaultPlan::new().recover(t(1), FaultKind::HbmChannelDown { channel: 0 });
        assert!(matches!(
            unmatched.validate(&cfg),
            Err(FaultPlanError::RecoverWithoutInject { .. })
        ));
        let dup = FaultPlan::new()
            .inject(t(1), FaultKind::HbmChannelDown { channel: 0 })
            .inject(t(2), FaultKind::HbmChannelDown { channel: 0 });
        assert!(matches!(
            dup.validate(&cfg),
            Err(FaultPlanError::DuplicateInject { .. })
        ));
        let blackout = (0..4).fold(FaultPlan::new(), |p, s| {
            p.inject(t(1 + s as u64), FaultKind::PlaneDown { switch: s })
        });
        assert_eq!(blackout.validate(&cfg), Err(FaultPlanError::AllPlanesDown));
        let lam = FaultPlan::new().inject(
            t(1),
            FaultKind::WavelengthLoss {
                ribbon: 0,
                lambda: 4,
            },
        );
        assert!(matches!(
            lam.validate(&cfg),
            Err(FaultPlanError::WavelengthOutOfRange { .. })
        ));
    }

    #[test]
    fn projection_reindexes_channels_per_plane() {
        let cfg = RouterConfig::small(); // T = 8 channels per switch
        let plan = FaultPlan::new()
            .inject(t(1), FaultKind::HbmChannelDown { channel: 9 }) // plane 1, local 1
            .inject(
                t(2),
                FaultKind::HbmBankStuck {
                    channel: 17,
                    bank: 3,
                },
            ) // plane 2
            .inject(
                t(3),
                FaultKind::RefreshStorm {
                    duration: TimeDelta::from_ns(100),
                },
            )
            .inject(t(4), FaultKind::PlaneDown { switch: 1 });
        let p0 = plan.project_switch(&cfg, 0);
        // Plane 0 only sees the storm.
        assert_eq!(p0.len(), 1);
        assert!(matches!(
            p0.events()[0].kind,
            FaultKind::RefreshStorm { .. }
        ));
        let p1 = plan.project_switch(&cfg, 1);
        assert_eq!(p1.len(), 2);
        assert_eq!(
            p1.events()[0].kind,
            FaultKind::HbmChannelDown { channel: 1 }
        );
        let p2 = plan.project_switch(&cfg, 2);
        assert_eq!(
            p2.events()[0].kind,
            FaultKind::HbmBankStuck {
                channel: 1,
                bank: 3
            }
        );
    }
}
