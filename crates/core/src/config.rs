//! Router configuration: every parameter of §2.2/§3.2, with the
//! reference instantiation and ratio-preserving scaled variants.

use rip_hbm::{HbmGeometry, HbmTiming, PfiConfig, RegionMode};
use rip_units::{DataRate, DataSize};
use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// The SRAM interface width used throughout the paper's HBM switch
/// (input ports, crossbar ports and tail/head SRAM modules): 2,048 bits.
pub const SRAM_INTERFACE_BITS: u64 = 2_048;

/// How long a run keeps simulating after arrivals stop, so in-flight
/// data can drain to the outputs.
///
/// Replaces the former hard-coded `drain = 2 × horizon`: the policy is
/// carried on [`RouterConfig`], validated with it, and honored by the
/// SPS router, the mimicking checker and the bench binaries. Absent
/// from a serialized config, it deserializes to the default (factor 2),
/// which is byte-identical to the old constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DrainPolicy {
    /// Simulate until `factor ×` the arrival horizon. `factor` counts
    /// the horizon itself, so it must be at least 1 (1 = stop with the
    /// arrivals, no extra drain time); the default is 2 — one extra
    /// horizon of drain, ample for every admissible workload in the
    /// experiment suite.
    HorizonFactor {
        /// Multiple of the arrival horizon to simulate in total.
        factor: u64,
    },
}

impl Default for DrainPolicy {
    fn default() -> Self {
        DrainPolicy::HorizonFactor { factor: 2 }
    }
}

impl DrainPolicy {
    /// The absolute simulation deadline for an arrival horizon.
    pub fn deadline(&self, horizon: rip_units::SimTime) -> rip_units::SimTime {
        match *self {
            DrainPolicy::HorizonFactor { factor } => {
                rip_units::SimTime::from_ps(horizon.as_ps().saturating_mul(factor))
            }
        }
    }

    /// Reject degenerate policies (a factor of 0 would end runs before
    /// the first arrival).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            DrainPolicy::HorizonFactor { factor: 0 } => Err(ConfigError::DrainFactorZero),
            _ => Ok(()),
        }
    }
}

/// Which execution engine drives a single [`crate::HbmSwitch`] run.
///
/// `Sequential` is the monolithic event loop and the differential
/// oracle; `Sharded` splits the input stage across `shards` worker
/// threads coordinated by timestamped boundary messages, with
/// byte-identical output as the contract (the engine-equivalence suite
/// runs every shipped config under both). Absent from a serialized
/// config it defaults to `Sequential`, so existing specs are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum EngineKind {
    /// One event loop on the calling thread (the differential oracle).
    #[default]
    Sequential,
    /// Input-stage shards on worker threads feeding a serial core.
    Sharded {
        /// Worker-thread count; each owns `ribbons / shards` (rounded)
        /// input ports. Must be in `1..=ribbons`.
        shards: usize,
    },
}

impl EngineKind {
    /// Validate against a port count (shard counts outside
    /// `1..=ribbons` leave shards with no work or none at all).
    pub fn validate(&self, ribbons: usize) -> Result<(), ConfigError> {
        match *self {
            EngineKind::Sequential => Ok(()),
            EngineKind::Sharded { shards: 0 } => Err(ConfigError::ZeroShards),
            EngineKind::Sharded { shards } if shards > ribbons => {
                Err(ConfigError::TooManyShards { shards, ribbons })
            }
            EngineKind::Sharded { .. } => Ok(()),
        }
    }
}

/// Complete configuration of one router-in-a-package.
///
/// The reference values ([`RouterConfig::reference`]) are the paper's:
/// N = 16 ribbons × F = 64 fibers × W = 16 wavelengths × R = 40 Gb/s,
/// H = 16 HBM switches of B = 4 HBM4 stacks each, γ = 4, S = 1 KiB,
/// k = 4 KiB batches and K = 512 KiB frames. Scaled variants keep every
/// ratio the paper's correctness arguments rely on (k = N × interface
/// width, K = γ·T·S, α = F/H, memory rate ≥ 2·N·P) and are validated by
/// [`RouterConfig::validate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterConfig {
    /// N — fiber ribbons, also ports per HBM switch.
    pub ribbons: usize,
    /// F — fibers per ribbon.
    pub fibers_per_ribbon: usize,
    /// W — WDM wavelengths per fiber per direction.
    pub wavelengths: usize,
    /// R — rate per wavelength.
    pub rate_per_wavelength: DataRate,
    /// H — parallel HBM switches.
    pub switches: usize,
    /// B — HBM stacks per HBM switch.
    pub stacks_per_switch: usize,
    /// HBM device geometry.
    pub hbm_geometry: HbmGeometry,
    /// HBM timing rules.
    pub hbm_timing: HbmTiming,
    /// γ — banks per interleaving group.
    pub gamma: usize,
    /// S — PFI segment size.
    pub segment: DataSize,
    /// Internal speedup of the SRAM → HBM pipeline relative to the line
    /// rate (the "small speedup" of Design 6 for OQ mimicking).
    pub speedup: f64,
    /// Input-port VOQ byte budget per port (drops beyond it).
    pub input_queue_limit: DataSize,
    /// Per-output head SRAM budget, in frames.
    pub head_frames: usize,
    /// Pad partial frames / bypass the HBM when an output would
    /// otherwise idle (§4 "Latency and bypass").
    pub padding_and_bypass: bool,
    /// T' — stripe frames over a subset of the channels (§5 datacenter
    /// variant; `None` = full stripe, the WAN design).
    pub stripe_channels: Option<usize>,
    /// HBM row allocation among per-output FIFO regions (§3.2: static
    /// or dynamic with large pages).
    pub region_mode: RegionMode,
    /// Serialize each packet on its hashed (fiber, wavelength) lane at
    /// the wavelength rate `R` in addition to the aggregate port
    /// (exposes ECMP/LAG lane-collision effects; off = aggregate-only).
    pub per_lane_egress: bool,
    /// Form a padded batch if a partial batch waits longer than this
    /// many batch times at an input port (0 disables the timeout).
    pub batch_timeout_batches: u64,
    /// How long runs keep draining after arrivals end (defaults to
    /// twice the arrival horizon; see [`DrainPolicy`]).
    #[serde(default)]
    pub drain: DrainPolicy,
    /// Which execution engine drives single-switch runs (defaults to
    /// the sequential oracle; see [`EngineKind`]).
    #[serde(default)]
    pub engine: EngineKind,
}

impl RouterConfig {
    /// The paper's reference configuration (§2.2, §3.2).
    pub fn reference() -> Self {
        RouterConfig {
            ribbons: 16,
            fibers_per_ribbon: 64,
            wavelengths: 16,
            rate_per_wavelength: DataRate::from_gbps(40),
            switches: 16,
            stacks_per_switch: 4,
            hbm_geometry: HbmGeometry::hbm4(),
            hbm_timing: HbmTiming::hbm4(),
            gamma: 4,
            segment: DataSize::from_kib(1),
            speedup: 1.0,
            input_queue_limit: DataSize::from_mib(1),
            head_frames: 2,
            padding_and_bypass: true,
            batch_timeout_batches: 64,
            drain: DrainPolicy::default(),
            engine: EngineKind::default(),
            stripe_channels: None,
            region_mode: RegionMode::Static,
            per_lane_egress: false,
        }
    }

    /// A scaled-down configuration that preserves the paper's ratios,
    /// sized for packet-level discrete-event simulation: N = H = 4
    /// ports/switches, one 8-channel stack per switch (exactly 2·N·P of
    /// memory bandwidth), γ = 4, S = 1 KiB.
    pub fn small() -> Self {
        RouterConfig {
            ribbons: 4,
            fibers_per_ribbon: 16,
            wavelengths: 4,
            rate_per_wavelength: DataRate::from_gbps(40),
            switches: 4,
            stacks_per_switch: 1,
            hbm_geometry: HbmGeometry {
                channels_per_stack: 8,
                channel_width_bits: 64,
                gbps_per_pin: 10,
                banks_per_channel: 32,
                row_size: DataSize::from_kib(2),
                stack_capacity: DataSize::from_gib(16),
                burst_length: 8,
            },
            hbm_timing: HbmTiming::hbm4(),
            gamma: 4,
            segment: DataSize::from_kib(1),
            speedup: 1.0,
            input_queue_limit: DataSize::from_kib(512),
            head_frames: 2,
            padding_and_bypass: true,
            batch_timeout_batches: 64,
            drain: DrainPolicy::default(),
            engine: EngineKind::default(),
            stripe_channels: None,
            region_mode: RegionMode::Static,
            per_lane_egress: false,
        }
    }

    /// An even smaller configuration for fault-injection studies:
    /// T = 4 channels per switch, so one dead channel is exactly a
    /// quarter of the plane's memory bandwidth — degradation ratios
    /// come out as round fractions. Same ratio discipline as
    /// [`RouterConfig::small`] (k = N × interface width, K = γ·T·S,
    /// memory rate = 2·N·P exactly).
    pub fn resilience_small() -> Self {
        RouterConfig {
            ribbons: 4,
            fibers_per_ribbon: 16,
            wavelengths: 2,
            rate_per_wavelength: DataRate::from_gbps(40),
            switches: 4,
            stacks_per_switch: 1,
            hbm_geometry: HbmGeometry {
                channels_per_stack: 4,
                channel_width_bits: 64,
                gbps_per_pin: 10,
                banks_per_channel: 16,
                row_size: DataSize::from_kib(2),
                stack_capacity: DataSize::from_gib(16),
                burst_length: 8,
            },
            hbm_timing: HbmTiming::hbm4(),
            gamma: 4,
            segment: DataSize::from_kib(1),
            speedup: 1.0,
            input_queue_limit: DataSize::from_kib(512),
            head_frames: 2,
            padding_and_bypass: true,
            batch_timeout_batches: 64,
            drain: DrainPolicy::default(),
            engine: EngineKind::default(),
            stripe_channels: None,
            region_mode: RegionMode::Static,
            per_lane_egress: false,
        }
    }

    /// A mid-size scaled configuration: N = H = 8 ports/switches of
    /// 640 Gb/s, two 8-channel stacks (exactly 2·N·P), k = 2 KiB,
    /// K = 64 KiB. Heavier than [`RouterConfig::small`]; used by the
    /// scaling tests and benches.
    pub fn medium() -> Self {
        RouterConfig {
            ribbons: 8,
            fibers_per_ribbon: 32,
            wavelengths: 4,
            rate_per_wavelength: DataRate::from_gbps(40),
            switches: 8,
            stacks_per_switch: 2,
            hbm_geometry: HbmGeometry {
                channels_per_stack: 8,
                channel_width_bits: 64,
                gbps_per_pin: 10,
                banks_per_channel: 32,
                row_size: DataSize::from_kib(2),
                stack_capacity: DataSize::from_gib(16),
                burst_length: 8,
            },
            hbm_timing: HbmTiming::hbm4(),
            gamma: 4,
            segment: DataSize::from_kib(1),
            speedup: 1.0,
            input_queue_limit: DataSize::from_mib(1),
            head_frames: 2,
            padding_and_bypass: true,
            batch_timeout_batches: 64,
            drain: DrainPolicy::default(),
            engine: EngineKind::default(),
            stripe_channels: None,
            region_mode: RegionMode::Static,
            per_lane_egress: false,
        }
    }

    /// α = F/H — fibers per (ribbon, switch) pair.
    pub fn alpha(&self) -> usize {
        self.fibers_per_ribbon / self.switches
    }

    /// Rate of one fiber (`W·R`).
    pub fn fiber_rate(&self) -> DataRate {
        self.rate_per_wavelength * self.wavelengths as u64
    }

    /// P — per-port rate of an HBM switch (`α·W·R`).
    pub fn port_rate(&self) -> DataRate {
        self.fiber_rate() * self.alpha() as u64
    }

    /// Internal (sped-up) port rate of the SRAM/HBM pipeline.
    pub fn internal_rate(&self) -> DataRate {
        self.port_rate().scale(self.speedup)
    }

    /// T — HBM channels per switch.
    pub fn channels(&self) -> usize {
        self.stacks_per_switch * self.hbm_geometry.channels_per_stack
    }

    /// k — batch size (`N ×` the 2,048-bit interface width).
    pub fn batch_size(&self) -> DataSize {
        DataSize::from_bits(SRAM_INTERFACE_BITS) * self.ribbons as u64
    }

    /// Batch slice size (`k/N` = 256 B).
    pub fn batch_slice(&self) -> DataSize {
        self.batch_size() / self.ribbons as u64
    }

    /// K — frame size (`γ·T'·S`, where `T'` is the stripe width).
    pub fn frame_size(&self) -> DataSize {
        let stripe = self.stripe_channels.unwrap_or_else(|| self.channels());
        self.segment * (self.gamma * stripe) as u64
    }

    /// Batches per frame (`K/k`).
    pub fn batches_per_frame(&self) -> u64 {
        self.frame_size() / self.batch_size()
    }

    /// Total package ingress (`N·F·W·R`).
    pub fn total_ingress(&self) -> DataRate {
        self.fiber_rate() * (self.ribbons * self.fibers_per_ribbon) as u64
    }

    /// Total package I/O, both directions.
    pub fn total_io(&self) -> DataRate {
        self.total_ingress() * 2
    }

    /// Memory I/O each HBM switch must sustain (`2·N·P`).
    pub fn per_switch_memory_io(&self) -> DataRate {
        self.port_rate() * (2 * self.ribbons) as u64
    }

    /// Peak bandwidth of the HBM group in one switch.
    pub fn hbm_peak(&self) -> DataRate {
        self.hbm_geometry.channel_rate() * self.channels() as u64
    }

    /// Buffer capacity per switch (all stacks).
    pub fn buffer_per_switch(&self) -> DataSize {
        self.hbm_geometry.stack_capacity * self.stacks_per_switch as u64
    }

    /// HBM frames each per-output FIFO region can hold.
    pub fn region_frames(&self) -> u64 {
        (self.buffer_per_switch() / self.ribbons as u64) / self.frame_size()
    }

    /// The PFI configuration for this router's switches.
    pub fn pfi(&self) -> PfiConfig {
        PfiConfig {
            gamma: self.gamma,
            segment: self.segment,
            num_outputs: self.ribbons,
            stripe_channels: self.stripe_channels,
            region_mode: self.region_mode,
        }
    }

    /// Validate every constraint the design relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ribbons == 0 || self.switches == 0 || self.stacks_per_switch == 0 {
            return Err(ConfigError::ZeroCounts);
        }
        if !self.fibers_per_ribbon.is_multiple_of(self.switches) {
            return Err(ConfigError::FiberSwitchDivisibility {
                fibers: self.fibers_per_ribbon,
                switches: self.switches,
            });
        }
        self.hbm_geometry.validate().map_err(ConfigError::Hbm)?;
        self.hbm_timing.validate().map_err(ConfigError::Hbm)?;
        if !(1.0..=4.0).contains(&self.speedup) {
            return Err(ConfigError::SpeedupOutOfRange(self.speedup));
        }
        // Memory bandwidth must cover ingress + egress with the speedup.
        let needed = self.per_switch_memory_io().scale(self.speedup);
        if self.hbm_peak().bps() < needed.bps() {
            return Err(ConfigError::MemoryBelowRequired {
                peak: self.hbm_peak(),
                needed,
            });
        }
        // Frame must be a whole number of batches.
        if !self.frame_size().is_multiple_of(self.batch_size()) {
            return Err(ConfigError::FrameBatchMismatch {
                frame: self.frame_size(),
                batch: self.batch_size(),
            });
        }
        if self.head_frames == 0 {
            return Err(ConfigError::NoHeadFrames);
        }
        if self.region_frames() < 2 {
            return Err(ConfigError::RegionTooSmall);
        }
        self.drain.validate()?;
        self.engine.validate(self.ribbons)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_every_paper_number() {
        let c = RouterConfig::reference();
        c.validate().expect("reference config valid");
        assert_eq!(c.alpha(), 4);
        assert_eq!(c.port_rate(), DataRate::from_gbps(2560));
        assert_eq!(c.channels(), 128);
        assert_eq!(c.batch_size(), DataSize::from_kib(4));
        assert_eq!(c.batch_slice(), DataSize::from_bytes(256));
        assert_eq!(c.frame_size(), DataSize::from_kib(512));
        assert_eq!(c.batches_per_frame(), 128);
        assert_eq!(c.total_ingress().bps(), 655_360_000_000_000);
        assert_eq!(c.per_switch_memory_io().tbps(), 81.92);
        assert_eq!(c.hbm_peak().tbps(), 81.92);
        assert_eq!(c.buffer_per_switch(), DataSize::from_gib(256));
        // 256 GiB / 16 outputs / 512 KiB frames = 32,768 frames.
        assert_eq!(c.region_frames(), 32 * 1024);
        c.pfi()
            .validate(&rip_hbm::HbmGroup::new(
                c.stacks_per_switch,
                c.hbm_geometry,
                c.hbm_timing,
            ))
            .expect("reference PFI valid");
    }

    #[test]
    fn small_config_preserves_ratios() {
        let c = RouterConfig::small();
        c.validate().expect("small config valid");
        assert_eq!(c.alpha(), 4);
        assert_eq!(c.port_rate(), DataRate::from_gbps(640));
        assert_eq!(c.batch_size(), DataSize::from_kib(1));
        assert_eq!(c.batch_slice(), DataSize::from_bytes(256));
        assert_eq!(c.frame_size(), DataSize::from_kib(32));
        assert_eq!(c.batches_per_frame(), 32);
        // Memory exactly covers 2NP as in the reference design.
        assert_eq!(c.per_switch_memory_io(), c.hbm_peak());
    }

    #[test]
    fn resilience_config_preserves_ratios() {
        let c = RouterConfig::resilience_small();
        c.validate().expect("resilience config valid");
        assert_eq!(c.alpha(), 4);
        assert_eq!(c.channels(), 4);
        // P = 4 fibers x 2λ x 40 Gb/s = 320 Gb/s per port.
        assert_eq!(c.port_rate(), DataRate::from_gbps(320));
        assert_eq!(c.batch_size(), DataSize::from_kib(1));
        assert_eq!(c.frame_size(), DataSize::from_kib(16));
        assert_eq!(c.batches_per_frame(), 16);
        // Memory exactly covers 2NP: 4 x 640 Gb/s = 2.56 Tb/s.
        assert_eq!(c.per_switch_memory_io(), c.hbm_peak());
        // One dead channel = exactly a quarter of the HBM peak.
        assert_eq!(c.hbm_peak(), c.hbm_geometry.channel_rate() * 4);
        c.pfi()
            .validate(&rip_hbm::HbmGroup::new(
                c.stacks_per_switch,
                c.hbm_geometry,
                c.hbm_timing,
            ))
            .expect("resilience PFI valid");
    }

    #[test]
    fn medium_config_preserves_ratios() {
        let c = RouterConfig::medium();
        c.validate().expect("medium config valid");
        assert_eq!(c.alpha(), 4);
        assert_eq!(c.port_rate(), DataRate::from_gbps(640));
        assert_eq!(c.batch_size(), DataSize::from_kib(2));
        assert_eq!(c.batch_slice(), DataSize::from_bytes(256));
        assert_eq!(c.frame_size(), DataSize::from_kib(64));
        assert_eq!(c.per_switch_memory_io(), c.hbm_peak());
    }

    #[test]
    fn validation_catches_violations() {
        let mut c = RouterConfig::small();
        c.fibers_per_ribbon = 15;
        assert!(c.validate().is_err());

        let mut c = RouterConfig::small();
        c.speedup = 0.5;
        assert!(c.validate().is_err());

        let mut c = RouterConfig::small();
        c.speedup = 1.5; // memory no longer covers 2NP x speedup
        assert!(c.validate().is_err());

        let mut c = RouterConfig::small();
        c.head_frames = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_kind_validates_shard_counts() {
        let mut c = RouterConfig::small();
        assert_eq!(c.engine, EngineKind::Sequential);
        c.validate().expect("sequential default valid");

        c.engine = EngineKind::Sharded { shards: 0 };
        assert_eq!(c.validate(), Err(ConfigError::ZeroShards));

        c.engine = EngineKind::Sharded { shards: 5 }; // > 4 ribbons
        assert_eq!(
            c.validate(),
            Err(ConfigError::TooManyShards {
                shards: 5,
                ribbons: 4
            })
        );

        for shards in 1..=4 {
            c.engine = EngineKind::Sharded { shards };
            c.validate().expect("in-range shard count valid");
        }
    }

    #[test]
    fn engine_kind_serde_defaults_to_sequential() {
        // A config serialized before the engine field existed must
        // decode to the sequential oracle: the `#[serde(default)]` on
        // the field falls back to `EngineKind::default()`.
        #[derive(Deserialize)]
        struct Probe {
            #[serde(default)]
            engine: EngineKind,
        }
        let p: Probe = serde_json::from_str("{}").expect("engine field optional");
        assert_eq!(p.engine, EngineKind::Sequential);
        // The tagged forms decode and round-trip.
        let e: EngineKind =
            serde_json::from_str(r#"{"kind":"sharded","shards":2}"#).expect("tagged decodes");
        assert_eq!(e, EngineKind::Sharded { shards: 2 });
        let text = serde_json::to_string(&e).expect("serializes");
        let back: EngineKind = serde_json::from_str(&text).expect("round-trips");
        assert_eq!(back, e);
    }

    #[test]
    fn speedup_scales_internal_rate() {
        let mut c = RouterConfig::small();
        // Give the memory headroom, then speed up.
        c.hbm_geometry.channels_per_stack = 16;
        c.speedup = 1.5;
        c.validate().expect("sped-up config valid");
        assert_eq!(c.internal_rate(), DataRate::from_gbps(960));
    }
}
