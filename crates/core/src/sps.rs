//! The top-level Split-Parallel Switch (§2): the optical front end
//! splits fibers over `H` independent HBM switches; each packet crosses
//! exactly one of them (one OEO conversion).

use rip_photonics::{FrontEnd, SplitMap, SplitPattern};
use rip_sim::snapshot::SnapshotError;
use rip_telemetry::{
    MemorySink, MetricsRegistry, ProfileHub, SharedSink, SinkRecord, TelemetrySink,
};
use rip_traffic::hash::{lane_for, HashKind};
use rip_traffic::{
    ArrivalProcess, BoundedSource, FiberFill, Packet, PacketGenerator, PacketSource,
    SizeDistribution, StatefulSource, TrafficMatrix,
};
use rip_units::{DataSize, SimTime, TimeDelta};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::config::RouterConfig;
use crate::error::ConfigError;
use crate::hbm_switch::{HbmSwitch, RunOutcome, SwitchReport};
use crate::resilience::{FaultAction, FaultKind, FaultPlan};

/// Workload specification for an SPS run.
#[derive(Debug, Clone)]
pub struct SpsWorkload {
    /// Ribbon-to-ribbon traffic matrix (destination mix per ribbon).
    pub tm: TrafficMatrix,
    /// Aggregate offered load per ribbon, in units of total ribbon rate
    /// (1.0 = all fibers full).
    pub load: f64,
    /// How the load is spread over each ribbon's fibers.
    pub fill: FiberFill,
    /// Packet-size mix.
    pub sizes: SizeDistribution,
    /// Arrival process per fiber.
    pub process: ArrivalProcess,
    /// Flow pool per fiber.
    pub flows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SpsWorkload {
    /// A uniform Poisson/IMIX workload at the given load.
    pub fn uniform(ribbons: usize, load: f64, seed: u64) -> Self {
        SpsWorkload {
            tm: TrafficMatrix::uniform(ribbons, 1.0),
            load,
            fill: FiberFill::Uniform,
            sizes: SizeDistribution::Imix,
            process: ArrivalProcess::Poisson,
            flows: 128,
            seed,
        }
    }
}

/// Options controlling live epoch streaming in
/// [`SpsRouter::run_streamed`].
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Epoch period (sim time) of every plane's epoch clock.
    pub period: TimeDelta,
    /// Lifecycle sampling: 1-in-N packets by flow hash (0 = off).
    pub sample_one_in: u64,
}

/// Per-switch summary within an SPS report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerSwitch {
    /// Offered bytes at this switch.
    pub offered: DataSize,
    /// Delivered bytes.
    pub delivered: DataSize,
    /// Dropped bytes.
    pub dropped: DataSize,
    /// Full switch report.
    pub report: SwitchReport,
}

/// End-to-end SPS run outcome.
///
/// Field order and the `BTreeMap`-backed metrics make the serialized
/// form byte-stable across runs and thread schedules: per-plane reports
/// are always collected and merged in plane order after the crossbeam
/// join, never in thread-completion order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpsReport {
    /// Per-switch outcomes.
    pub switches: Vec<PerSwitch>,
    /// Total offered bytes.
    pub offered: DataSize,
    /// Total delivered bytes.
    pub delivered: DataSize,
    /// `1 − delivered/offered`.
    pub loss_fraction: f64,
    /// Offered-byte imbalance across switches: max/mean.
    pub load_imbalance: f64,
    /// Packets dropped at the optical front end (lost wavelengths).
    pub front_end_dropped_packets: u64,
    /// Bytes dropped at the optical front end.
    pub front_end_dropped: DataSize,
    /// Per-plane offered load relative to plane ingress capacity
    /// (`N·P` over the generation horizon); > 1 means a degraded split
    /// re-steered more traffic onto the plane than it can carry.
    pub plane_overload: Vec<f64>,
    /// Telemetry merged over all planes in plane order (counters add,
    /// histograms merge bucket-wise, gauges keep the latest write), so
    /// totals are invariant under plane-count repartitioning.
    pub metrics: MetricsRegistry,
}

/// One plane's complete outcome from [`SpsRouter::run_planes`]: the
/// switch report, the front-end drop accounting attributed to the
/// plane, and the plane's staged live-telemetry records (empty when the
/// subset ran silent). Replaying `staged` renamed to `planeNN` in
/// ascending plane order — across however many processes ran the
/// subsets — reproduces the single-process stream byte-for-byte.
#[derive(Debug, Clone)]
pub struct PlaneRun {
    /// Global plane index.
    pub plane: usize,
    /// The plane's switch report.
    pub report: SwitchReport,
    /// Packets the optical front end dropped toward this plane.
    pub fe_dropped_packets: u64,
    /// Bytes the optical front end dropped toward this plane.
    pub fe_dropped: DataSize,
    /// The plane's buffered telemetry records, in emission order.
    pub staged: MemorySink,
}

/// The Split-Parallel Switch: `H` HBM switches behind a spatial fiber
/// split.
pub struct SpsRouter {
    cfg: RouterConfig,
    front_end: FrontEnd,
    profile: Option<ProfileHub>,
}

/// One photonic-fault epoch: the front-end state effective from `start`
/// until the next epoch begins.
struct Epoch {
    start: SimTime,
    split: SplitMap,
    /// Lost wavelengths, `[ribbon][lambda]`.
    lost: Vec<Vec<bool>>,
}

/// The streaming front end of one plane: a pull-based demultiplexing
/// source built by [`SpsRouter::plane_source`].
///
/// It re-derives every per-fiber [`PacketGenerator`] (same seeds as
/// [`SpsRouter::split_traffic`]), k-way-merges them in global
/// `(arrival, input, id)` order with lane insertion order as the final
/// tie-break — the exact order `split_traffic`'s stable sort produces —
/// and filters the merged stream through the photonic fault epochs:
/// packets on a lost wavelength are dropped at the front end (counted
/// here when this plane would have received them), and packets steered
/// to other planes are skipped. Each plane's source regenerates the
/// full fiber set independently, trading H× generation CPU for
/// O(fibers) memory per plane instead of a materialized per-plane
/// trace; per-plane reports stay byte-identical to the batch split.
pub struct PlaneSource {
    lanes: Vec<FiberLane>,
    epochs: Vec<Epoch>,
    /// Whether each epoch has any lost wavelength (skips the per-packet
    /// flow hash in healthy epochs).
    epoch_has_loss: Vec<bool>,
    plane: usize,
    wavelengths: usize,
    fe_dropped_packets: u64,
    fe_dropped: DataSize,
}

/// One (ribbon, fiber) generator lane inside a [`PlaneSource`], with a
/// one-packet merge lookahead. The fiber index lives here because
/// [`Packet`] does not carry it, and the split map routes by fiber.
struct FiberLane {
    ribbon: usize,
    fiber: usize,
    source: BoundedSource<PacketGenerator>,
    pending: Option<Packet>,
    done: bool,
}

impl PlaneSource {
    /// Packets dropped at the optical front end that this plane's split
    /// would otherwise have received (lost-wavelength drops). Summing
    /// over all planes reproduces the router-global front-end count.
    pub fn front_end_dropped_packets(&self) -> u64 {
        self.fe_dropped_packets
    }

    /// Bytes of the packets counted by
    /// [`PlaneSource::front_end_dropped_packets`].
    pub fn front_end_dropped(&self) -> DataSize {
        self.fe_dropped
    }
}

impl PacketSource for PlaneSource {
    fn next_packet(&mut self) -> Option<Packet> {
        loop {
            // Refill lane lookaheads and pick the globally earliest
            // packet; strict `<` keeps the earliest lane on full
            // (arrival, input, id) ties, matching the stable sort.
            let mut best: Option<usize> = None;
            for i in 0..self.lanes.len() {
                if self.lanes[i].pending.is_none() && !self.lanes[i].done {
                    match self.lanes[i].source.next_packet() {
                        Some(p) => self.lanes[i].pending = Some(p),
                        None => self.lanes[i].done = true,
                    }
                }
                if let Some(p) = &self.lanes[i].pending {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let q = self.lanes[b].pending.as_ref().expect("best has pending");
                            (p.arrival, p.input, p.id) < (q.arrival, q.input, q.id)
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            let i = best?;
            let p = self.lanes[i]
                .pending
                .take()
                .expect("chosen lane has pending");
            let (ribbon, fiber) = (self.lanes[i].ribbon, self.lanes[i].fiber);
            let e = self.epochs.partition_point(|ep| ep.start <= p.arrival) - 1;
            let ep = &self.epochs[e];
            let target = ep.split.switch_for(ribbon, fiber);
            if self.epoch_has_loss[e] {
                let lambda = lane_for(p.flow, self.wavelengths, HashKind::Crc32c);
                if ep.lost[ribbon][lambda] {
                    if target == self.plane {
                        self.fe_dropped_packets += 1;
                        self.fe_dropped += p.size;
                    }
                    continue;
                }
            }
            if target == self.plane {
                return Some(p);
            }
        }
    }
}

/// Serialized position of one [`FiberLane`]: its bounded generator's
/// pull state plus the merge lookahead.
#[derive(Serialize, Deserialize)]
struct LaneState {
    source: Value,
    pending: Option<Packet>,
    done: bool,
}

/// Serialized [`PlaneSource`] position. The lane set itself is derived
/// from the workload, so only the mutable pull state rides along.
#[derive(Serialize, Deserialize)]
struct PlaneSourceState {
    lanes: Vec<LaneState>,
    fe_dropped_packets: u64,
    fe_dropped: DataSize,
}

impl StatefulSource for PlaneSource {
    fn save_state(&self) -> Value {
        PlaneSourceState {
            lanes: self
                .lanes
                .iter()
                .map(|l| LaneState {
                    source: l.source.save_state(),
                    pending: l.pending,
                    done: l.done,
                })
                .collect(),
            fe_dropped_packets: self.fe_dropped_packets,
            fe_dropped: self.fe_dropped,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let st = PlaneSourceState::from_value(state)?;
        if st.lanes.len() != self.lanes.len() {
            return Err(DeError::custom(format!(
                "plane source has {} lanes, snapshot has {}",
                self.lanes.len(),
                st.lanes.len()
            )));
        }
        for (lane, ls) in self.lanes.iter_mut().zip(st.lanes) {
            lane.source.restore_state(&ls.source)?;
            lane.pending = ls.pending;
            lane.done = ls.done;
        }
        self.fe_dropped_packets = st.fe_dropped_packets;
        self.fe_dropped = st.fe_dropped;
        Ok(())
    }
}

/// One completed plane inside an SPS checkpoint: everything the final
/// merge needs, plus how many records the plane contributed to the
/// driver sink (so a resume can report how much of a partial stream to
/// keep).
#[derive(Clone, Serialize, Deserialize)]
struct PlaneDone {
    report: SwitchReport,
    fe_packets: u64,
    fe_bytes: DataSize,
    records: u64,
}

/// A router-level checkpoint: which plane is running, the finished
/// planes' results, the running plane's staged (not yet replayed)
/// records, and its engine state.
#[derive(Serialize, Deserialize)]
struct SpsCkptState {
    /// Config echo; resuming under a different config is refused.
    cfg: Value,
    plane: u64,
    done: Vec<PlaneDone>,
    staged: Vec<SinkRecord>,
    /// [`Value::Null`] between planes (the next plane starts fresh).
    engine: Value,
}

impl SpsRouter {
    /// Build an SPS router with the given split pattern.
    pub fn new(cfg: RouterConfig, pattern: SplitPattern) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let front_end = FrontEnd::new(
            cfg.ribbons,
            cfg.fibers_per_ribbon,
            cfg.wavelengths,
            cfg.rate_per_wavelength,
            cfg.switches,
            pattern,
        )
        .map_err(ConfigError::Photonics)?;
        Ok(SpsRouter {
            cfg,
            front_end,
            profile: None,
        })
    }

    /// Attach a wall-clock profile hub: every plane simulation this
    /// router spawns ([`Self::run_planes`] and everything built on it)
    /// profiles its engine loop as source `planeNN` into `hub`.
    /// Profiling never alters reports, telemetry or snapshots — the
    /// hub stream is wall-clock-only and lives outside every
    /// deterministic surface.
    pub fn set_profile_hub(&mut self, hub: ProfileHub) {
        self.profile = Some(hub);
    }

    /// The attached profile hub, when [`Self::set_profile_hub`] was
    /// called — fleet workers drain it into their wire stream.
    pub fn profile_hub(&self) -> Option<&ProfileHub> {
        self.profile.as_ref()
    }

    /// The optical front end (split map, rates).
    pub fn front_end(&self) -> &FrontEnd {
        &self.front_end
    }

    /// Generate per-fiber traffic for `workload` and return the `H`
    /// per-switch arrival-ordered traces (packet `input`/`output` are
    /// ribbon indices — switch-port indices).
    pub fn split_traffic(&self, w: &SpsWorkload, horizon: SimTime) -> Vec<Vec<Packet>> {
        assert_eq!(w.tm.n(), self.cfg.ribbons, "TM must be ribbon-sized");
        let f = self.cfg.fibers_per_ribbon;
        let mut per_switch: Vec<Vec<Packet>> = vec![Vec::new(); self.cfg.switches];
        for ribbon in 0..self.cfg.ribbons {
            // Per-fiber offered loads for this ribbon.
            let fiber_loads = w.fill.loads(f, w.load * f as f64);
            for (fiber, &load) in fiber_loads.iter().enumerate() {
                if load <= 0.0 {
                    continue;
                }
                let mut g = PacketGenerator::new(
                    ribbon,
                    self.front_end.fiber_rate(),
                    load.min(1.0),
                    w.tm.row(ribbon).to_vec(),
                    w.sizes.clone(),
                    w.process,
                    w.flows,
                    rip_sim::rng::derive_seed(w.seed, (ribbon * f + fiber) as u64),
                )
                .expect("valid generator");
                let sw = self.front_end.split().switch_for(ribbon, fiber);
                per_switch[sw].extend(g.generate_until(horizon));
            }
        }
        for t in per_switch.iter_mut() {
            t.sort_by_key(|p| (p.arrival, p.input, p.id));
        }
        per_switch
    }

    /// Build the streaming front end for one plane: a [`PlaneSource`]
    /// yielding, in arrival order, exactly the packets that
    /// [`SpsRouter::split_traffic`] (or, under photonic faults,
    /// [`SpsRouter::split_traffic_faulted`]) would place in plane
    /// `plane`'s trace — without materializing any trace. Pass
    /// [`FaultPlan::default`] for a healthy front end.
    pub fn plane_source(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
        plane: usize,
    ) -> PlaneSource {
        assert_eq!(w.tm.n(), self.cfg.ribbons, "TM must be ribbon-sized");
        assert!(plane < self.cfg.switches, "plane index out of range");
        let f = self.cfg.fibers_per_ribbon;
        let mut lanes = Vec::new();
        for ribbon in 0..self.cfg.ribbons {
            let fiber_loads = w.fill.loads(f, w.load * f as f64);
            for (fiber, &load) in fiber_loads.iter().enumerate() {
                if load <= 0.0 {
                    continue;
                }
                let g = PacketGenerator::new(
                    ribbon,
                    self.front_end.fiber_rate(),
                    load.min(1.0),
                    w.tm.row(ribbon).to_vec(),
                    w.sizes.clone(),
                    w.process,
                    w.flows,
                    rip_sim::rng::derive_seed(w.seed, (ribbon * f + fiber) as u64),
                )
                .expect("valid generator");
                lanes.push(FiberLane {
                    ribbon,
                    fiber,
                    source: BoundedSource::new(g, horizon),
                    pending: None,
                    done: false,
                });
            }
        }
        let epochs = self.epochs(plan);
        let epoch_has_loss = epochs
            .iter()
            .map(|e| e.lost.iter().flatten().any(|&b| b))
            .collect();
        PlaneSource {
            lanes,
            epochs,
            epoch_has_loss,
            plane,
            wavelengths: self.cfg.wavelengths,
            fe_dropped_packets: 0,
            fe_dropped: DataSize::ZERO,
        }
    }

    /// Run the full router on `workload` until `horizon` (+ drain time).
    ///
    /// The `H` HBM switches are fully independent after the optical
    /// split — exactly the property the SPS architecture banks on — so
    /// they are simulated on parallel threads (crossbeam scope); results
    /// are deterministic regardless of scheduling because each switch's
    /// simulation is self-contained.
    pub fn run(&self, w: &SpsWorkload, horizon: SimTime) -> SpsReport {
        self.run_with_faults(w, horizon, &FaultPlan::default())
    }

    /// Run the router while applying a [`FaultPlan`] across every layer:
    /// photonic events (lost wavelengths, dead planes) partition time
    /// into epochs with re-derived split maps at the front end, and HBM
    /// events are projected onto the plane that owns each global channel
    /// (refresh storms hit every plane's controller). An empty plan is
    /// byte-identical to [`SpsRouter::run`].
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`] for this
    /// router's configuration.
    pub fn run_with_faults(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
    ) -> SpsReport {
        self.run_inner(w, horizon, plan, None)
    }

    /// [`SpsRouter::run_with_faults`] with live telemetry: every plane
    /// streams epoch deltas (and sampled lifecycle spans) while it
    /// runs. Per-plane records are buffered on the worker threads and
    /// replayed into `sink` in plane order after the ordered join,
    /// renamed `plane00`, `plane01`, … — so the stream is byte-stable
    /// across thread schedules, exactly like the merged report. A final
    /// `sps` `run_end` record carries the plane-merged registry.
    pub fn run_streamed(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
        opts: LiveOptions,
        sink: &mut dyn TelemetrySink,
    ) -> SpsReport {
        self.run_inner(w, horizon, plan, Some((opts, sink)))
    }

    fn run_inner(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
        live: Option<(LiveOptions, &mut dyn TelemetrySink)>,
    ) -> SpsReport {
        let all: Vec<usize> = (0..self.cfg.switches).collect();
        let live_opts = live.as_ref().map(|(o, _)| *o);
        let runs = self
            .run_planes(w, horizon, plan, live_opts, &all)
            .expect("the full plane set is always a valid subset");
        let report = self.stitch_report(
            runs.iter()
                .map(|r| (r.report.clone(), r.fe_dropped_packets, r.fe_dropped))
                .collect(),
            horizon,
        );
        if let Some((_, sink)) = live {
            // Replay each plane's buffered stream in plane order, then
            // close with the router-level merged totals.
            for run in &runs {
                run.staged
                    .replay_renamed(&format!("plane{:02}", run.plane), sink);
            }
            sink.on_run_end("sps", self.drain_deadline(horizon), &report.metrics);
        }
        report
    }

    /// The drain deadline this router runs to for a given arrival
    /// horizon — the sim time stamped on the final `run_end` record.
    /// Exposed so out-of-process collectors can close their merged
    /// stream with the exact timestamp the single-process runner uses.
    pub fn drain_deadline(&self, horizon: SimTime) -> SimTime {
        self.cfg.drain.deadline(horizon)
    }

    /// Run only the given subset of planes, returning each plane's
    /// switch report, front-end drop accounting and (when `live` is
    /// set) its staged telemetry records.
    ///
    /// This is the worker half of the fleet split: each plane's
    /// simulation is fully self-contained (its own [`PlaneSource`],
    /// RNG lanes derived from the plane-independent fiber index, and
    /// the fault plan projected per plane), so running planes `{0, 2}`
    /// here and `{1, 3}` in another process produces exactly the
    /// per-plane results the single-process [`SpsRouter::run_streamed`]
    /// computes — byte-for-byte, for any partitioning. The subset must
    /// be non-empty, strictly ascending and within range; anything else
    /// is a [`ConfigError::PlaneSubset`].
    ///
    /// Planes still run on parallel threads within the subset; results
    /// return in subset (ascending plane) order regardless of thread
    /// scheduling.
    pub fn run_planes(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
        live: Option<LiveOptions>,
        planes: &[usize],
    ) -> Result<Vec<PlaneRun>, ConfigError> {
        if planes.is_empty() {
            return Err(ConfigError::PlaneSubset {
                reason: "the subset is empty".into(),
            });
        }
        for pair in planes.windows(2) {
            if pair[1] <= pair[0] {
                return Err(ConfigError::PlaneSubset {
                    reason: format!(
                        "planes must be strictly ascending (found {} after {})",
                        pair[1], pair[0]
                    ),
                });
            }
        }
        if let Some(&worst) = planes.iter().find(|&&p| p >= self.cfg.switches) {
            return Err(ConfigError::PlaneSubset {
                reason: format!(
                    "plane {worst} out of range (router has {} planes)",
                    self.cfg.switches
                ),
            });
        }
        plan.validate(&self.cfg)
            .expect("fault plan must be valid for this router");
        let drain = self.cfg.drain.deadline(horizon);
        let plans: Vec<FaultPlan> = planes
            .iter()
            .map(|&s| plan.project_switch(&self.cfg, s))
            .collect();
        // Per-plane staging buffers for live records (empty and unused
        // when running silent).
        let plane_sinks: Vec<SharedSink> = planes.iter().map(|_| SharedSink::new()).collect();
        // Each plane pulls its arrivals from a streaming front-end
        // demux instead of a materialized trace: memory per plane is
        // O(fibers + in-flight), independent of horizon. Reports are
        // byte-identical to the former batch split (see PlaneSource).
        let results: Vec<(SwitchReport, u64, DataSize)> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = planes
                .iter()
                .zip(&plans)
                .enumerate()
                .map(|(slot, (&plane, sub_plan))| {
                    let cfg = self.cfg.clone();
                    let mut src = self.plane_source(w, horizon, plan, plane);
                    let plane_sink = plane_sinks[slot].clone();
                    let hub = self.profile.clone();
                    scope.spawn(move |_| {
                        let mut sw = HbmSwitch::new(cfg).expect("validated config");
                        if let Some(h) = hub {
                            sw.enable_profiler_as(h, &format!("plane{plane:02}"));
                        }
                        if let Some(o) = live {
                            sw.enable_live_telemetry(
                                o.period,
                                o.sample_one_in,
                                Box::new(plane_sink),
                            );
                        }
                        sw.run_source(&mut src, drain, sub_plan);
                        (
                            sw.into_report(),
                            src.front_end_dropped_packets(),
                            src.front_end_dropped(),
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("switch simulation thread panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        Ok(planes
            .iter()
            .zip(results)
            .zip(plane_sinks)
            .map(
                |((&plane, (report, fe_packets, fe_bytes)), staged)| PlaneRun {
                    plane,
                    report,
                    fe_dropped_packets: fe_packets,
                    fe_dropped: fe_bytes,
                    staged: staged.take(),
                },
            )
            .collect())
    }

    /// Fold per-plane results (in plane order) into the router-level
    /// report: front-end drop totals, per-plane overload against the
    /// ingress capacity, load imbalance and the deterministic metrics
    /// merge. Shared by the threaded runner, the checkpointed runner
    /// and the out-of-process fleet collector, so all three produce
    /// byte-identical reports from the same per-plane results.
    ///
    /// `results` must hold every plane of this router, in plane order.
    pub fn stitch_report(
        &self,
        results: Vec<(SwitchReport, u64, DataSize)>,
        horizon: SimTime,
    ) -> SpsReport {
        let mut fe_dropped_packets = 0u64;
        let mut fe_dropped = DataSize::ZERO;
        let reports: Vec<SwitchReport> = results
            .into_iter()
            .map(|(report, fe_pkts, fe_bytes)| {
                fe_dropped_packets += fe_pkts;
                fe_dropped += fe_bytes;
                report
            })
            .collect();
        // Plane ingress capacity over the generation horizon.
        let plane_capacity =
            (self.cfg.port_rate() * self.cfg.ribbons as u64).data_in(horizon.since(SimTime::ZERO));
        let mut switches = Vec::with_capacity(reports.len());
        let mut offered = DataSize::ZERO;
        let mut delivered = DataSize::ZERO;
        let mut plane_overload = Vec::with_capacity(reports.len());
        // Deterministic telemetry merge: reports arrive in spawn (plane)
        // order from the ordered join above, and the merge itself is
        // associative/commutative, so thread scheduling cannot change it.
        let mut metrics = MetricsRegistry::new();
        for report in reports {
            metrics.merge(&report.metrics);
            offered += report.offered_bytes;
            delivered += report.delivered_bytes;
            plane_overload.push(if plane_capacity.is_zero() {
                0.0
            } else {
                report.offered_bytes.bits() as f64 / plane_capacity.bits() as f64
            });
            switches.push(PerSwitch {
                offered: report.offered_bytes,
                delivered: report.delivered_bytes,
                dropped: report.dropped_bytes,
                report,
            });
        }
        let max = switches.iter().map(|s| s.offered.bits()).max().unwrap_or(0);
        let mean = if switches.is_empty() {
            0
        } else {
            offered.bits() / switches.len() as u64
        };
        SpsReport {
            offered,
            delivered,
            loss_fraction: if offered.is_zero() {
                0.0
            } else {
                1.0 - delivered.bits() as f64 / offered.bits() as f64
            },
            load_imbalance: if mean == 0 {
                1.0
            } else {
                max as f64 / mean as f64
            },
            switches,
            front_end_dropped_packets: fe_dropped_packets,
            front_end_dropped: fe_dropped,
            plane_overload,
            metrics,
        }
    }

    /// [`SpsRouter::run_streamed`] with crash-safe checkpointing: the
    /// planes run **sequentially** (plane order, same order the
    /// threaded runner replays them in), each through
    /// [`HbmSwitch::run_source_checkpointed`], so a snapshot captures
    /// the running plane's full engine state, its staged (not yet
    /// replayed) telemetry records, and the finished planes' results.
    ///
    /// Every `every_epochs` telemetry epochs — and whenever
    /// `should_stop` turns true, including between planes — `persist`
    /// receives the router-level snapshot [`Value`] plus the number of
    /// records already replayed into `sink` (completed planes only;
    /// the running plane's records are staged inside the snapshot). A
    /// caller resuming from that snapshot keeps exactly that many
    /// records of its partial stream and the continuation is
    /// byte-identical to the uninterrupted run.
    ///
    /// Returns `Ok(None)` when interrupted (a final snapshot was
    /// persisted) and `Ok(Some(report))` on completion. Resuming under
    /// a different router configuration, workload shape, or telemetry
    /// options fails with [`SnapshotError::Mismatch`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_streamed_checkpointed(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
        opts: LiveOptions,
        sink: &mut dyn TelemetrySink,
        resume: Option<&Value>,
        every_epochs: u64,
        should_stop: &mut dyn FnMut() -> bool,
        persist: &mut dyn FnMut(&Value, u64) -> Result<(), SnapshotError>,
    ) -> Result<Option<SpsReport>, SnapshotError> {
        plan.validate(&self.cfg)
            .expect("fault plan must be valid for this router");
        let drain = self.cfg.drain.deadline(horizon);
        let plans: Vec<FaultPlan> = (0..self.cfg.switches)
            .map(|s| plan.project_switch(&self.cfg, s))
            .collect();
        let cfg_echo = self.cfg.to_value();
        // Where to pick up: plane index, finished planes, and the
        // running plane's staged records + engine state.
        let (first_plane, mut done, seed_staged, engine0) = match resume {
            Some(v) => {
                let st = SpsCkptState::from_value(v).map_err(|e| {
                    SnapshotError::Mismatch(format!(
                        "snapshot does not decode as an SPS router state: {e}"
                    ))
                })?;
                if st.cfg != cfg_echo {
                    return Err(SnapshotError::Mismatch(
                        "router configuration differs from the checkpointed run".into(),
                    ));
                }
                (st.plane as usize, st.done, st.staged, st.engine)
            }
            None => (0, Vec::new(), Vec::new(), Value::Null),
        };
        if first_plane > self.cfg.switches || done.len() != first_plane.min(self.cfg.switches) {
            return Err(SnapshotError::Mismatch(
                "snapshot plane progress is inconsistent with this router".into(),
            ));
        }
        let mut records_done: u64 = done.iter().map(|d| d.records).sum();
        // The index drives plane_source, fault projection, snapshot
        // labels and the resume comparison alike — iterating `plans`
        // alone would obscure that.
        #[allow(clippy::needless_range_loop)]
        for plane in first_plane..self.cfg.switches {
            let mut src = self.plane_source(w, horizon, plan, plane);
            let staged = SharedSink::new();
            let resume_engine = if plane == first_plane && engine0 != Value::Null {
                // Mid-plane resume: re-seed the staging buffer so the
                // plane's replayed stream is complete, then hand the
                // engine its own snapshot.
                for rec in &seed_staged {
                    staged.push_record(rec.clone());
                }
                Some(&engine0)
            } else {
                None
            };
            let mut sw = HbmSwitch::new(self.cfg.clone()).expect("validated config");
            if let Some(h) = self.profile.clone() {
                sw.enable_profiler_as(h, &format!("plane{plane:02}"));
            }
            sw.enable_live_telemetry(opts.period, opts.sample_one_in, Box::new(staged.clone()));
            let outcome = {
                let done_ref = &done;
                let staged_ref = &staged;
                let cfg_ref = &cfg_echo;
                sw.run_source_checkpointed(
                    &mut src,
                    drain,
                    &plans[plane],
                    resume_engine,
                    every_epochs,
                    &mut *should_stop,
                    |engine: &Value, _epochs: u64, _spans: u64| {
                        persist(
                            &SpsCkptState {
                                cfg: cfg_ref.clone(),
                                plane: plane as u64,
                                done: done_ref.clone(),
                                staged: staged_ref.peek_records(),
                                engine: engine.clone(),
                            }
                            .to_value(),
                            records_done,
                        )
                    },
                )?
            };
            if outcome == RunOutcome::Interrupted {
                return Ok(None);
            }
            let staged_mem = staged.take();
            let plane_records = staged_mem.records().len() as u64;
            staged_mem.replay_renamed(&format!("plane{plane:02}"), sink);
            records_done += plane_records;
            done.push(PlaneDone {
                report: sw.into_report(),
                fe_packets: src.front_end_dropped_packets(),
                fe_bytes: src.front_end_dropped(),
                records: plane_records,
            });
            if plane + 1 < self.cfg.switches {
                // Inter-plane snapshot: the next plane starts fresh, so
                // the engine slot is Null and nothing is staged.
                let between = SpsCkptState {
                    cfg: cfg_echo.clone(),
                    plane: (plane + 1) as u64,
                    done: done.clone(),
                    staged: Vec::new(),
                    engine: Value::Null,
                }
                .to_value();
                persist(&between, records_done)?;
                if should_stop() {
                    return Ok(None);
                }
            }
        }
        let results = done
            .into_iter()
            .map(|d| (d.report, d.fe_packets, d.fe_bytes))
            .collect();
        let report = self.stitch_report(results, horizon);
        sink.on_run_end("sps", drain, &report.metrics);
        Ok(Some(report))
    }

    /// The photonic-fault epochs of `plan`: every wavelength-loss or
    /// plane transition snapshots a new front-end state (split map +
    /// lost-wavelength mask) effective from its timestamp.
    fn epochs(&self, plan: &FaultPlan) -> Vec<Epoch> {
        let mut alive = vec![true; self.cfg.switches];
        let mut lost = vec![vec![false; self.cfg.wavelengths]; self.cfg.ribbons];
        let mut epochs = vec![Epoch {
            start: SimTime::ZERO,
            split: self.front_end.split().clone(),
            lost: lost.clone(),
        }];
        for ev in plan.events().iter().filter(|e| e.kind.is_photonic()) {
            match ev.kind {
                FaultKind::WavelengthLoss { ribbon, lambda } => {
                    lost[ribbon][lambda] = matches!(ev.action, FaultAction::Inject);
                }
                FaultKind::PlaneDown { switch } => {
                    alive[switch] = matches!(ev.action, FaultAction::Recover);
                }
                _ => unreachable!("filtered to photonic events"),
            }
            let split = if alive.iter().all(|&a| a) {
                self.front_end.split().clone()
            } else {
                self.front_end
                    .degraded_split(&alive)
                    .expect("validated plan keeps at least one plane alive")
            };
            let ep = Epoch {
                start: ev.at,
                split,
                lost: lost.clone(),
            };
            match epochs.last_mut() {
                Some(last) if last.start == ev.at => *last = ep,
                _ => epochs.push(ep),
            }
        }
        epochs
    }

    /// [`SpsRouter::split_traffic`] under photonic faults: each packet
    /// is routed by the split map of its arrival epoch, and packets on
    /// a lost wavelength (flow-hashed ingress lane) are dropped at the
    /// front end before reaching any switch. Returns the per-switch
    /// traces plus front-end drop counts. Materializing batch
    /// counterpart of [`SpsRouter::plane_source`]; kept public as the
    /// reference for the streaming-equivalence suite.
    pub fn split_traffic_faulted(
        &self,
        w: &SpsWorkload,
        horizon: SimTime,
        plan: &FaultPlan,
    ) -> (Vec<Vec<Packet>>, u64, DataSize) {
        assert_eq!(w.tm.n(), self.cfg.ribbons, "TM must be ribbon-sized");
        let epochs = self.epochs(plan);
        let f = self.cfg.fibers_per_ribbon;
        let mut per_switch: Vec<Vec<Packet>> = vec![Vec::new(); self.cfg.switches];
        let mut dropped_packets = 0u64;
        let mut dropped = DataSize::ZERO;
        for ribbon in 0..self.cfg.ribbons {
            let fiber_loads = w.fill.loads(f, w.load * f as f64);
            for (fiber, &load) in fiber_loads.iter().enumerate() {
                if load <= 0.0 {
                    continue;
                }
                let mut g = PacketGenerator::new(
                    ribbon,
                    self.front_end.fiber_rate(),
                    load.min(1.0),
                    w.tm.row(ribbon).to_vec(),
                    w.sizes.clone(),
                    w.process,
                    w.flows,
                    rip_sim::rng::derive_seed(w.seed, (ribbon * f + fiber) as u64),
                )
                .expect("valid generator");
                for p in g.generate_until(horizon) {
                    let ep = &epochs[epochs.partition_point(|e| e.start <= p.arrival) - 1];
                    let lambda = lane_for(p.flow, self.cfg.wavelengths, HashKind::Crc32c);
                    if ep.lost[ribbon][lambda] {
                        dropped_packets += 1;
                        dropped += p.size;
                        continue;
                    }
                    per_switch[ep.split.switch_for(ribbon, fiber)].push(p);
                }
            }
        }
        for t in per_switch.iter_mut() {
            t.sort_by_key(|p| (p.arrival, p.input, p.id));
        }
        (per_switch, dropped_packets, dropped)
    }

    /// Fluid-model per-switch per-output loads for `workload` (fast path
    /// for imbalance studies; no packet simulation). Returns
    /// `loads[switch][output]` in units of switch-port rate.
    pub fn fluid_loads(&self, w: &SpsWorkload) -> Vec<Vec<f64>> {
        let f = self.cfg.fibers_per_ribbon;
        let alpha = self.cfg.alpha() as f64;
        let mut loads = vec![vec![0.0; self.cfg.ribbons]; self.cfg.switches];
        for ribbon in 0..self.cfg.ribbons {
            let fiber_loads = w.fill.loads(f, w.load * f as f64);
            let row_total = w.tm.row_load(ribbon).max(f64::MIN_POSITIVE);
            for (fiber, &load) in fiber_loads.iter().enumerate() {
                let sw = self.front_end.split().switch_for(ribbon, fiber);
                for (out, l) in loads[sw].iter_mut().enumerate() {
                    // Fiber load is in fiber-rate units; a switch port
                    // aggregates alpha fibers.
                    *l += load * (w.tm.demand(ribbon, out) / row_total) / alpha;
                }
            }
        }
        loads
    }

    /// Predicted loss fraction from the fluid loads: any per-switch
    /// output loaded beyond 1.0 drops the excess.
    pub fn fluid_loss(&self, w: &SpsWorkload) -> f64 {
        let loads = self.fluid_loads(w);
        let total: f64 = loads.iter().flatten().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let excess: f64 = loads.iter().flatten().map(|&l| (l - 1.0).max(0.0)).sum();
        excess / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_router(pattern: SplitPattern) -> SpsRouter {
        SpsRouter::new(RouterConfig::small(), pattern).unwrap()
    }

    #[test]
    fn split_traffic_routes_fibers_to_the_right_switch() {
        let r = small_router(SplitPattern::Sequential);
        let w = SpsWorkload::uniform(4, 0.5, 1);
        let traces = r.split_traffic(&w, SimTime::from_ns(20_000));
        assert_eq!(traces.len(), 4);
        // All traces non-empty and arrival-ordered.
        for t in &traces {
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            assert!(t.iter().all(|p| p.input < 4 && p.output < 4));
        }
    }

    #[test]
    fn uniform_fill_balances_switch_loads() {
        let r = small_router(SplitPattern::Sequential);
        let w = SpsWorkload::uniform(4, 0.6, 2);
        let loads = r.fluid_loads(&w);
        for sw in &loads {
            for &l in sw {
                assert!((l - 0.6).abs() < 1e-9, "load {l}");
            }
        }
        assert_eq!(r.fluid_loss(&w), 0.0);
    }

    #[test]
    fn first_filled_skew_overloads_first_switch_under_sequential_split() {
        let r = small_router(SplitPattern::Sequential);
        let mut w = SpsWorkload::uniform(4, 0.25, 3);
        // All traffic on the first quarter of each ribbon's fibers —
        // exactly the fibers feeding switch 0.
        w.fill = FiberFill::FirstFilled { used: 4 };
        let loads = r.fluid_loads(&w);
        // Switch 0 sees per-output load 1.0; others none.
        assert!((loads[0][0] - 1.0).abs() < 1e-9, "{}", loads[0][0]);
        assert!(loads[1].iter().all(|&l| l == 0.0));
        // Raising the load past the first fibers' capacity spills over.
        let mut w2 = w.clone();
        w2.load = 0.5;
        w2.fill = FiberFill::FirstFilled { used: 8 };
        let loads2 = r.fluid_loads(&w2);
        assert!(loads2[0][0] > 0.9);
        assert!(loads2[1][0] > 0.9);
        assert!(loads2[2][0] == 0.0);
    }

    #[test]
    fn pseudo_random_split_spreads_fill_skew() {
        let seq = small_router(SplitPattern::Sequential);
        let rand = small_router(SplitPattern::PseudoRandom { seed: 77 });
        let mut w = SpsWorkload::uniform(4, 0.25, 4);
        w.fill = FiberFill::FirstFilled { used: 4 };
        let seq_max = seq
            .fluid_loads(&w)
            .iter()
            .flatten()
            .cloned()
            .fold(0.0, f64::max);
        let rand_max = rand
            .fluid_loads(&w)
            .iter()
            .flatten()
            .cloned()
            .fold(0.0, f64::max);
        assert!((seq_max - 1.0).abs() < 1e-9);
        assert!(
            rand_max < seq_max,
            "pseudo-random max {rand_max} should beat sequential {seq_max}"
        );
    }

    #[test]
    fn end_to_end_uniform_run_is_lossless() {
        let r = small_router(SplitPattern::PseudoRandom { seed: 5 });
        let w = SpsWorkload::uniform(4, 0.5, 6);
        let report = r.run(&w, SimTime::from_ns(30_000));
        assert!(report.offered.bytes() > 0);
        assert!(
            report.loss_fraction < 0.001,
            "loss {}",
            report.loss_fraction
        );
        assert!(report.load_imbalance < 1.2, "{}", report.load_imbalance);
        assert_eq!(report.switches.len(), 4);
    }

    #[test]
    fn tm_size_mismatch_panics() {
        let r = small_router(SplitPattern::Sequential);
        let mut w = SpsWorkload::uniform(4, 0.5, 1);
        w.tm = TrafficMatrix::uniform(8, 1.0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.split_traffic(&w, SimTime::from_ns(100))
        }));
        assert!(res.is_err());
    }
}
