//! The top-level Split-Parallel Switch (§2): the optical front end
//! splits fibers over `H` independent HBM switches; each packet crosses
//! exactly one of them (one OEO conversion).

use rip_photonics::{FrontEnd, SplitPattern};
use rip_traffic::{
    ArrivalProcess, FiberFill, Packet, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::{DataSize, SimTime};

use crate::config::RouterConfig;
use crate::hbm_switch::{HbmSwitch, SwitchReport};

/// Workload specification for an SPS run.
#[derive(Debug, Clone)]
pub struct SpsWorkload {
    /// Ribbon-to-ribbon traffic matrix (destination mix per ribbon).
    pub tm: TrafficMatrix,
    /// Aggregate offered load per ribbon, in units of total ribbon rate
    /// (1.0 = all fibers full).
    pub load: f64,
    /// How the load is spread over each ribbon's fibers.
    pub fill: FiberFill,
    /// Packet-size mix.
    pub sizes: SizeDistribution,
    /// Arrival process per fiber.
    pub process: ArrivalProcess,
    /// Flow pool per fiber.
    pub flows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SpsWorkload {
    /// A uniform Poisson/IMIX workload at the given load.
    pub fn uniform(ribbons: usize, load: f64, seed: u64) -> Self {
        SpsWorkload {
            tm: TrafficMatrix::uniform(ribbons, 1.0),
            load,
            fill: FiberFill::Uniform,
            sizes: SizeDistribution::Imix,
            process: ArrivalProcess::Poisson,
            flows: 128,
            seed,
        }
    }
}

/// Per-switch summary within an SPS report.
#[derive(Debug, Clone)]
pub struct PerSwitch {
    /// Offered bytes at this switch.
    pub offered: DataSize,
    /// Delivered bytes.
    pub delivered: DataSize,
    /// Dropped bytes.
    pub dropped: DataSize,
    /// Full switch report.
    pub report: SwitchReport,
}

/// End-to-end SPS run outcome.
#[derive(Debug, Clone)]
pub struct SpsReport {
    /// Per-switch outcomes.
    pub switches: Vec<PerSwitch>,
    /// Total offered bytes.
    pub offered: DataSize,
    /// Total delivered bytes.
    pub delivered: DataSize,
    /// `1 − delivered/offered`.
    pub loss_fraction: f64,
    /// Offered-byte imbalance across switches: max/mean.
    pub load_imbalance: f64,
}

/// The Split-Parallel Switch: `H` HBM switches behind a spatial fiber
/// split.
pub struct SpsRouter {
    cfg: RouterConfig,
    front_end: FrontEnd,
}

impl SpsRouter {
    /// Build an SPS router with the given split pattern.
    pub fn new(cfg: RouterConfig, pattern: SplitPattern) -> Result<Self, String> {
        cfg.validate()?;
        let front_end = FrontEnd::new(
            cfg.ribbons,
            cfg.fibers_per_ribbon,
            cfg.wavelengths,
            cfg.rate_per_wavelength,
            cfg.switches,
            pattern,
        )?;
        Ok(SpsRouter { cfg, front_end })
    }

    /// The optical front end (split map, rates).
    pub fn front_end(&self) -> &FrontEnd {
        &self.front_end
    }

    /// Generate per-fiber traffic for `workload` and return the `H`
    /// per-switch arrival-ordered traces (packet `input`/`output` are
    /// ribbon indices — switch-port indices).
    pub fn split_traffic(&self, w: &SpsWorkload, horizon: SimTime) -> Vec<Vec<Packet>> {
        assert_eq!(w.tm.n(), self.cfg.ribbons, "TM must be ribbon-sized");
        let f = self.cfg.fibers_per_ribbon;
        let mut per_switch: Vec<Vec<Packet>> = vec![Vec::new(); self.cfg.switches];
        for ribbon in 0..self.cfg.ribbons {
            // Per-fiber offered loads for this ribbon.
            let fiber_loads = w.fill.loads(f, w.load * f as f64);
            for (fiber, &load) in fiber_loads.iter().enumerate() {
                if load <= 0.0 {
                    continue;
                }
                let mut g = PacketGenerator::new(
                    ribbon,
                    self.front_end.fiber_rate(),
                    load.min(1.0),
                    w.tm.row(ribbon).to_vec(),
                    w.sizes.clone(),
                    w.process,
                    w.flows,
                    rip_sim::rng::derive_seed(w.seed, (ribbon * f + fiber) as u64),
                )
                .expect("valid generator");
                let sw = self.front_end.split().switch_for(ribbon, fiber);
                per_switch[sw].extend(g.generate_until(horizon));
            }
        }
        for t in per_switch.iter_mut() {
            t.sort_by_key(|p| (p.arrival, p.input, p.id));
        }
        per_switch
    }

    /// Run the full router on `workload` until `horizon` (+ drain time).
    ///
    /// The `H` HBM switches are fully independent after the optical
    /// split — exactly the property the SPS architecture banks on — so
    /// they are simulated on parallel threads (crossbeam scope); results
    /// are deterministic regardless of scheduling because each switch's
    /// simulation is self-contained.
    pub fn run(&self, w: &SpsWorkload, horizon: SimTime) -> SpsReport {
        let traces = self.split_traffic(w, horizon);
        let drain = SimTime::from_ps(horizon.as_ps() * 2);
        let reports: Vec<SwitchReport> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = traces
                .iter()
                .map(|trace| {
                    let cfg = self.cfg.clone();
                    scope.spawn(move |_| {
                        let mut sw = HbmSwitch::new(cfg).expect("validated config");
                        sw.run(trace, drain)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("switch simulation thread panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        let mut switches = Vec::with_capacity(reports.len());
        let mut offered = DataSize::ZERO;
        let mut delivered = DataSize::ZERO;
        for report in reports {
            offered += report.offered_bytes;
            delivered += report.delivered_bytes;
            switches.push(PerSwitch {
                offered: report.offered_bytes,
                delivered: report.delivered_bytes,
                dropped: report.dropped_bytes,
                report,
            });
        }
        let max = switches.iter().map(|s| s.offered.bits()).max().unwrap_or(0);
        let mean = if switches.is_empty() {
            0
        } else {
            offered.bits() / switches.len() as u64
        };
        SpsReport {
            offered,
            delivered,
            loss_fraction: if offered.is_zero() {
                0.0
            } else {
                1.0 - delivered.bits() as f64 / offered.bits() as f64
            },
            load_imbalance: if mean == 0 { 1.0 } else { max as f64 / mean as f64 },
            switches,
        }
    }

    /// Fluid-model per-switch per-output loads for `workload` (fast path
    /// for imbalance studies; no packet simulation). Returns
    /// `loads[switch][output]` in units of switch-port rate.
    pub fn fluid_loads(&self, w: &SpsWorkload) -> Vec<Vec<f64>> {
        let f = self.cfg.fibers_per_ribbon;
        let alpha = self.cfg.alpha() as f64;
        let mut loads = vec![vec![0.0; self.cfg.ribbons]; self.cfg.switches];
        for ribbon in 0..self.cfg.ribbons {
            let fiber_loads = w.fill.loads(f, w.load * f as f64);
            let row_total = w.tm.row_load(ribbon).max(f64::MIN_POSITIVE);
            for (fiber, &load) in fiber_loads.iter().enumerate() {
                let sw = self.front_end.split().switch_for(ribbon, fiber);
                for out in 0..self.cfg.ribbons {
                    // Fiber load is in fiber-rate units; a switch port
                    // aggregates alpha fibers.
                    loads[sw][out] += load * (w.tm.demand(ribbon, out) / row_total) / alpha;
                }
            }
        }
        loads
    }

    /// Predicted loss fraction from the fluid loads: any per-switch
    /// output loaded beyond 1.0 drops the excess.
    pub fn fluid_loss(&self, w: &SpsWorkload) -> f64 {
        let loads = self.fluid_loads(w);
        let total: f64 = loads.iter().flatten().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let excess: f64 = loads
            .iter()
            .flatten()
            .map(|&l| (l - 1.0).max(0.0))
            .sum();
        excess / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_router(pattern: SplitPattern) -> SpsRouter {
        SpsRouter::new(RouterConfig::small(), pattern).unwrap()
    }

    #[test]
    fn split_traffic_routes_fibers_to_the_right_switch() {
        let r = small_router(SplitPattern::Sequential);
        let w = SpsWorkload::uniform(4, 0.5, 1);
        let traces = r.split_traffic(&w, SimTime::from_ns(20_000));
        assert_eq!(traces.len(), 4);
        // All traces non-empty and arrival-ordered.
        for t in &traces {
            assert!(!t.is_empty());
            assert!(t.windows(2).all(|w| w[0].arrival <= w[1].arrival));
            assert!(t.iter().all(|p| p.input < 4 && p.output < 4));
        }
    }

    #[test]
    fn uniform_fill_balances_switch_loads() {
        let r = small_router(SplitPattern::Sequential);
        let w = SpsWorkload::uniform(4, 0.6, 2);
        let loads = r.fluid_loads(&w);
        for sw in &loads {
            for &l in sw {
                assert!((l - 0.6).abs() < 1e-9, "load {l}");
            }
        }
        assert_eq!(r.fluid_loss(&w), 0.0);
    }

    #[test]
    fn first_filled_skew_overloads_first_switch_under_sequential_split() {
        let r = small_router(SplitPattern::Sequential);
        let mut w = SpsWorkload::uniform(4, 0.25, 3);
        // All traffic on the first quarter of each ribbon's fibers —
        // exactly the fibers feeding switch 0.
        w.fill = FiberFill::FirstFilled { used: 4 };
        let loads = r.fluid_loads(&w);
        // Switch 0 sees per-output load 1.0; others none.
        assert!((loads[0][0] - 1.0).abs() < 1e-9, "{}", loads[0][0]);
        assert!(loads[1].iter().all(|&l| l == 0.0));
        // Raising the load past the first fibers' capacity spills over.
        let mut w2 = w.clone();
        w2.load = 0.5;
        w2.fill = FiberFill::FirstFilled { used: 8 };
        let loads2 = r.fluid_loads(&w2);
        assert!(loads2[0][0] > 0.9);
        assert!(loads2[1][0] > 0.9);
        assert!(loads2[2][0] == 0.0);
    }

    #[test]
    fn pseudo_random_split_spreads_fill_skew() {
        let seq = small_router(SplitPattern::Sequential);
        let rand = small_router(SplitPattern::PseudoRandom { seed: 77 });
        let mut w = SpsWorkload::uniform(4, 0.25, 4);
        w.fill = FiberFill::FirstFilled { used: 4 };
        let seq_max = seq
            .fluid_loads(&w)
            .iter()
            .flatten()
            .cloned()
            .fold(0.0, f64::max);
        let rand_max = rand
            .fluid_loads(&w)
            .iter()
            .flatten()
            .cloned()
            .fold(0.0, f64::max);
        assert!((seq_max - 1.0).abs() < 1e-9);
        assert!(
            rand_max < seq_max,
            "pseudo-random max {rand_max} should beat sequential {seq_max}"
        );
    }

    #[test]
    fn end_to_end_uniform_run_is_lossless() {
        let r = small_router(SplitPattern::PseudoRandom { seed: 5 });
        let w = SpsWorkload::uniform(4, 0.5, 6);
        let report = r.run(&w, SimTime::from_ns(30_000));
        assert!(report.offered.bytes() > 0);
        assert!(
            report.loss_fraction < 0.001,
            "loss {}",
            report.loss_fraction
        );
        assert!(report.load_imbalance < 1.2, "{}", report.load_imbalance);
        assert_eq!(report.switches.len(), 4);
    }

    #[test]
    fn tm_size_mismatch_panics() {
        let r = small_router(SplitPattern::Sequential);
        let mut w = SpsWorkload::uniform(4, 0.5, 1);
        w.tm = TrafficMatrix::uniform(8, 1.0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.split_traffic(&w, SimTime::from_ns(100))
        }));
        assert!(res.is_err());
    }
}
