//! OQ-mimicking measurement (Design 6 / E4): "given the same input
//! sequence to the HBM switch and to an ideal switch, any packet departs
//! the HBM switch within a finite delay after its departure from the
//! ideal one" (§3.1, citing \[6\]).

use rip_baselines::IdealOqSwitch;
use rip_sim::stats::Histogram;
use rip_traffic::{Packet, PacketSource, ReplaySource};
use rip_units::{SimTime, TimeDelta};

use crate::config::RouterConfig;
use crate::hbm_switch::HbmSwitch;
use crate::resilience::FaultPlan;

/// Relative-delay (lag) statistics of the HBM switch vs the ideal OQ
/// shadow fed the identical arrival sequence.
#[derive(Debug, Clone)]
pub struct MimicReport {
    /// Packets compared (delivered by both switches).
    pub compared: u64,
    /// Largest lag: HBM-switch departure − ideal departure.
    pub max_lag: TimeDelta,
    /// Mean lag.
    pub mean_lag: TimeDelta,
    /// 99th-percentile lag.
    pub p99_lag: TimeDelta,
    /// Fraction of packets that departed *no later* than the ideal
    /// switch plus `bound` (reported by [`MimicReport::fraction_within`]).
    pub lags_ns: Histogram,
}

/// Runs the HBM switch and an ideal OQ shadow on the same trace and
/// compares per-packet departures.
pub struct MimicChecker {
    cfg: RouterConfig,
}

impl MimicChecker {
    /// A checker for the given configuration.
    pub fn new(cfg: RouterConfig) -> Self {
        MimicChecker { cfg }
    }

    /// Run both switches on `trace` and report the lag distribution.
    pub fn run(&self, trace: &[Packet], horizon: SimTime) -> MimicReport {
        self.run_source(ReplaySource::new(trace), horizon)
    }

    /// Like [`MimicChecker::run`] but with the configuration's
    /// [`DrainPolicy`](crate::DrainPolicy) computing the simulation
    /// deadline from the arrival horizon.
    pub fn run_to_drain(&self, trace: &[Packet], horizon: SimTime) -> MimicReport {
        self.run(trace, self.cfg.drain.deadline(horizon))
    }

    /// Streaming form of [`MimicChecker::run`]: both switches consume
    /// the same pull-based source. Each packet is offered to the ideal
    /// OQ shadow at the moment the streaming engine pulls it, so the
    /// shadow sees the identical arrival sequence without any
    /// materialized trace.
    pub fn run_source<S: PacketSource>(&self, source: S, horizon: SimTime) -> MimicReport {
        self.run_source_inner(source, horizon, None)
    }

    /// [`MimicChecker::run_source`] with live telemetry on the HBM side:
    /// the switch under test streams epoch deltas and sampled lifecycle
    /// spans into `sink` while the mimicking comparison runs, so a long
    /// mimic study is observable before it finishes. The OQ shadow is a
    /// pure reference and stays silent.
    pub fn run_source_streamed<S: PacketSource>(
        &self,
        source: S,
        horizon: SimTime,
        period: TimeDelta,
        sample_one_in: u64,
        sink: Box<dyn rip_telemetry::TelemetrySink + Send>,
    ) -> MimicReport {
        self.run_source_inner(source, horizon, Some((period, sample_one_in, sink)))
    }

    fn run_source_inner<S: PacketSource>(
        &self,
        source: S,
        horizon: SimTime,
        live: Option<(TimeDelta, u64, Box<dyn rip_telemetry::TelemetrySink + Send>)>,
    ) -> MimicReport {
        let mut shadow = IdealOqSwitch::new(self.cfg.ribbons, self.cfg.port_rate());
        let mut switch = HbmSwitch::new(self.cfg.clone()).expect("valid config");
        if let Some((period, sample_one_in, sink)) = live {
            switch.enable_live_telemetry(period, sample_one_in, sink);
        }
        let mut tap = ShadowTap {
            inner: source,
            shadow: &mut shadow,
        };
        switch.run_source(&mut tap, horizon, &FaultPlan::default());
        let report = switch.into_report();
        let ideal = shadow.departure_map();

        let mut lags = Histogram::new();
        let mut max_lag = TimeDelta::ZERO;
        let mut total_ps: u128 = 0;
        let mut compared = 0u64;
        for d in &report.departures {
            let Some(&ideal_dep) = ideal.get(&d.packet) else {
                continue;
            };
            // Lag is one-sided: a real switch can only be late, but the
            // frame pipeline may also deliver *earlier* than the ideal
            // switch never does (it cannot — OQ is optimal), so clamp.
            let lag = d.time.saturating_since(ideal_dep);
            lags.record(lag.as_ns_f64());
            max_lag = max_lag.max(lag);
            total_ps += lag.as_ps() as u128;
            compared += 1;
        }
        let mean_lag = if compared == 0 {
            TimeDelta::ZERO
        } else {
            TimeDelta::from_ps((total_ps / compared as u128) as u64)
        };
        let p99 = lags
            .quantile(0.99)
            .map(|ns| TimeDelta::from_ps((ns * 1000.0) as u64))
            .unwrap_or(TimeDelta::ZERO);
        MimicReport {
            compared,
            max_lag,
            mean_lag,
            p99_lag: p99,
            lags_ns: lags,
        }
    }
}

/// Source wrapper that offers every pulled packet to the ideal OQ
/// shadow, so shadow and switch consume one identical stream.
struct ShadowTap<'a, S> {
    inner: S,
    shadow: &'a mut IdealOqSwitch,
}

impl<S: PacketSource> PacketSource for ShadowTap<'_, S> {
    fn next_packet(&mut self) -> Option<Packet> {
        let p = self.inner.next_packet()?;
        self.shadow.offer(&p);
        Some(p)
    }
}

impl MimicReport {
    /// Fraction of compared packets whose lag is within `bound`.
    pub fn fraction_within(&self, bound: TimeDelta) -> f64 {
        if self.compared == 0 {
            return 1.0;
        }
        // Binary search over quantiles is overkill; count directly.
        let bound_ns = bound.as_ns_f64();
        let within = (0..=100)
            .map(|q| q as f64 / 100.0)
            .filter(|&q| self.lags_ns.quantile(q).is_some_and(|v| v <= bound_ns))
            .count();
        within as f64 / 101.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_traffic::{ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix};

    fn trace(load: f64, seed: u64, horizon: SimTime) -> Vec<Packet> {
        let cfg = RouterConfig::small();
        let tm = TrafficMatrix::uniform(cfg.ribbons, 1.0);
        let streams: Vec<Vec<Packet>> = (0..cfg.ribbons)
            .map(|i| {
                let mut g = PacketGenerator::new(
                    i,
                    cfg.port_rate(),
                    load,
                    tm.row(i).to_vec(),
                    SizeDistribution::Imix,
                    ArrivalProcess::Poisson,
                    128,
                    seed,
                )
                .unwrap();
                g.generate_until(horizon)
            })
            .collect();
        rip_traffic::merge_streams(streams)
    }

    #[test]
    fn lag_is_bounded_and_does_not_grow_with_trace_length() {
        let cfg = RouterConfig::small();
        let checker = MimicChecker::new(cfg);
        let short = checker.run(
            &trace(0.7, 3, SimTime::from_ns(30_000)),
            SimTime::from_ns(400_000),
        );
        let long = checker.run(
            &trace(0.7, 3, SimTime::from_ns(120_000)),
            SimTime::from_ns(800_000),
        );
        assert!(short.compared > 50);
        assert!(long.compared > 3 * short.compared / 2);
        // Finite-lag mimicking: the max lag of the longer run must not
        // blow up relative to the shorter one.
        let s = short.max_lag.as_ns_f64().max(1.0);
        let l = long.max_lag.as_ns_f64();
        assert!(
            l < 3.0 * s + 100_000.0,
            "lag grew with trace length: {l} ns vs {s} ns"
        );
    }

    #[test]
    fn speedup_reduces_lag() {
        let mut base = RouterConfig::small();
        // Give the HBM headroom so speedup validates.
        base.hbm_geometry.channels_per_stack = 16;
        let t = trace(0.8, 5, SimTime::from_ns(80_000));
        let horizon = SimTime::from_ns(600_000);

        let r1 = MimicChecker::new(base.clone()).run(&t, horizon);
        let mut fast = base.clone();
        fast.speedup = 2.0;
        let r2 = MimicChecker::new(fast).run(&t, horizon);
        assert!(r1.compared > 100 && r2.compared > 100);
        assert!(
            r2.mean_lag <= r1.mean_lag,
            "speedup 2.0 mean lag {} > speedup 1.0 {}",
            r2.mean_lag,
            r1.mean_lag
        );
    }

    #[test]
    fn fraction_within_is_monotone() {
        let cfg = RouterConfig::small();
        let r = MimicChecker::new(cfg).run(
            &trace(0.6, 9, SimTime::from_ns(40_000)),
            SimTime::from_ns(400_000),
        );
        let a = r.fraction_within(TimeDelta::from_ns(100));
        let b = r.fraction_within(r.max_lag + TimeDelta::from_ns(1));
        assert!(a <= b);
        assert!((b - 1.0).abs() < 1e-9);
    }
}
