//! Output ports (§3.2 ➅): batches are cut back into variable-length
//! packets, converted E/O, and hashed over the α fibers × W wavelengths
//! of the egress ribbon, "as in ECMP or dynamic link aggregation".

use rip_photonics::OeoConverter;
use rip_traffic::hash::{fiber_wavelength_for, HashKind};
use rip_units::{DataRate, DataSize, SimTime};
use serde::{Deserialize, Serialize};

use crate::batch::{Batch, NO_LANE};

/// One packet departure from an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketDeparture {
    /// The packet id.
    pub packet: u64,
    /// When its last byte left the port.
    pub time: SimTime,
    /// When it arrived at the router (for delay computation).
    pub arrival: SimTime,
    /// Egress fiber picked by the flow hash.
    pub fiber: usize,
    /// Egress wavelength picked by the flow hash.
    pub wavelength: usize,
}

/// One output port: drains batches at the external line rate, tracks
/// per-lane byte counts, and meters E/O conversion energy.
///
/// Two egress models are supported:
/// * **aggregate** (default): the port serializes at `α·W·R` and a
///   packet departs when its last byte clears the aggregate — the
///   port-level abstraction used by the throughput experiments;
/// * **per-lane** ([`OutputPort::set_lane_rate`]): each packet is
///   additionally serialized on its hashed (fiber, wavelength) lane at
///   the wavelength rate `R`, so flow-hash collisions congest
///   individual lanes — the real behaviour of ECMP/LAG spreading that
///   §3.2 ➅ inherits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputPort {
    output: usize,
    rate: DataRate,
    fibers: usize,
    wavelengths: usize,
    hash: HashKind,
    /// Per-lane wavelength rate; `None` = aggregate model.
    lane_rate: Option<DataRate>,
    /// Per-lane line frontiers (per-lane model only).
    lane_free: Vec<SimTime>,
    /// Bytes sent per (fiber, wavelength) lane, row-major.
    lane_bytes: Vec<u64>,
    oeo: OeoConverter,
    /// When the port line frees up.
    busy_until: SimTime,
    /// Payload delivered.
    delivered: DataSize,
}

impl OutputPort {
    /// A port for `output` at `rate`, spreading over `fibers ×
    /// wavelengths` egress lanes.
    pub fn new(output: usize, rate: DataRate, fibers: usize, wavelengths: usize) -> Self {
        assert!(fibers > 0 && wavelengths > 0 && !rate.is_zero());
        OutputPort {
            output,
            rate,
            fibers,
            wavelengths,
            hash: HashKind::Crc32c,
            lane_rate: None,
            lane_free: vec![SimTime::ZERO; fibers * wavelengths],
            lane_bytes: vec![0; fibers * wavelengths],
            oeo: OeoConverter::reference(),
            busy_until: SimTime::ZERO,
            delivered: DataSize::ZERO,
        }
    }

    /// Enable the per-lane egress model with the given wavelength rate
    /// (`None` restores the aggregate model).
    pub fn set_lane_rate(&mut self, lane_rate: Option<DataRate>) {
        self.lane_rate = lane_rate;
    }

    /// The port index.
    pub fn output(&self) -> usize {
        self.output
    }

    /// When the line frees up.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Drain one batch starting no earlier than `start`. Only payload is
    /// serialized (padding is discarded before E/O). Returns the drain
    /// end time and the departures of packets whose last chunk was in
    /// this batch.
    pub fn drain_batch(
        &mut self,
        batch: &Batch,
        start: SimTime,
    ) -> (SimTime, Vec<PacketDeparture>) {
        let start = start.max(self.busy_until);
        let mut pos = DataSize::ZERO;
        let mut departures = Vec::new();
        for chunk in &batch.chunks {
            pos += chunk.len;
            // A pre-hashed ingress lane tag short-circuits the flow
            // hash; both paths compute the identical function (see
            // `Chunk::lane`), so results never depend on which ran.
            let (fiber, wavelength) = if chunk.lane != NO_LANE {
                let lane = chunk.lane as usize;
                debug_assert!(lane < self.fibers * self.wavelengths);
                debug_assert_eq!(
                    (lane / self.wavelengths, lane % self.wavelengths),
                    fiber_wavelength_for(chunk.flow, self.fibers, self.wavelengths, self.hash)
                );
                (lane / self.wavelengths, lane % self.wavelengths)
            } else {
                fiber_wavelength_for(chunk.flow, self.fibers, self.wavelengths, self.hash)
            };
            self.lane_bytes[fiber * self.wavelengths + wavelength] += chunk.len.bytes();
            if chunk.is_last {
                // When the last byte clears the aggregate port...
                let avail = start + self.rate.transfer_time(pos);
                let time = match self.lane_rate {
                    None => avail,
                    Some(r) => {
                        // ...the whole packet is then serialized on its
                        // hashed wavelength lane at R.
                        let lane = fiber * self.wavelengths + wavelength;
                        let size = DataSize::from_bytes(chunk.offset + chunk.len.bytes());
                        let begin = avail.max(self.lane_free[lane]);
                        let dep = begin + r.transfer_time(size);
                        self.lane_free[lane] = dep;
                        dep
                    }
                };
                departures.push(PacketDeparture {
                    packet: chunk.packet,
                    time,
                    arrival: chunk.arrival,
                    fiber,
                    wavelength,
                });
            }
        }
        let payload = batch.payload();
        let end = start + self.rate.transfer_time(payload);
        self.busy_until = end;
        self.delivered += payload;
        self.oeo.convert(payload);
        (end, departures)
    }

    /// Per-lane byte counts (row-major `[fiber][wavelength]`).
    pub fn lane_bytes(&self) -> &[u64] {
        &self.lane_bytes
    }

    /// Coefficient of variation of the per-lane byte spread (0 = perfectly
    /// even; the §4 "hashing leads to even TMs" check).
    pub fn lane_spread_cv(&self) -> f64 {
        let n = self.lane_bytes.len() as f64;
        let mean = self.lane_bytes.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .lane_bytes
            .iter()
            .map(|&b| (b as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Total payload delivered.
    pub fn delivered(&self) -> DataSize {
        self.delivered
    }

    /// E/O conversion energy spent so far, joules.
    pub fn oeo_energy_joules(&self) -> f64 {
        self.oeo.energy_joules()
    }

    /// The E/O conversion stage itself (bits converted, event counts).
    pub fn oeo(&self) -> &OeoConverter {
        &self.oeo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Chunk;
    use rip_traffic::FlowKey;

    fn flow(i: u32) -> FlowKey {
        FlowKey {
            src_ip: i,
            dst_ip: i.wrapping_mul(2654435761),
            src_port: (i % 60000) as u16,
            dst_port: 443,
            proto: 6,
        }
    }

    fn chunk(pkt: u64, bytes: u64, is_last: bool, f: u32) -> Chunk {
        Chunk {
            packet: pkt,
            offset: 0,
            len: DataSize::from_bytes(bytes),
            is_last,
            arrival: SimTime::ZERO,
            flow: flow(f),
            lane: NO_LANE,
        }
    }

    #[test]
    fn departure_time_is_position_dependent() {
        // 100 Gb/s port: 1000 B = 80 ns.
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 4, 4);
        let batch = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![chunk(1, 1000, true, 1), chunk(2, 1000, true, 2)],
            padding: DataSize::ZERO,
        };
        let (end, deps) = port.drain_batch(&batch, SimTime::from_ns(10));
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].time, SimTime::from_ns(90));
        assert_eq!(deps[1].time, SimTime::from_ns(170));
        assert_eq!(end, SimTime::from_ns(170));
        assert_eq!(port.delivered(), DataSize::from_bytes(2000));
    }

    #[test]
    fn padding_is_not_serialized() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 2, 2);
        let batch = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![chunk(1, 500, true, 1)],
            padding: DataSize::from_bytes(524),
        };
        let (end, _) = port.drain_batch(&batch, SimTime::ZERO);
        assert_eq!(end, SimTime::from_ns(40)); // 500 B only
    }

    #[test]
    fn line_serializes_back_to_back_batches() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 2, 2);
        let b = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![chunk(1, 1000, true, 1)],
            padding: DataSize::ZERO,
        };
        let (end1, _) = port.drain_batch(&b, SimTime::ZERO);
        // Requested earlier than the line frees: starts at end1.
        let (end2, deps) = port.drain_batch(&b, SimTime::from_ns(1));
        assert_eq!(end2, end1 + rip_units::TimeDelta::from_ns(80));
        assert_eq!(deps[0].time, end2);
    }

    #[test]
    fn non_final_chunks_do_not_depart() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 2, 2);
        let batch = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![chunk(7, 600, false, 1)],
            padding: DataSize::ZERO,
        };
        let (_, deps) = port.drain_batch(&batch, SimTime::ZERO);
        assert!(deps.is_empty());
    }

    #[test]
    fn many_flows_spread_evenly_over_lanes() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 4, 16);
        for i in 0..16_000u32 {
            let batch = Batch {
                input: 0,
                output: 0,
                seq: i as u64,
                chunks: vec![chunk(i as u64, 1000, true, i)],
                padding: DataSize::ZERO,
            };
            port.drain_batch(&batch, SimTime::ZERO);
        }
        let cv = port.lane_spread_cv();
        assert!(cv < 0.15, "lane spread CV {cv} too uneven");
        assert!(port.lane_bytes().iter().all(|&b| b > 0));
    }

    #[test]
    fn single_flow_sticks_to_one_lane() {
        // Flow affinity: all packets of one flow use the same lane (no
        // intra-flow reordering across lanes).
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 4, 16);
        for i in 0..100u64 {
            let batch = Batch {
                input: 0,
                output: 0,
                seq: i,
                chunks: vec![chunk(i, 1000, true, 42)],
                padding: DataSize::ZERO,
            };
            port.drain_batch(&batch, SimTime::ZERO);
        }
        let used = port.lane_bytes().iter().filter(|&&b| b > 0).count();
        assert_eq!(used, 1);
    }

    #[test]
    fn per_lane_model_serializes_at_wavelength_rate() {
        // Aggregate 640 Gb/s port, 40 Gb/s lanes.
        let mut port = OutputPort::new(0, DataRate::from_gbps(640), 4, 4);
        port.set_lane_rate(Some(DataRate::from_gbps(40)));
        let batch = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![chunk(1, 1500, true, 7)],
            padding: DataSize::ZERO,
        };
        let (_, deps) = port.drain_batch(&batch, SimTime::ZERO);
        // 1500 B: 18.75 ns on the aggregate + 300 ns on the lane.
        assert_eq!(deps[0].time, SimTime::from_ps(18_750 + 300_000));
    }

    #[test]
    fn elephant_flow_congests_one_lane() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(640), 4, 4);
        port.set_lane_rate(Some(DataRate::from_gbps(40)));
        // 20 packets of one flow arrive back-to-back at aggregate rate;
        // their shared lane serializes them at R, queueing each behind
        // the previous: last departure ~ 20 x 300 ns.
        let mut last = SimTime::ZERO;
        for i in 0..20 {
            let batch = Batch {
                input: 0,
                output: 0,
                seq: i,
                chunks: vec![chunk(i, 1500, true, 42)],
                padding: DataSize::ZERO,
            };
            let (_, deps) = port.drain_batch(&batch, SimTime::ZERO);
            last = deps[0].time;
        }
        assert!(
            last >= SimTime::from_ns(20 * 300),
            "elephant flow must queue on its lane: {last}"
        );
        // The same 20 packets across many flows spread over lanes and
        // finish far earlier.
        let mut spread = OutputPort::new(0, DataRate::from_gbps(640), 4, 4);
        spread.set_lane_rate(Some(DataRate::from_gbps(40)));
        let mut last_spread = SimTime::ZERO;
        for i in 0..20u64 {
            let batch = Batch {
                input: 0,
                output: 0,
                seq: i,
                chunks: vec![chunk(i, 1500, true, i as u32)],
                padding: DataSize::ZERO,
            };
            let (_, deps) = spread.drain_batch(&batch, SimTime::ZERO);
            last_spread = last_spread.max(deps[0].time);
        }
        assert!(last_spread < last, "{last_spread} !< {last}");
    }

    #[test]
    fn straddled_packet_uses_full_size_on_the_lane() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(640), 2, 2);
        port.set_lane_rate(Some(DataRate::from_gbps(40)));
        // Last chunk of a 1000 B packet whose first 600 B went in an
        // earlier batch: lane serialization covers the full 1000 B.
        let c = Chunk {
            packet: 9,
            offset: 600,
            len: DataSize::from_bytes(400),
            is_last: true,
            arrival: SimTime::ZERO,
            flow: flow(3),
            lane: NO_LANE,
        };
        let batch = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![c],
            padding: DataSize::ZERO,
        };
        let (_, deps) = port.drain_batch(&batch, SimTime::ZERO);
        // 400 B at 640 Gb/s = 5 ns to the port, then 1000 B at 40 Gb/s
        // = 200 ns on the lane.
        assert_eq!(deps[0].time, SimTime::from_ps(5_000 + 200_000));
    }

    #[test]
    fn pre_hashed_lane_tags_match_egress_hashing() {
        // Two identical ports, one fed lane-tagged chunks (as the
        // sharded engine produces), one hashing at egress: every
        // departure and byte counter must agree.
        let mk = || {
            let mut p = OutputPort::new(0, DataRate::from_gbps(640), 4, 4);
            p.set_lane_rate(Some(DataRate::from_gbps(40)));
            p
        };
        let (mut tagged, mut hashed) = (mk(), mk());
        for i in 0..200u64 {
            let c = chunk(i, 400 + (i % 7) * 150, true, (i % 23) as u32);
            let (fiber, wavelength) = fiber_wavelength_for(c.flow, 4, 4, HashKind::Crc32c);
            let mut tc = c;
            tc.lane = (fiber * 4 + wavelength) as u32;
            let mk_batch = |c| Batch {
                input: 0,
                output: 0,
                seq: i,
                chunks: vec![c],
                padding: DataSize::ZERO,
            };
            let a = tagged.drain_batch(&mk_batch(tc), SimTime::ZERO);
            let b = hashed.drain_batch(&mk_batch(c), SimTime::ZERO);
            assert_eq!(a, b);
        }
        assert_eq!(tagged.lane_bytes(), hashed.lane_bytes());
    }

    #[test]
    fn oeo_energy_tracks_payload() {
        let mut port = OutputPort::new(0, DataRate::from_gbps(100), 2, 2);
        let batch = Batch {
            input: 0,
            output: 0,
            seq: 0,
            chunks: vec![chunk(1, 1000, true, 1)],
            padding: DataSize::from_bytes(24),
        };
        port.drain_batch(&batch, SimTime::ZERO);
        let expect = 1.15 * 1000.0 * 8.0 * 1e-12;
        assert!((port.oeo_energy_joules() - expect).abs() < 1e-15);
    }
}
