//! Differential property tests: the timing-wheel kernel and the
//! binary-heap oracle must realize the same `(time, seq)` total order
//! for arbitrary insert/pop sequences — including same-timestamp
//! tie-breaks, far-future overflow buckets, and draining after a
//! snapshot/rebuild merge.

use proptest::prelude::*;
use rip_sim::{EventQueue, QueueKind};
use rip_units::SimTime;

/// One scripted queue operation, decoded from a `(selector, raw)` pair
/// (the vendored proptest has no weighted-union combinator).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule an event `delta_ps` after the last popped time.
    Schedule(u64),
    /// Pop one event and compare across kernels.
    Pop,
    /// Snapshot both queues, cross-rebuild (wheel from the heap's
    /// entries and vice versa), and continue — drain-after-merge.
    Snapshot,
}

/// Decode a raw draw into an op. The schedule deltas span every wheel
/// regime: zero (FIFO tie-break), one bucket (2^10 ps), level-0/1/2
/// rotations, and u64-extreme offsets that land in the top overflow
/// levels.
fn decode(sel: u8, raw: u64) -> Op {
    match sel % 13 {
        0 | 1 => Op::Schedule(0),
        2 | 3 => Op::Schedule(raw % 1024),
        4 | 5 => Op::Schedule(raw % 262_144),
        6 => Op::Schedule(raw % 67_108_864),
        7 => Op::Schedule(raw % 17_179_869_184),
        8 => Op::Schedule(u64::MAX / 2 + raw % (u64::MAX / 2)),
        9..=11 => Op::Pop,
        _ => Op::Snapshot,
    }
}

/// Pop both kernels once and require identical `(time, event)` results
/// plus identical post-pop observables.
fn pop_both(wheel: &mut EventQueue<u32>, heap: &mut EventQueue<u32>) {
    assert_eq!(wheel.peek_time(), heap.peek_time());
    let (a, b) = (wheel.pop(), heap.pop());
    assert_eq!(a, b, "kernels diverged on pop");
    assert_eq!(wheel.now(), heap.now());
    assert_eq!(wheel.len(), heap.len());
}

proptest! {
    /// Arbitrary scripts produce identical pop sequences from both
    /// kernels, at every intermediate step and in the final drain.
    #[test]
    fn wheel_matches_heap_oracle(
        raw_ops in prop::collection::vec((any::<u8>(), any::<u64>()), 1..200),
    ) {
        let mut wheel = EventQueue::with_kind(QueueKind::TimingWheel);
        let mut heap = EventQueue::with_kind(QueueKind::BinaryHeap);
        let mut tag = 0u32;
        for &(sel, raw) in &raw_ops {
            match decode(sel, raw) {
                Op::Schedule(d) => {
                    let at = SimTime::from_ps(wheel.now().as_ps().saturating_add(d));
                    wheel.schedule(at, tag);
                    heap.schedule(at, tag);
                    tag += 1;
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                }
                Op::Pop => pop_both(&mut wheel, &mut heap),
                Op::Snapshot => {
                    // Pop order is kernel-agnostic: entries written by
                    // one kernel must rebuild under the other with the
                    // same continuation.
                    let we = wheel.entries();
                    let he = heap.entries();
                    prop_assert_eq!(&we, &he, "snapshot entries diverged");
                    let (seq, now) = (wheel.next_seq(), wheel.now());
                    wheel = EventQueue::from_entries_in(
                        QueueKind::TimingWheel, he, seq, now);
                    heap = EventQueue::from_entries_in(
                        QueueKind::BinaryHeap, we, seq, now);
                }
            }
        }
        // Drain-after-merge: whatever the script left pending must pop
        // identically to exhaustion.
        while !wheel.is_empty() || !heap.is_empty() {
            pop_both(&mut wheel, &mut heap);
        }
    }

    /// Bursts at one instant interleaved with snapshots: FIFO seq
    /// restoration survives rebuilds even when every pending time ties.
    #[test]
    fn same_time_bursts_stay_fifo(
        burst in 1usize..64,
        t_ps in 0u64..1_000_000,
        split in 0usize..64,
    ) {
        let t = SimTime::from_ps(t_ps);
        let mut wheel = EventQueue::with_kind(QueueKind::TimingWheel);
        for i in 0..burst as u32 {
            wheel.schedule(t, i);
        }
        // Rebuild mid-burst state under the oracle and keep scheduling.
        let split = split % (burst + 1);
        for _ in 0..split {
            wheel.pop();
        }
        let (seq, now) = (wheel.next_seq(), wheel.now());
        let mut heap = EventQueue::from_entries_in(
            QueueKind::BinaryHeap, wheel.entries(), seq, now);
        for i in 0..4u32 {
            wheel.schedule(t.max(now), 1000 + i);
            heap.schedule(t.max(now), 1000 + i);
        }
        while !wheel.is_empty() || !heap.is_empty() {
            pop_both(&mut wheel, &mut heap);
        }
    }
}
