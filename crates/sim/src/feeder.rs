//! Bounded-lookahead feeder for streaming event loops.
//!
//! Batch engines pre-schedule every external arrival into the
//! [`EventQueue`](crate::EventQueue) before running, which costs
//! O(horizon) memory. A [`Feeder`] instead wraps a pull closure and
//! holds only a small lookahead window, so a driver can interleave
//! "next external arrival" with "next internal event" and keep memory
//! proportional to the in-flight work.

use std::collections::VecDeque;

use rip_units::SimTime;

/// A bounded-lookahead buffer over a pull-based, time-ordered stream.
///
/// The closure yields `(time, item)` pairs in non-decreasing time
/// order (checked) and `None` once exhausted. The feeder pulls lazily:
/// at most `lookahead` items are buffered at any moment, so the
/// driver's memory footprint is independent of how long the stream is.
pub struct Feeder<T, F> {
    pull: F,
    buf: VecDeque<(SimTime, T)>,
    lookahead: usize,
    /// The source returned `None`; never pull it again.
    source_done: bool,
    /// Largest time pulled so far, for the ordering check.
    last_pulled: SimTime,
    /// Items pulled from the source so far (including still-buffered
    /// lookahead items).
    pulled: u64,
}

impl<T, F: FnMut() -> Option<(SimTime, T)>> Feeder<T, F> {
    /// A feeder with the minimal single-item lookahead.
    pub fn new(pull: F) -> Self {
        Self::with_lookahead(pull, 1)
    }

    /// A feeder buffering up to `lookahead` items (at least 1).
    pub fn with_lookahead(pull: F, lookahead: usize) -> Self {
        Self {
            pull,
            buf: VecDeque::new(),
            lookahead: lookahead.max(1),
            source_done: false,
            last_pulled: SimTime::ZERO,
            pulled: 0,
        }
    }

    fn fill(&mut self) {
        while !self.source_done && self.buf.len() < self.lookahead {
            match (self.pull)() {
                Some((t, item)) => {
                    assert!(
                        t >= self.last_pulled,
                        "source must yield non-decreasing times"
                    );
                    self.last_pulled = t;
                    self.pulled += 1;
                    self.buf.push_back((t, item));
                }
                None => self.source_done = true,
            }
        }
    }

    /// Time of the next buffered item, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.fill();
        self.buf.front().map(|(t, _)| *t)
    }

    /// Remove and return the next item.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.fill();
        self.buf.pop_front()
    }

    /// True once the source is drained and no items remain buffered.
    pub fn is_exhausted(&mut self) -> bool {
        self.fill();
        self.source_done && self.buf.is_empty()
    }

    /// Items pulled from the source so far. Counts lookahead pulls the
    /// driver has not consumed yet — it measures source progress, not
    /// driver progress — and is deterministic for a deterministic
    /// source, so it is safe to export as live telemetry.
    pub fn pulled(&self) -> u64 {
        self.pulled
    }
}

impl<T, F> std::fmt::Debug for Feeder<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Feeder")
            .field("buffered", &self.buf.len())
            .field("lookahead", &self.lookahead)
            .field("source_done", &self.source_done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(v: &[u64]) -> impl FnMut() -> Option<(SimTime, u64)> + '_ {
        let mut it = v.iter().copied();
        move || it.next().map(|t| (SimTime::from_ns(t), t))
    }

    #[test]
    fn yields_items_in_order() {
        let v = [1, 2, 2, 5];
        let mut f = Feeder::new(times(&v));
        assert_eq!(f.peek_time(), Some(SimTime::from_ns(1)));
        let mut got = Vec::new();
        while let Some((_, x)) = f.pop() {
            got.push(x);
        }
        assert_eq!(got, v);
        assert!(f.is_exhausted());
    }

    #[test]
    fn buffers_at_most_lookahead() {
        let mut pulled = 0usize;
        let mut f = Feeder::new(|| {
            pulled += 1;
            Some((SimTime::from_ns(pulled as u64), pulled))
        });
        // One peek pulls exactly one item, not the whole stream.
        assert!(f.peek_time().is_some());
        let (_, first) = f.pop().unwrap();
        assert_eq!(first, 1);
    }

    #[test]
    fn pulled_counts_source_progress() {
        let v = [1, 2, 3];
        let mut f = Feeder::new(times(&v));
        assert_eq!(f.pulled(), 0);
        // Peeking pulls one lookahead item.
        f.peek_time();
        assert_eq!(f.pulled(), 1);
        while f.pop().is_some() {}
        assert_eq!(f.pulled(), 3);
    }

    #[test]
    fn empty_source_is_exhausted_immediately() {
        let mut f: Feeder<u64, _> = Feeder::new(|| None);
        assert!(f.is_exhausted());
        assert_eq!(f.peek_time(), None);
        assert_eq!(f.pop(), None);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_source_panics() {
        let v = [5, 1];
        let mut f = Feeder::new(times(&v));
        while f.pop().is_some() {}
    }
}
