//! Measurement primitives shared by every experiment: counters, running
//! moments, exact-quantile histograms, time-weighted gauges and
//! throughput meters.

use rip_units::{DataRate, DataSize, SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.count += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Running mean and variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl MeanVar {
    /// An empty accumulator.
    pub fn new() -> Self {
        MeanVar {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Coefficient of variation (std dev / mean); 0 for empty or zero-mean.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }
}

/// A histogram that stores every sample for exact quantiles.
///
/// Experiments in this workspace run at most a few million samples, so
/// storing them is cheap and buys exact tail percentiles (p99/p999 of
/// delay-lag distributions are claims under test — approximating them
/// with fixed buckets would weaken E4).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Append every sample of `other` (e.g. merging per-plane delay
    /// histograms in plane order).
    pub fn merge_from(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Exact quantile `q` in \[0,1\] (nearest-rank). None if empty.
    ///
    /// Non-mutating: selects the nearest-rank sample out of a scratch
    /// copy, so report code can query quantiles through `&self`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let idx = ((q * (self.samples.len() - 1) as f64).round()) as usize;
        let mut scratch = self.samples.clone();
        let (_, nth, _) = scratch.select_nth_unstable_by(idx, |a, b| {
            a.partial_cmp(b).expect("NaN sample in histogram")
        });
        Some(*nth)
    }

    /// Sample mean. None if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Largest sample. None if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |m, x| Some(m.map_or(x, |m: f64| m.max(x))))
    }
}

/// Time-weighted average of a piecewise-constant gauge (e.g. queue
/// occupancy): each value is weighted by how long it was held.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    total_time_ps: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            total_time_ps: 0.0,
            max: value,
        }
    }

    /// Record that the gauge changed to `value` at `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time).as_ps() as f64;
        self.weighted_sum += self.last_value * dt;
        self.total_time_ps += dt;
        self.last_time = now;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Close the interval at `now` and return the time-weighted average.
    pub fn average(&mut self, now: SimTime) -> f64 {
        self.update(now, self.last_value);
        if self.total_time_ps == 0.0 {
            self.last_value
        } else {
            self.weighted_sum / self.total_time_ps
        }
    }

    /// The maximum value ever held.
    pub fn peak(&self) -> f64 {
        self.max
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Measures achieved throughput: total data moved over elapsed time.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bits: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl ThroughputMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `size` finished transferring at `now`.
    pub fn record(&mut self, now: SimTime, size: DataSize) {
        self.bits += size.bits();
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
    }

    /// Total data recorded.
    pub fn total(&self) -> DataSize {
        DataSize::from_bits(self.bits)
    }

    /// Average rate between `start` and `end`.
    pub fn rate_over(&self, start: SimTime, end: SimTime) -> DataRate {
        let dt = end.since(start);
        if dt.is_zero() {
            return DataRate::ZERO;
        }
        let bps = self.bits as u128 * rip_units::PS_PER_S as u128 / dt.as_ps() as u128;
        DataRate::from_bps(u64::try_from(bps).expect("rate overflows u64 bps"))
    }

    /// Average rate between the first and last recorded completion.
    pub fn rate(&self) -> DataRate {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => self.rate_over(a, b),
            _ => DataRate::ZERO,
        }
    }

    /// Time of the last recorded completion.
    pub fn last_time(&self) -> Option<SimTime> {
        self.last
    }
}

/// Accumulates busy time of a resource for utilization measurements.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct BusyTime {
    busy: TimeDelta,
}

impl BusyTime {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a busy interval.
    pub fn add(&mut self, dt: TimeDelta) {
        self.busy += dt;
    }

    /// Total busy time.
    pub fn total(&self) -> TimeDelta {
        self.busy
    }

    /// Busy fraction of `elapsed` (clamped to [0, inf); >1 indicates
    /// overlapping intervals were added).
    pub fn utilization(&self, elapsed: TimeDelta) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn meanvar_matches_closed_form() {
        let mut mv = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            mv.record(x);
        }
        assert_eq!(mv.count(), 8);
        assert!((mv.mean() - 5.0).abs() < 1e-12);
        assert!((mv.variance() - 4.0).abs() < 1e-12);
        assert!((mv.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(mv.min(), Some(2.0));
        assert_eq!(mv.max(), Some(9.0));
        assert!((mv.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn meanvar_empty_is_safe() {
        let mv = MeanVar::new();
        assert_eq!(mv.mean(), 0.0);
        assert_eq!(mv.variance(), 0.0);
        assert_eq!(mv.min(), None);
        assert_eq!(mv.max(), None);
    }

    #[test]
    fn histogram_quantiles_are_exact() {
        let mut h = Histogram::new();
        for i in (1..=100).rev() {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.5), Some(51.0)); // nearest-rank on 0..99
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.mean(), Some(50.5));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_ns(10), 10.0); // 0 for 10ns
        tw.update(SimTime::from_ns(30), 0.0); // 10 for 20ns
        let avg = tw.average(SimTime::from_ns(40)); // 0 for 10ns
                                                    // (0*10 + 10*20 + 0*10) / 40 = 5
        assert!((avg - 5.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 10.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn throughput_meter_rates() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_ns(0), DataSize::from_bytes(0));
        m.record(SimTime::from_ns(1000), DataSize::from_bytes(1000));
        // 8000 bits over 1 us = 8 Gb/s.
        assert_eq!(m.rate(), DataRate::from_gbps(8));
        assert_eq!(m.total(), DataSize::from_bytes(1000));
        assert_eq!(
            m.rate_over(SimTime::ZERO, SimTime::from_ns(2000)),
            DataRate::from_gbps(4)
        );
    }

    #[test]
    fn throughput_meter_degenerate() {
        let m = ThroughputMeter::new();
        assert_eq!(m.rate(), DataRate::ZERO);
        let mut m2 = ThroughputMeter::new();
        m2.record(SimTime::from_ns(5), DataSize::from_bytes(100));
        assert_eq!(m2.rate(), DataRate::ZERO); // single instant
    }

    #[test]
    fn busy_time_utilization() {
        let mut b = BusyTime::new();
        b.add(TimeDelta::from_ns(30));
        b.add(TimeDelta::from_ns(20));
        assert_eq!(b.total(), TimeDelta::from_ns(50));
        assert!((b.utilization(TimeDelta::from_ns(100)) - 0.5).abs() < 1e-12);
        assert_eq!(b.utilization(TimeDelta::ZERO), 0.0);
    }
}
