//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rip_units::SimTime;

/// One scheduled entry: fires at `time`; among equal times, entries fire
/// in insertion order (`seq`).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, which makes whole simulations reproducible bit-for-bit
/// regardless of heap internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `event` to fire at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last popped event — scheduling
    /// into the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < last popped {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.last_popped);
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drain the queue into pop order — `(time, seq, event)` sorted by
    /// `(time, seq)` — for checkpointing. Pop order is a total order,
    /// so the heap's internal layout never leaks into a snapshot.
    pub fn into_entries(self) -> Vec<(SimTime, u64, E)> {
        let mut v: Vec<(SimTime, u64, E)> = self
            .heap
            .into_iter()
            .map(|e| (e.time, e.seq, e.event))
            .collect();
        v.sort_by_key(|&(t, s, _)| (t, s));
        v
    }

    /// Pop order without consuming the queue (events are cloned).
    pub fn entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut v: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        v.sort_by_key(|&(t, s, _)| (t, s));
        v
    }

    /// The sequence number the next `schedule` call will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuild a queue from checkpointed parts: the pending entries
    /// (with their original insertion sequence numbers, so FIFO
    /// tie-breaks replay identically), the next sequence number, and
    /// the last popped time.
    ///
    /// # Panics
    /// Panics if any entry predates `last_popped` or carries a sequence
    /// number at or beyond `next_seq` — both indicate a corrupt or
    /// hand-edited snapshot.
    pub fn from_entries(
        entries: Vec<(SimTime, u64, E)>,
        next_seq: u64,
        last_popped: SimTime,
    ) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (time, seq, event) in entries {
            assert!(
                time >= last_popped,
                "snapshot entry at {time} predates last popped {last_popped}"
            );
            assert!(
                seq < next_seq,
                "snapshot entry seq {seq} >= next {next_seq}"
            );
            heap.push(Entry { time, seq, event });
        }
        EventQueue {
            heap,
            next_seq,
            last_popped,
        }
    }
}

/// A minimal simulation driver around an [`EventQueue`].
///
/// The handler receives the current time, the event, and the queue (to
/// schedule follow-ups). `run` drains the queue; `run_until` stops at a
/// horizon, leaving later events pending.
pub struct Simulation<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// A fresh simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
        }
    }

    /// Schedule an initial event.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }

    /// Current simulation time (time of the last handled event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run until the queue is empty.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        while let Some((now, ev)) = self.queue.pop() {
            handler(now, ev, &mut self.queue);
        }
    }

    /// Run until the queue is empty or the next event is after `horizon`.
    ///
    /// Events at exactly `horizon` are handled; later ones stay queued.
    /// Returns the number of events handled.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        let mut handled = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event must pop");
            handler(now, ev, &mut self.queue);
            handled += 1;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_units::TimeDelta;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.pop();
        q.schedule(SimTime::from_ns(10), 2);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        for i in 0..10u64 {
            sim.schedule(SimTime::from_ns(i * 10), i);
        }
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_ns(40), |_, e, _| seen.push(e));
        assert_eq!(n, 5); // events at 0,10,20,30,40
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.now(), SimTime::from_ns(40));
    }

    #[test]
    fn cascading_schedules() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|now, n, q| {
            count += 1;
            if n < 99 {
                q.schedule(now + TimeDelta::from_ns(1), n + 1);
            }
        });
        assert_eq!(count, 100);
        assert_eq!(sim.now(), SimTime::from_ns(99));
    }

    #[test]
    fn entries_roundtrip_preserves_pop_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.schedule(SimTime::from_ns(9), 100);
        for i in 0..10 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_ns(1), 200);
        assert_eq!(q.pop().unwrap().1, 200);
        let (next_seq, now) = (q.next_seq(), q.now());
        let entries = q.entries();
        let mut rebuilt = EventQueue::from_entries(entries, next_seq, now);
        let order: Vec<_> = std::iter::from_fn(|| rebuilt.pop())
            .map(|(_, e)| e)
            .collect();
        let expected: Vec<i32> = (0..10).chain(std::iter::once(100)).collect();
        assert_eq!(order, expected);
    }

    #[test]
    #[should_panic(expected = "predates last popped")]
    fn from_entries_rejects_stale_entries() {
        let _ =
            EventQueue::from_entries(vec![(SimTime::from_ns(1), 0, ())], 1, SimTime::from_ns(5));
    }

    #[test]
    fn now_tracks_last_popped() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(7));
        assert!(q.is_empty());
    }
}
