//! Time-ordered event queue with deterministic tie-breaking.
//!
//! Two interchangeable kernels implement the same total order
//! `(time, seq)`:
//!
//! * [`QueueKind::TimingWheel`] (the default) — a hierarchical timing
//!   wheel keyed on picosecond buckets. Eight levels of 256 slots cover
//!   the full 64-bit tick space; the bucket width is 2^10 ps ≈ 1 ns,
//!   the finest HBM timing step (tWTR/tRTW), so one level-0 rotation
//!   (≈262 ns) spans every intra-frame HBM constraint (tRCD, tRP,
//!   tRAS, tFAW, tRFCsb), level 1 (≈67 µs) spans refresh intervals
//!   (tREFIsb) and telemetry epochs, and level 2 (≈17 ms) spans run
//!   horizons and drain deadlines. Inserts are O(1); pops drain a tiny
//!   per-bucket heap, so the cost no longer grows with the number of
//!   pending events the way a binary heap's does.
//! * [`QueueKind::BinaryHeap`] — the original `BinaryHeap` kernel, kept
//!   as the differential oracle: the equivalence and property suites
//!   run both kernels side by side and assert identical pop sequences.
//!
//! Bucket width affects performance only, never order: entries that
//! share a bucket are popped from an exact `(time, seq)` heap, so the
//! wheel is byte-identical to the oracle by construction. Compiling
//! `rip-sim` with the `heap-kernel` feature flips the default kernel
//! back to the heap oracle for whole-suite differential runs.
//!
//! [`ShardedEventQueue`] layers a partitioned facade over either kernel:
//! event classes whose firing times are provably monotone (per-port
//! crossbar handoffs, periodic read turns, fixed-delay flush timers) go
//! into per-lane FIFO calendars, everything else into the kernel, and a
//! single global sequence counter keeps the merged pop order exactly the
//! `(time, seq)` total order a monolithic queue would produce.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rip_units::SimTime;

/// One scheduled entry: fires at `time`; among equal times, entries fire
/// in insertion order (`seq`).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which event-kernel backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timing wheel on picosecond buckets (the default).
    TimingWheel,
    /// The original binary-heap kernel, kept as a differential oracle.
    BinaryHeap,
}

impl QueueKind {
    /// The kernel [`EventQueue::new`] builds: the timing wheel, unless
    /// the `heap-kernel` feature flips the default to the oracle.
    pub fn default_kind() -> Self {
        if cfg!(feature = "heap-kernel") {
            QueueKind::BinaryHeap
        } else {
            QueueKind::TimingWheel
        }
    }
}

/// log2 of the wheel bucket width in picoseconds: 2^10 ps ≈ 1 ns, the
/// finest HBM timing step (tWTR/tRTW ≈ 1 ns), so same-bucket collisions
/// stay rare at device-model event densities.
const GRANULARITY_LOG2: u32 = 10;
/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels: 8 x 8 bits covers the entire 64-bit tick space, so the top
/// levels double as the far-future overflow buckets — no separate
/// overflow list is needed.
const LEVELS: usize = 8;
/// 64-bit occupancy words per level.
const WORDS: usize = SLOTS / 64;

/// Hierarchical timing-wheel kernel.
///
/// Invariants:
/// * `current` holds every pending entry whose tick is `<= current_tick`
///   in an exact `(time, seq)` min-heap; the wheel slots hold entries
///   with strictly greater ticks.
/// * whenever the queue is non-empty, `current` is non-empty (the wheel
///   eagerly advances), so `peek` is one heap peek.
struct Wheel<E> {
    /// Tick of the bucket currently being drained.
    current_tick: u64,
    /// Exact-order heap over the entries at or before `current_tick`.
    current: BinaryHeap<Entry<E>>,
    /// `LEVELS * SLOTS` buckets of future entries.
    slots: Vec<Vec<Entry<E>>>,
    /// One bit per slot: which buckets are non-empty.
    occupancy: [[u64; WORDS]; LEVELS],
    /// Entries held in `slots` (excludes `current`).
    in_slots: usize,
}

#[inline]
fn tick_of(time: SimTime) -> u64 {
    time.as_ps() >> GRANULARITY_LOG2
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            current_tick: 0,
            current: BinaryHeap::new(),
            slots: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS)
                .collect(),
            occupancy: [[0; WORDS]; LEVELS],
            in_slots: 0,
        }
    }

    fn len(&self) -> usize {
        self.current.len() + self.in_slots
    }

    fn insert(&mut self, entry: Entry<E>) {
        let tick = tick_of(entry.time);
        if self.current.is_empty() && self.in_slots == 0 {
            // Empty queue: restart the wheel at the entry's bucket.
            self.current_tick = tick;
            self.current.push(entry);
        } else {
            self.place(entry, tick);
        }
    }

    /// Insert with `current_tick` already authoritative (no empty-queue
    /// restart) — the re-insert path `advance` uses.
    fn place(&mut self, entry: Entry<E>, tick: u64) {
        if tick <= self.current_tick {
            // At or before the bucket being drained (schedule-at-now,
            // or behind an eagerly advanced wheel): the exact-order
            // heap keeps (time, seq) order regardless.
            self.current.push(entry);
            return;
        }
        let level = (63 - (tick ^ self.current_tick).leading_zeros()) / SLOT_BITS;
        let slot = ((tick >> (SLOT_BITS * level)) & (SLOTS as u64 - 1)) as usize;
        let (level, slot) = (level as usize, slot);
        self.slots[level * SLOTS + slot].push(entry);
        self.occupancy[level][slot / 64] |= 1 << (slot % 64);
        self.in_slots += 1;
    }

    fn peek(&self) -> Option<&Entry<E>> {
        self.current.peek()
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let entry = self.current.pop()?;
        if self.current.is_empty() && self.in_slots > 0 {
            self.advance();
        }
        Some(entry)
    }

    /// Move `current_tick` to the next occupied bucket and refill
    /// `current`. Levels below the found slot are empty (that is what
    /// made us climb), so redistributing the one slot we take is enough
    /// to restore the invariants.
    fn advance(&mut self) {
        for level in 0..LEVELS {
            let cur_idx =
                ((self.current_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            let Some(slot) = self.next_occupied(level, cur_idx) else {
                continue;
            };
            let mut entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            self.occupancy[level][slot / 64] &= !(1 << (slot % 64));
            self.in_slots -= entries.len();
            let min_tick = entries
                .iter()
                .map(|e| tick_of(e.time))
                .min()
                .expect("occupied slot is non-empty");
            self.current_tick = min_tick;
            for e in entries.drain(..) {
                let tick = tick_of(e.time);
                self.place(e, tick);
            }
            // The slot's minimum-tick entries landed in `current`.
            debug_assert!(!self.current.is_empty());
            return;
        }
        debug_assert_eq!(self.in_slots, 0, "occupancy bitmaps out of sync");
    }

    /// The first occupied slot strictly after `after` at `level`, if
    /// any. All live slots at a level sit after the current index (they
    /// hold strictly future ticks), so one forward scan suffices.
    fn next_occupied(&self, level: usize, after: usize) -> Option<usize> {
        let words = &self.occupancy[level];
        let start_word = (after + 1) / 64;
        for (w, &word) in words.iter().enumerate().skip(start_word) {
            let mut bits = word;
            if w == start_word {
                let offset = (after + 1) % 64;
                bits &= !0u64 << offset;
            }
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    fn into_entries(self) -> Vec<Entry<E>> {
        let mut v: Vec<Entry<E>> = self.current.into_iter().collect();
        for slot in self.slots {
            v.extend(slot);
        }
        v
    }

    fn iter(&self) -> impl Iterator<Item = &Entry<E>> {
        self.current.iter().chain(self.slots.iter().flatten())
    }
}

// The wheel is the default kernel and there is one queue per engine:
// keeping it inline spares every hot-path op a pointer chase, at the
// cost of a fat heap-kernel variant that never matters.
#[allow(clippy::large_enum_variant)]
enum Kernel<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A time-ordered event queue.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, which makes whole simulations reproducible bit-for-bit
/// regardless of kernel internals: both the timing-wheel and the heap
/// kernel realize the same `(time, seq)` total order.
pub struct EventQueue<E> {
    kernel: Kernel<E>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero, on the default kernel
    /// ([`QueueKind::default_kind`]).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default_kind())
    }

    /// An empty queue at time zero on an explicit kernel — how the
    /// differential suites run the oracle and the wheel side by side.
    pub fn with_kind(kind: QueueKind) -> Self {
        let kernel = match kind {
            QueueKind::TimingWheel => Kernel::Wheel(Wheel::new()),
            QueueKind::BinaryHeap => Kernel::Heap(BinaryHeap::new()),
        };
        EventQueue {
            kernel,
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// The kernel backing this queue.
    pub fn kind(&self) -> QueueKind {
        match self.kernel {
            Kernel::Wheel(_) => QueueKind::TimingWheel,
            Kernel::Heap(_) => QueueKind::BinaryHeap,
        }
    }

    /// Schedule `event` to fire at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last popped event — scheduling
    /// into the past is always a simulation bug.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < last popped {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        match &mut self.kernel {
            Kernel::Wheel(w) => w.insert(entry),
            Kernel::Heap(h) => h.push(entry),
        }
    }

    /// Schedule `event` at `time` with an externally assigned sequence
    /// number. [`ShardedEventQueue`] owns the global `(time, seq)`
    /// counter across its partitions and delegates the unordered event
    /// classes here; `seq` must be strictly increasing across calls
    /// (interleaved with the lane calendars, so gaps are expected).
    ///
    /// # Panics
    /// Panics if `time` is in the past or `seq` is not beyond every
    /// previously assigned sequence number.
    pub fn schedule_seq(&mut self, time: SimTime, seq: u64, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < last popped {}",
            self.last_popped
        );
        assert!(
            seq >= self.next_seq,
            "schedule_seq must be monotone: seq {seq} < next {}",
            self.next_seq
        );
        self.next_seq = seq + 1;
        let entry = Entry { time, seq, event };
        match &mut self.kernel {
            Kernel::Wheel(w) => w.insert(entry),
            Kernel::Heap(h) => h.push(entry),
        }
    }

    /// Remove and return the earliest event, with its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match &mut self.kernel {
            Kernel::Wheel(w) => w.pop()?,
            Kernel::Heap(h) => h.pop()?,
        };
        debug_assert!(entry.time >= self.last_popped);
        self.last_popped = entry.time;
        Some((entry.time, entry.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.kernel {
            Kernel::Wheel(w) => w.peek().map(|e| e.time),
            Kernel::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// The `(time, seq)` key of the earliest pending event — what the
    /// sharded facade compares against its lane calendars at merge
    /// points.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        match &self.kernel {
            Kernel::Wheel(w) => w.peek().map(|e| (e.time, e.seq)),
            Kernel::Heap(h) => h.peek().map(|e| (e.time, e.seq)),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.kernel {
            Kernel::Wheel(w) => w.len(),
            Kernel::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.last_popped
    }

    /// Drain the queue into pop order — `(time, seq, event)` sorted by
    /// `(time, seq)` — for checkpointing. Pop order is a total order,
    /// so neither kernel's internal layout ever leaks into a snapshot:
    /// a snapshot taken under one kernel resumes under the other.
    pub fn into_entries(self) -> Vec<(SimTime, u64, E)> {
        let mut v: Vec<(SimTime, u64, E)> = match self.kernel {
            Kernel::Wheel(w) => w
                .into_entries()
                .into_iter()
                .map(|e| (e.time, e.seq, e.event))
                .collect(),
            Kernel::Heap(h) => h.into_iter().map(|e| (e.time, e.seq, e.event)).collect(),
        };
        v.sort_by_key(|&(t, s, _)| (t, s));
        v
    }

    /// Pop order without consuming the queue (events are cloned).
    pub fn entries(&self) -> Vec<(SimTime, u64, E)>
    where
        E: Clone,
    {
        let mut v: Vec<(SimTime, u64, E)> = match &self.kernel {
            Kernel::Wheel(w) => w.iter().map(|e| (e.time, e.seq, e.event.clone())).collect(),
            Kernel::Heap(h) => h.iter().map(|e| (e.time, e.seq, e.event.clone())).collect(),
        };
        v.sort_by_key(|&(t, s, _)| (t, s));
        v
    }

    /// The sequence number the next `schedule` call will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Rebuild a queue from checkpointed parts on the default kernel:
    /// the pending entries (with their original insertion sequence
    /// numbers, so FIFO tie-breaks replay identically), the next
    /// sequence number, and the last popped time.
    ///
    /// # Panics
    /// Panics if any entry predates `last_popped` or carries a sequence
    /// number at or beyond `next_seq` — both indicate a corrupt or
    /// hand-edited snapshot.
    pub fn from_entries(
        entries: Vec<(SimTime, u64, E)>,
        next_seq: u64,
        last_popped: SimTime,
    ) -> Self {
        Self::from_entries_in(QueueKind::default_kind(), entries, next_seq, last_popped)
    }

    /// [`EventQueue::from_entries`] on an explicit kernel. Snapshots
    /// store kernel-agnostic pop order, so entries written under the
    /// heap oracle rebuild under the wheel (and vice versa) with
    /// byte-identical continuation.
    pub fn from_entries_in(
        kind: QueueKind,
        entries: Vec<(SimTime, u64, E)>,
        next_seq: u64,
        last_popped: SimTime,
    ) -> Self {
        let mut q = Self::with_kind(kind);
        q.next_seq = next_seq;
        q.last_popped = last_popped;
        for (time, seq, event) in entries {
            assert!(
                time >= last_popped,
                "snapshot entry at {time} predates last popped {last_popped}"
            );
            assert!(
                seq < next_seq,
                "snapshot entry seq {seq} >= next {next_seq}"
            );
            let entry = Entry { time, seq, event };
            match &mut q.kernel {
                Kernel::Wheel(w) => w.insert(entry),
                Kernel::Heap(h) => h.push(entry),
            }
        }
        q
    }
}

/// The sink half of the queue API: handlers that only ever *schedule*
/// follow-up events can be generic over this, so the same dispatch code
/// drives a monolithic [`EventQueue`] and a [`ShardedEventQueue`]-backed
/// router without duplication.
pub trait EventSink<E> {
    /// Schedule `event` to fire at `time`.
    fn schedule(&mut self, time: SimTime, event: E);
}

impl<E> EventSink<E> for EventQueue<E> {
    fn schedule(&mut self, time: SimTime, event: E) {
        EventQueue::schedule(self, time, event);
    }
}

/// A partitioned event queue preserving global `(time, seq)` pop order.
///
/// The queue is split into `lanes` monotone FIFO calendars plus one
/// kernel-backed queue for everything else. A lane holds an event class
/// whose firing times are non-decreasing *by construction* (each port's
/// crossbar handoffs serialize on that port's free time; periodic turns
/// advance by a fixed interval; flush timers arm in dispatch order with
/// a constant delay), so insertion is `push_back` and the earliest lane
/// entry is always the front — no heap or wheel bookkeeping. One global
/// sequence counter spans all partitions, so the merged pop sequence is
/// *exactly* what a single [`EventQueue`] fed the same `schedule` calls
/// in the same order would produce: sharding the storage never reorders
/// ties, which is what keeps parallel-engine output byte-identical.
///
/// Misuse is loud: scheduling a lane event earlier than the lane's tail
/// panics immediately instead of silently reordering.
pub struct ShardedEventQueue<E> {
    kernel: EventQueue<E>,
    lanes: Vec<std::collections::VecDeque<(SimTime, u64, E)>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> ShardedEventQueue<E> {
    /// An empty queue with `lanes` monotone calendars over a `kind`
    /// kernel for the unordered event classes.
    pub fn new(kind: QueueKind, lanes: usize) -> Self {
        ShardedEventQueue {
            kernel: EventQueue::with_kind(kind),
            lanes: std::iter::repeat_with(std::collections::VecDeque::new)
                .take(lanes)
                .collect(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// The kernel backing the unordered partition.
    pub fn kind(&self) -> QueueKind {
        self.kernel.kind()
    }

    /// Number of monotone lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Schedule into the unordered (kernel-backed) partition.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last popped event.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < last popped {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.kernel.schedule_seq(time, seq, event);
    }

    /// Schedule into monotone calendar `lane`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last popped event or than
    /// the lane's current tail — lane calendars exist *because* their
    /// event class is provably monotone, so a violation is a bug in the
    /// caller's monotonicity argument, not a case to paper over.
    pub fn schedule_lane(&mut self, lane: usize, time: SimTime, event: E) {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < last popped {}",
            self.last_popped
        );
        let q = &mut self.lanes[lane];
        if let Some(&(tail, _, _)) = q.back() {
            assert!(
                time >= tail,
                "lane {lane} calendar must be monotone: {time} < tail {tail}"
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        q.push_back((time, seq, event));
    }

    /// The `(time, seq)`-earliest pending partition: lane index, or
    /// `None` for the kernel partition. `Some(Err(()))` never occurs —
    /// this is internal to `pop`/`peek_time`.
    fn best(&self) -> Option<(SimTime, u64, Option<usize>)> {
        let mut best: Option<(SimTime, u64, Option<usize>)> =
            self.kernel.peek_key().map(|(t, s)| (t, s, None));
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some(&(t, s, _)) = lane.front() {
                let better = match best {
                    None => true,
                    Some((bt, bs, _)) => (t, s) < (bt, bs),
                };
                if better {
                    best = Some((t, s, Some(i)));
                }
            }
        }
        best
    }

    /// Remove and return the globally earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (time, _, lane) = self.best()?;
        debug_assert!(time >= self.last_popped);
        self.last_popped = time;
        match lane {
            Some(i) => {
                let (t, _, ev) = self.lanes[i].pop_front().expect("best lane has a front");
                Some((t, ev))
            }
            None => self.kernel.pop(),
        }
    }

    /// The firing time of the globally earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.best().map(|(t, _, _)| t)
    }

    /// Number of pending events across all partitions.
    pub fn len(&self) -> usize {
        self.kernel.len() + self.lanes.iter().map(|l| l.len()).sum::<usize>()
    }

    /// True if no events are pending in any partition.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

/// A minimal simulation driver around an [`EventQueue`].
///
/// The handler receives the current time, the event, and the queue (to
/// schedule follow-ups). `run` drains the queue; `run_until` stops at a
/// horizon, leaving later events pending.
pub struct Simulation<E> {
    queue: EventQueue<E>,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// A fresh simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
        }
    }

    /// Schedule an initial event.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }

    /// Current simulation time (time of the last handled event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run until the queue is empty.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        while let Some((now, ev)) = self.queue.pop() {
            handler(now, ev, &mut self.queue);
        }
    }

    /// Run until the queue is empty or the next event is after `horizon`.
    ///
    /// Events at exactly `horizon` are handled; later ones stay queued.
    /// Returns the number of events handled.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> u64
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        let mut handled = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event must pop");
            handler(now, ev, &mut self.queue);
            handled += 1;
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_units::TimeDelta;

    const KINDS: [QueueKind; 2] = [QueueKind::TimingWheel, QueueKind::BinaryHeap];

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ns(30), "c");
            q.schedule(SimTime::from_ns(10), "a");
            q.schedule(SimTime::from_ns(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn equal_times_are_fifo() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_ns(5);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(9), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_ns(10), 1);
            q.pop();
            q.schedule(SimTime::from_ns(10), 2);
            assert_eq!(q.pop().unwrap().1, 2);
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        for i in 0..10u64 {
            sim.schedule(SimTime::from_ns(i * 10), i);
        }
        let mut seen = Vec::new();
        let n = sim.run_until(SimTime::from_ns(40), |_, e, _| seen.push(e));
        assert_eq!(n, 5); // events at 0,10,20,30,40
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.now(), SimTime::from_ns(40));
    }

    #[test]
    fn cascading_schedules() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        sim.run(|now, n, q| {
            count += 1;
            if n < 99 {
                q.schedule(now + TimeDelta::from_ns(1), n + 1);
            }
        });
        assert_eq!(count, 100);
        assert_eq!(sim.now(), SimTime::from_ns(99));
    }

    #[test]
    fn entries_roundtrip_preserves_pop_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_ns(5);
            q.schedule(SimTime::from_ns(9), 100);
            for i in 0..10 {
                q.schedule(t, i);
            }
            q.schedule(SimTime::from_ns(1), 200);
            assert_eq!(q.pop().unwrap().1, 200);
            let (next_seq, now) = (q.next_seq(), q.now());
            let entries = q.entries();
            let mut rebuilt = EventQueue::from_entries_in(kind, entries, next_seq, now);
            let order: Vec<_> = std::iter::from_fn(|| rebuilt.pop())
                .map(|(_, e)| e)
                .collect();
            let expected: Vec<i32> = (0..10).chain(std::iter::once(100)).collect();
            assert_eq!(order, expected);
        }
    }

    #[test]
    #[should_panic(expected = "predates last popped")]
    fn from_entries_rejects_stale_entries() {
        let _ =
            EventQueue::from_entries(vec![(SimTime::from_ns(1), 0, ())], 1, SimTime::from_ns(5));
    }

    #[test]
    fn now_tracks_last_popped() {
        for kind in KINDS {
            let mut q: EventQueue<()> = EventQueue::with_kind(kind);
            assert_eq!(q.now(), SimTime::ZERO);
            q.schedule(SimTime::from_ns(7), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
            q.pop();
            assert_eq!(q.now(), SimTime::from_ns(7));
            assert!(q.is_empty());
        }
    }

    /// Satellite check for `from_entries`: insertion-sequence numbers
    /// restored from a snapshot must keep steering FIFO tie-breaks,
    /// including against events scheduled *after* the resume (which get
    /// fresh, larger sequence numbers).
    #[test]
    fn from_entries_restores_resume_ordering() {
        for kind in KINDS {
            // Interleave two times so seq ordering matters at both.
            let t5 = SimTime::from_ns(5);
            let t9 = SimTime::from_ns(9);
            let mut q = EventQueue::with_kind(kind);
            q.schedule(t9, "i9-a");
            q.schedule(t5, "i5-a");
            q.schedule(t9, "i9-b");
            q.schedule(t5, "i5-b");
            let (next_seq, now) = (q.next_seq(), q.now());
            // Snapshot entries arrive in pop order; feed them shuffled
            // to prove the stored seqs (not insertion order into
            // from_entries) decide the tie-breaks.
            let mut entries = q.entries();
            entries.reverse();
            let mut rebuilt = EventQueue::from_entries_in(kind, entries, next_seq, now);
            assert_eq!(rebuilt.next_seq(), next_seq);
            // Post-resume schedules at the same instants must land
            // after the restored entries at those instants.
            rebuilt.schedule(t5, "p5");
            rebuilt.schedule(t9, "p9");
            let order: Vec<_> = std::iter::from_fn(|| rebuilt.pop())
                .map(|(_, e)| e)
                .collect();
            assert_eq!(order, vec!["i5-a", "i5-b", "p5", "i9-a", "i9-b", "p9"]);
        }
    }

    /// The wheel's top levels double as the far-future overflow bucket:
    /// near-term and u64-extreme times interleave correctly.
    #[test]
    fn far_future_overflow_bucket() {
        let mut wheel = EventQueue::with_kind(QueueKind::TimingWheel);
        let mut heap = EventQueue::with_kind(QueueKind::BinaryHeap);
        let times = [
            SimTime::from_ps(u64::MAX),
            SimTime::from_ps(1),
            SimTime::from_ps(u64::MAX - 1),
            SimTime::from_ns(1_000_000_000), // 1 s
            SimTime::ZERO,
            SimTime::from_ps(u64::MAX),
            SimTime::from_ns(3),
        ];
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(t, i);
            heap.schedule(t, i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Differential check for the sharded facade: any interleaving of
    /// lane-monotone and unordered schedules pops in exactly the order a
    /// monolithic queue fed the same calls produces — including ties.
    #[test]
    fn sharded_facade_matches_monolithic_pop_order() {
        for kind in KINDS {
            let mut sharded = ShardedEventQueue::new(kind, 3);
            let mut oracle = EventQueue::with_kind(kind);
            // Deterministic LCG drives the interleaving.
            let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut rng = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let mut lane_tail = [0u64; 3];
            let mut id = 0u32;
            let mut drained = 0usize;
            for _ in 0..500 {
                let r = rng();
                if r % 5 == 4 && drained < 400 {
                    // Interleave pops so lanes fill and drain mid-run.
                    assert_eq!(sharded.pop(), oracle.pop());
                    drained += 1;
                    continue;
                }
                // Ties are common on purpose: coarse 10 ns grid.
                let mut t = SimTime::from_ns(sharded.now().as_ps() / 1000 + (r % 8) * 10);
                id += 1;
                if r % 5 < 3 {
                    let lane = (r % 3) as usize;
                    t = t.max(SimTime::from_ps(lane_tail[lane]));
                    lane_tail[lane] = t.as_ps();
                    sharded.schedule_lane(lane, t, id);
                } else {
                    sharded.schedule(t, id);
                }
                oracle.schedule(t, id);
            }
            assert_eq!(sharded.len(), oracle.len());
            loop {
                let (a, b) = (sharded.pop(), oracle.pop());
                assert_eq!(a, b, "sharded facade diverged from monolithic order");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "calendar must be monotone")]
    fn sharded_facade_rejects_non_monotone_lane() {
        let mut q = ShardedEventQueue::new(QueueKind::TimingWheel, 1);
        q.schedule_lane(0, SimTime::from_ns(20), ());
        q.schedule_lane(0, SimTime::from_ns(10), ());
    }

    /// Popping must re-sync the wheel after an eager advance overshoots
    /// a later schedule: schedule far, pop nothing, schedule near.
    #[test]
    fn schedule_behind_advanced_wheel() {
        let mut q = EventQueue::with_kind(QueueKind::TimingWheel);
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(1_000_000), "far");
        assert_eq!(q.pop().unwrap().1, "a");
        // The wheel has advanced its current bucket to "far"'s tick;
        // a schedule earlier than that bucket must still pop first.
        q.schedule(SimTime::from_ns(20), "b");
        q.schedule(SimTime::from_ns(999_999), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }
}
