//! Allocation-recycling pools for hot simulation loops.
//!
//! The streaming engine forms, stages, and drains millions of small
//! `Vec`-backed buffers (chunk lists, batch scratch) per run. Their
//! contents are short-lived but their *capacity* is perfectly reusable:
//! a [`VecPool`] keeps retired buffers on a free list and hands them
//! back cleared, so steady-state operation performs no allocator
//! round-trips at all. Pooling affects only where bytes live, never
//! what the simulation computes — pop order, reports and telemetry
//! stay byte-identical with pooling on or off.

/// A free list of reusable `Vec<T>` buffers.
///
/// `get` returns a cleared vector (recycled when one is available),
/// `put` retires one. The pool is bounded so a transient burst cannot
/// pin memory forever.
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    /// Retired buffers beyond this are dropped instead of pooled.
    max_pooled: usize,
    /// Total `get` calls, for diagnostics.
    gets: u64,
    /// `get` calls served from the free list.
    recycled: u64,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl<T> VecPool<T> {
    /// A pool retaining at most `max_pooled` retired buffers.
    pub fn new(max_pooled: usize) -> Self {
        VecPool {
            free: Vec::new(),
            max_pooled,
            gets: 0,
            recycled: 0,
        }
    }

    /// An empty vector: recycled capacity when available, fresh
    /// otherwise.
    pub fn get(&mut self) -> Vec<T> {
        self.gets += 1;
        match self.free.pop() {
            Some(v) => {
                self.recycled += 1;
                debug_assert!(v.is_empty());
                v
            }
            None => Vec::new(),
        }
    }

    /// Retire a buffer; its contents are dropped, its capacity kept.
    pub fn put(&mut self, mut v: Vec<T>) {
        if self.free.len() < self.max_pooled && v.capacity() > 0 {
            v.clear();
            self.free.push(v);
        }
    }

    /// Buffers currently on the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// `(total gets, gets served by recycling)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.gets, self.recycled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_capacity() {
        let mut pool: VecPool<u32> = VecPool::new(4);
        let mut v = pool.get();
        v.extend([1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.pooled(), 1);
        let v2 = pool.get();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.stats(), (2, 1));
    }

    #[test]
    fn bounded_retention() {
        let mut pool: VecPool<u8> = VecPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool: VecPool<u8> = VecPool::new(2);
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 0);
    }
}
