//! Seeded, stream-splittable randomness.
//!
//! Every stochastic component in the workspace takes an explicit `u64`
//! seed. Sub-components derive independent streams with [`derive_seed`],
//! so adding a consumer never perturbs the draws seen by another — the
//! property that keeps A/B experiment comparisons paired.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derive an independent child seed from `(seed, stream)`.
///
/// Uses the SplitMix64 finalizer, the standard remedy for correlated
/// seeds; distinct `stream` values give statistically independent
/// generators for any fixed `seed`.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construct a deterministic RNG for `(seed, stream)`.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, stream))
}

/// A deterministic pseudo-random permutation of `0..n` (Fisher–Yates).
pub fn permutation(n: usize, seed: u64, stream: u64) -> Vec<usize> {
    let mut rng = rng_for(seed, stream);
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// Sample an index from a discrete (unnormalized, non-negative) weight
/// vector. Returns `None` if all weights are zero or the slice is empty.
pub fn weighted_index<R: Rng>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    // NaN totals (from NaN weights) fall through to None as well.
    if total.partial_cmp(&0.0) != Some(core::cmp::Ordering::Greater) {
        return None;
    }
    let mut x = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        debug_assert!(w >= 0.0, "negative weight at index {i}");
        if x < w {
            return Some(i);
        }
        x -= w;
    }
    // Floating-point edge: fall back to the last positive weight.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Draw an exponentially distributed duration with the given mean, in
/// picoseconds (for Poisson arrival processes). Always at least 1 ps so
/// that event times strictly advance.
pub fn exp_ps<R: Rng>(rng: &mut R, mean_ps: f64) -> u64 {
    debug_assert!(mean_ps > 0.0);
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let d = -mean_ps * u.ln();
    (d.round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(42, 1), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = rng_for(7, 0);
        let mut b = rng_for(7, 0);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(64, 123, 5);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // And differs from identity with overwhelming probability.
        assert_ne!(p, (0..64).collect::<Vec<_>>());
        // Deterministic.
        assert_eq!(p, permutation(64, 123, 5));
        // Seed-sensitive.
        assert_ne!(p, permutation(64, 124, 5));
    }

    #[test]
    fn permutation_handles_degenerate_sizes() {
        assert_eq!(permutation(0, 1, 1), Vec::<usize>::new());
        assert_eq!(permutation(1, 1, 1), vec![0]);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = rng_for(1, 1);
        let w = [0.0, 3.0, 1.0, 0.0];
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[weighted_index(&mut rng, &w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[3], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_zero_total_is_none() {
        let mut rng = rng_for(1, 1);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut rng, &[]), None);
    }

    #[test]
    fn exp_ps_has_right_mean() {
        let mut rng = rng_for(9, 9);
        let mean = 10_000.0;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| exp_ps(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }
}
