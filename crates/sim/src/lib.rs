//! Deterministic discrete-event simulation kernel for the petabit
//! router-in-a-package reproduction.
//!
//! Design follows the event-driven idioms of embedded network stacks
//! (smoltcp): synchronous, allocation-light, fully deterministic. The
//! kernel offers:
//!
//! * [`EventQueue`] — a time-ordered queue with **deterministic
//!   tie-breaking** (FIFO among equal-time events, by insertion sequence
//!   number), so a simulation is a pure function of its configuration and
//!   seed. Backed by a hierarchical timing wheel on picosecond buckets;
//!   the original binary-heap kernel survives as a runtime-selectable
//!   differential oracle ([`QueueKind`]).
//! * [`arena`] — recycling pools ([`VecPool`]) that keep hot-loop
//!   buffer churn out of the allocator without touching determinism.
//! * [`Simulation`] — a thin driver that pops events and hands them to a
//!   handler together with a scheduling context.
//! * [`Feeder`] — a bounded-lookahead buffer over a pull-based external
//!   arrival stream, so streaming drivers interleave source pulls with
//!   queue events in O(lookahead) memory instead of pre-scheduling the
//!   whole horizon.
//! * [`rng`] — seeded, stream-splittable random number generation. Every
//!   stochastic component of the workspace takes an explicit `u64` seed.
//! * [`snapshot`] — versioned, CRC-checked checkpoint containers with
//!   atomic-rename writes and two-slot rotation, the storage layer under
//!   crash-safe soak resume.
//! * [`stats`] — counters, Welford mean/variance, histograms with exact
//!   quantiles, time-weighted gauges and throughput meters used by every
//!   experiment.
//!
//! # Example
//!
//! ```
//! use rip_sim::Simulation;
//! use rip_units::{SimTime, TimeDelta};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule(SimTime::ZERO, Ev::Ping(0));
//! let mut seen = Vec::new();
//! sim.run(|now, ev, q| {
//!     let Ev::Ping(n) = ev;
//!     seen.push((now.as_ps(), n));
//!     if n < 3 {
//!         q.schedule(now + TimeDelta::from_ns(1), Ev::Ping(n + 1));
//!     }
//! });
//! assert_eq!(seen.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod feeder;
mod queue;
pub mod rng;
mod series;
pub mod snapshot;
pub mod stats;

pub use arena::VecPool;
pub use feeder::Feeder;
pub use queue::{EventQueue, EventSink, QueueKind, ShardedEventQueue, Simulation};
pub use series::{Series, TraceLog};
