//! Versioned, CRC-checked snapshot containers for checkpoint/resume.
//!
//! A snapshot is an opaque payload (the caller serializes its state —
//! typically JSON) wrapped in a small integrity envelope:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"RIPSNAP1"
//! 8       4     format version (u32, little-endian)
//! 12      8     payload length (u64, little-endian)
//! 20      4     CRC-32 (IEEE) of the payload (u32, little-endian)
//! 24      n     payload bytes
//! ```
//!
//! Writes are crash-safe: the envelope is written to `<path>.tmp` and
//! atomically renamed into place, after rotating any existing snapshot
//! to `<path>.prev` (N=2 rotation). A reader that finds the newest
//! slot truncated or corrupted ([`SnapshotError`] names the failure)
//! falls back to the previous slot via [`load_latest`], so a crash
//! mid-write never loses more than one checkpoint interval.

use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"RIPSNAP1";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Envelope bytes before the payload.
const HEADER_LEN: usize = 8 + 4 + 8 + 4;

/// Why a snapshot could not be read or written.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (open, read, write, rename).
    Io {
        /// The file being accessed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with [`MAGIC`] — not a snapshot.
    BadMagic {
        /// The file read.
        path: PathBuf,
    },
    /// The format version is newer than this build understands.
    Version {
        /// The file read.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// The file read.
        path: PathBuf,
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The payload checksum does not match the header.
    CrcMismatch {
        /// The file read.
        path: PathBuf,
    },
    /// The payload decoded, but describes a different run (wrong spec,
    /// wrong engine, incompatible options).
    Mismatch(String),
    /// The run's configuration cannot be checkpointed (e.g. tracing
    /// enabled, or no telemetry epoch to align snapshots to).
    Unsupported(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O on {}: {source}", path.display())
            }
            SnapshotError::BadMagic { path } => {
                write!(f, "{} is not a snapshot (bad magic)", path.display())
            }
            SnapshotError::Version { path, found } => write!(
                f,
                "{} has snapshot format v{found}; this build reads up to v{VERSION}",
                path.display()
            ),
            SnapshotError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} is truncated: header promises {expected} payload bytes, file holds {found}",
                path.display()
            ),
            SnapshotError::CrcMismatch { path } => {
                write!(
                    f,
                    "{} failed its CRC check (corrupt payload)",
                    path.display()
                )
            }
            SnapshotError::Mismatch(why) => write!(f, "snapshot mismatch: {why}"),
            SnapshotError::Unsupported(why) => write!(f, "cannot checkpoint: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the same
/// checksum gzip and PNG use. Bitwise implementation — snapshot
/// payloads are small enough that a table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn io_err(path: &Path, source: std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// The `<path>.prev` rotation slot for a snapshot at `path`.
pub fn prev_slot(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".prev");
    PathBuf::from(name)
}

fn tmp_slot(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Write `payload` as a snapshot at `path`, crash-safely:
/// temp-file write + fsync + atomic rename, with the previous snapshot
/// (if any) rotated to `<path>.prev` first.
pub fn write_snapshot(path: &Path, payload: &[u8]) -> Result<(), SnapshotError> {
    let tmp = tmp_slot(path);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(payload).to_le_bytes());
        f.write_all(&header).map_err(|e| io_err(&tmp, e))?;
        f.write_all(payload).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    if path.exists() {
        std::fs::rename(path, prev_slot(path)).map_err(|e| io_err(path, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(&tmp, e))?;
    Ok(())
}

/// Read and verify the snapshot at `path`, returning its payload.
pub fn read_snapshot(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let mut f = std::fs::File::open(path).map_err(|e| io_err(path, e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).map_err(|e| io_err(path, e))?;
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        // A file too short to hold the magic is "not a snapshot", not
        // "truncated": truncation implies a parseable header.
        return Err(SnapshotError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version > VERSION {
        return Err(SnapshotError::Version {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if (payload.len() as u64) < len {
        return Err(SnapshotError::Truncated {
            path: path.to_path_buf(),
            expected: len,
            found: payload.len() as u64,
        });
    }
    let payload = &payload[..len as usize];
    if crc32(payload) != crc {
        return Err(SnapshotError::CrcMismatch {
            path: path.to_path_buf(),
        });
    }
    Ok(payload.to_vec())
}

/// Read the newest valid snapshot in `path`'s rotation: `path` itself,
/// falling back to `<path>.prev` when the newest slot is missing,
/// truncated, or corrupt. Returns the payload and the slot it came
/// from. Only when both slots fail does the newest slot's error
/// propagate.
pub fn load_latest(path: &Path) -> Result<(Vec<u8>, PathBuf), SnapshotError> {
    match read_snapshot(path) {
        Ok(payload) => Ok((payload, path.to_path_buf())),
        Err(primary) => {
            let prev = prev_slot(path);
            match read_snapshot(&prev) {
                Ok(payload) => Ok((payload, prev)),
                Err(_) => Err(primary),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rip-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_and_rotation() {
        let path = scratch("roundtrip.snap");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_slot(&path));
        write_snapshot(&path, b"first").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), b"first");
        assert!(!prev_slot(&path).exists());
        write_snapshot(&path, b"second").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), b"second");
        assert_eq!(read_snapshot(&prev_slot(&path)).unwrap(), b"first");
        let (latest, from) = load_latest(&path).unwrap();
        assert_eq!(latest, b"second");
        assert_eq!(from, path);
    }

    #[test]
    fn corrupt_newest_falls_back_to_prev() {
        let path = scratch("fallback.snap");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_slot(&path));
        write_snapshot(&path, b"old").unwrap();
        write_snapshot(&path, b"new").unwrap();
        // Truncate the newest slot mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        let (payload, from) = load_latest(&path).unwrap();
        assert_eq!(payload, b"old");
        assert_eq!(from, prev_slot(&path));
    }

    #[test]
    fn detects_bit_flip() {
        let path = scratch("bitflip.snap");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(prev_slot(&path));
        write_snapshot(&path, b"payload under test").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::CrcMismatch { .. })
        ));
        // No .prev slot: the corruption error must surface.
        assert!(load_latest(&path).is_err());
    }

    #[test]
    fn rejects_foreign_files_and_future_versions() {
        let path = scratch("foreign.snap");
        std::fs::write(&path, b"{\"not\": \"a snapshot\"}").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut future = Vec::new();
        future.extend_from_slice(MAGIC);
        future.extend_from_slice(&(VERSION + 1).to_le_bytes());
        future.extend_from_slice(&0u64.to_le_bytes());
        future.extend_from_slice(&crc32(b"").to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Version { found, .. }) if found == VERSION + 1
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = scratch("never-written.snap");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            read_snapshot(&path),
            Err(SnapshotError::Io { .. })
        ));
    }
}
