//! Time-series recording with bounded memory, and a typed trace log —
//! the observability hooks the switch simulations expose (the pcap-file
//! idiom of embedded network stacks, adapted to a simulator).

use std::collections::VecDeque;

use rip_units::SimTime;
use serde::{Deserialize, Serialize};

/// A `(time, value)` series with bounded memory: when the point budget
/// is exhausted, every other point is dropped and the keep-stride
/// doubles, so arbitrarily long runs keep a uniform summary at full
/// time coverage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
    max_points: usize,
    /// Record every `stride`-th sample.
    stride: u64,
    seen: u64,
}

impl Series {
    /// A series keeping at most `max_points` points (≥ 2).
    pub fn new(max_points: usize) -> Self {
        assert!(max_points >= 2, "need at least two points");
        Series {
            points: Vec::new(),
            max_points,
            stride: 1,
            seen: 0,
        }
    }

    /// Offer one sample.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.points.len() == self.max_points {
                // Decimate: keep every other retained point, double the
                // stride.
                let mut i = 0;
                self.points.retain(|_| {
                    i += 1;
                    i % 2 == 1
                });
                self.stride *= 2;
            }
            self.points.push((t, v));
        }
        self.seen += 1;
    }

    /// The retained points, in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Samples offered (not retained).
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// Largest retained value.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Value of the last retained point.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }
}

/// A bounded ring buffer of typed, timestamped trace events.
#[derive(Debug, Clone)]
pub struct TraceLog<E> {
    events: VecDeque<(SimTime, E)>,
    capacity: usize,
    total: u64,
}

impl<E> TraceLog<E> {
    /// A log retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        TraceLog {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            total: 0,
        }
    }

    /// Append one event.
    pub fn push(&mut self, t: SimTime, event: E) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back((t, event));
        self.total += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.events.iter()
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events ever pushed (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keeps_everything_under_budget() {
        let mut s = Series::new(16);
        for i in 0..10u64 {
            s.record(SimTime::from_ns(i), i as f64);
        }
        assert_eq!(s.points().len(), 10);
        assert_eq!(s.samples_seen(), 10);
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.last().unwrap().1, 9.0);
    }

    #[test]
    fn series_decimates_beyond_budget() {
        let mut s = Series::new(16);
        for i in 0..1000u64 {
            s.record(SimTime::from_ns(i), i as f64);
        }
        assert!(s.points().len() <= 16);
        assert_eq!(s.samples_seen(), 1000);
        // Coverage spans the whole run: first point early, last late.
        let pts = s.points();
        assert!(pts[0].0 <= SimTime::from_ns(64));
        assert!(pts[pts.len() - 1].0 >= SimTime::from_ns(900));
        // Time-ordered.
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn series_empty_is_safe() {
        let s = Series::new(4);
        assert!(s.points().is_empty());
        assert_eq!(s.max(), None);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn trace_log_evicts_oldest() {
        let mut log = TraceLog::new(3);
        for i in 0..5 {
            log.push(SimTime::from_ns(i), i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        let kept: Vec<u64> = log.events().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(!log.is_empty());
    }
}
