//! Post-mortem flight recorder: a bounded ring of the most recent
//! telemetry, dumped as a `flight_*.json` bundle when a run ends
//! abnormally.
//!
//! Long soaks die in three ways: a watchdog alarm (the run completed
//! but unhealthy), a delivered signal (operator or scheduler
//! interrupted it), or a panic. In all three cases the JSONL stream on
//! stdout is either truncated or too large to sift, and what the
//! operator actually needs is the *recent past*: the last N epoch
//! deltas, any watchdog events, the most recent self-profile records,
//! plus enough identity (build info, config echo) to reproduce. The
//! [`FlightRecorder`] keeps exactly that in bounded memory, fed by a
//! transparent [`FlightTee`] in the sink chain, and
//! [`FlightRecorder::dump`] serializes it once — the first trigger
//! wins, so a watchdog alarm followed by a SIGTERM produces one bundle.
//!
//! Like the profiler, the recorder observes and never participates: it
//! sits behind a tee that forwards every record untouched, so enabling
//! it cannot perturb reports, telemetry streams, traces or checkpoints.

use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use rip_units::SimTime;
use serde::Serialize;
use serde_json::Value;

use crate::profile::{ProfileHub, ProfileRecord};
use crate::{EpochDelta, MetricsRegistry, TelemetrySink, WatchdogEvent};

/// One remembered epoch: the delta plus the stream identity the sink
/// saw it under.
#[derive(Debug, Clone, Serialize)]
pub struct FlightEpoch {
    /// Stream source of the delta.
    pub source: String,
    /// Epoch index.
    pub epoch: u64,
    /// The epoch delta itself.
    pub delta: EpochDelta,
}

struct FlightInner {
    service: String,
    version: String,
    config_echo: Option<Value>,
    cap: usize,
    epochs: VecDeque<FlightEpoch>,
    watchdogs: Vec<WatchdogEvent>,
    epochs_seen: u64,
    run_ended: bool,
    profile: Option<ProfileHub>,
    dumped: Option<PathBuf>,
}

/// Bounded retention of the recent past, shared by clone (`Arc`
/// inside) so the signal/panic hooks and the sink chain see one state.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl FlightRecorder {
    /// A recorder identifying the dumping binary as `service`
    /// `version`, retaining the last `cap` epoch deltas (watchdog
    /// events are rare and kept unbounded within a run).
    pub fn new(service: &str, version: &str, cap: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(FlightInner {
                service: service.to_string(),
                version: version.to_string(),
                config_echo: None,
                cap: cap.max(1),
                epochs: VecDeque::new(),
                watchdogs: Vec::new(),
                epochs_seen: 0,
                run_ended: false,
                profile: None,
                dumped: None,
            })),
        }
    }

    /// Survive a poisoned lock: the panic hook is a primary caller.
    fn lock(&self) -> MutexGuard<'_, FlightInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attach the parsed run configuration, echoed into the bundle.
    pub fn set_config_echo(&self, config: Value) {
        self.lock().config_echo = Some(config);
    }

    /// Attach a profile hub whose recent records join the bundle.
    pub fn attach_profile_hub(&self, hub: ProfileHub) {
        self.lock().profile = Some(hub);
    }

    /// Remember one epoch delta (evicting the oldest past the cap).
    pub fn note_epoch(&self, source: &str, epoch: u64, delta: &EpochDelta) {
        let mut inner = self.lock();
        inner.epochs_seen += 1;
        if inner.epochs.len() == inner.cap {
            inner.epochs.pop_front();
        }
        inner.epochs.push_back(FlightEpoch {
            source: source.to_string(),
            epoch,
            delta: delta.clone(),
        });
    }

    /// Remember one watchdog event.
    pub fn note_watchdog(&self, event: &WatchdogEvent) {
        self.lock().watchdogs.push(event.clone());
    }

    /// Mark that the run reached its normal end (recorded in the
    /// bundle so a post-run watchdog dump is distinguishable from a
    /// mid-run death).
    pub fn note_run_end(&self) {
        self.lock().run_ended = true;
    }

    /// Watchdog events remembered so far.
    pub fn watchdogs_seen(&self) -> usize {
        self.lock().watchdogs.len()
    }

    /// Where the bundle was dumped, if it was.
    pub fn dumped(&self) -> Option<PathBuf> {
        self.lock().dumped.clone()
    }

    /// Write the post-mortem bundle `flight_<reason>.json` into `dir`.
    ///
    /// Only the first dump of a recorder writes (later triggers return
    /// `Ok(None)`), so stacked triggers — watchdog alarm, then SIGTERM,
    /// then the panic hook — produce exactly one bundle naming the
    /// first cause.
    pub fn dump(&self, dir: &Path, reason: &str) -> io::Result<Option<PathBuf>> {
        let mut inner = self.lock();
        if inner.dumped.is_some() {
            return Ok(None);
        }
        let profiles = inner
            .profile
            .as_ref()
            .map(|hub| hub.recent())
            .unwrap_or_default();
        let bundle = Bundle {
            record: "flight".to_string(),
            reason: reason.to_string(),
            service: inner.service.clone(),
            version: inner.version.clone(),
            run_ended: inner.run_ended,
            epochs_seen: inner.epochs_seen,
            epochs_retained: inner.epochs.len() as u64,
            config_echo: inner.config_echo.clone(),
            epochs: inner.epochs.iter().cloned().collect(),
            watchdogs: inner.watchdogs.clone(),
            profiles,
        };
        let body = serde_json::to_string(&bundle)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // The reason strings are internal identifiers (watchdog /
        // signal / panic); a defensive filter keeps the filename sane
        // if one ever carries punctuation.
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("flight_{slug}.json"));
        fs::write(&path, body + "\n")?;
        inner.dumped = Some(path.clone());
        Ok(Some(path))
    }
}

#[derive(Serialize)]
struct Bundle {
    record: String,
    reason: String,
    service: String,
    version: String,
    run_ended: bool,
    epochs_seen: u64,
    epochs_retained: u64,
    config_echo: Option<Value>,
    epochs: Vec<FlightEpoch>,
    watchdogs: Vec<WatchdogEvent>,
    profiles: Vec<ProfileRecord>,
}

/// A transparent sink tee feeding a [`FlightRecorder`]: every record is
/// forwarded to the inner sink unchanged; epoch deltas and watchdog
/// events are additionally remembered in the ring.
pub struct FlightTee<S: TelemetrySink> {
    inner: S,
    recorder: FlightRecorder,
}

impl<S: TelemetrySink> FlightTee<S> {
    /// Tee `inner`'s stream into `recorder`.
    pub fn new(recorder: FlightRecorder, inner: S) -> Self {
        FlightTee { inner, recorder }
    }
}

impl<S: TelemetrySink> TelemetrySink for FlightTee<S> {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        self.recorder.note_epoch(source, epoch, delta);
        self.inner.on_epoch(source, epoch, delta);
    }

    fn on_span(&mut self, source: &str, span: &crate::SpanEvent) {
        self.inner.on_span(source, span);
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        self.recorder.note_watchdog(event);
        self.inner.on_watchdog(source, event);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        self.recorder.note_run_end();
        self.inner.on_run_end(source, at, totals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseAcc;
    use crate::{MemorySink, Snapshot, WatchdogKind};
    use serde::Deserialize;

    fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        v.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn get_u64(v: &Value, key: &str) -> Option<u64> {
        u64::from_value(get(v, key)?).ok()
    }

    fn delta(n: u64) -> EpochDelta {
        let mut reg = MetricsRegistry::new();
        reg.inc("pkts", n);
        reg.snapshot(SimTime::from_ns(n))
            .delta_since(&Snapshot::empty())
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let rec = FlightRecorder::new("ripsim", "0.0.0", 3);
        for i in 0..10 {
            rec.note_epoch("sps", i, &delta(i + 1));
        }
        let dir = std::env::temp_dir().join("rip_flight_ring_test");
        fs::create_dir_all(&dir).unwrap();
        let path = rec.dump(&dir, "watchdog").unwrap().expect("first dump");
        let text = fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::parse(&text).unwrap();
        assert_eq!(get(&v, "record").and_then(Value::as_str), Some("flight"));
        assert_eq!(get_u64(&v, "epochs_seen"), Some(10));
        let epochs = get(&v, "epochs").and_then(Value::as_array).unwrap();
        assert_eq!(epochs.len(), 3);
        assert_eq!(get_u64(&epochs[0], "epoch"), Some(7));
        assert_eq!(get_u64(&epochs[2], "epoch"), Some(9));
        // Second trigger: no second bundle.
        assert!(rec.dump(&dir, "signal").unwrap().is_none());
        assert_eq!(rec.dumped().as_deref(), Some(path.as_path()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tee_forwards_and_records() {
        let rec = FlightRecorder::new("ripsim", "0.0.0", 8);
        let mut tee = FlightTee::new(rec.clone(), MemorySink::default());
        tee.on_epoch("sps", 0, &delta(1));
        tee.on_watchdog(
            "sps",
            &WatchdogEvent {
                source: "sps".to_string(),
                epoch: 0,
                at: SimTime::from_ns(5),
                kind: WatchdogKind::Stall { epochs: 2 },
            },
        );
        tee.on_run_end("sps", SimTime::from_ns(9), &MetricsRegistry::new());
        assert_eq!(rec.watchdogs_seen(), 1);
        let dir = std::env::temp_dir().join("rip_flight_tee_test");
        fs::create_dir_all(&dir).unwrap();
        let path = rec.dump(&dir, "panic").unwrap().expect("dump");
        let v: Value = serde_json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            get(&v, "run_ended").and_then(|b| bool::from_value(b).ok()),
            Some(true)
        );
        assert_eq!(
            get(&v, "watchdogs")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            1
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bundle_carries_config_echo_and_profiles() {
        let rec = FlightRecorder::new("ripsim", "1.2.3", 4);
        rec.set_config_echo(serde_json::parse("{\"ribbons\":4}").unwrap());
        let hub = ProfileHub::new();
        let mut acc = PhaseAcc::new();
        acc.add_ns_n(crate::Phase::KernelPop, 42, 1);
        hub.record(acc.flush("engine", 0));
        rec.attach_profile_hub(hub);
        let dir = std::env::temp_dir().join("rip_flight_bundle_test");
        fs::create_dir_all(&dir).unwrap();
        let path = rec.dump(&dir, "signal").unwrap().expect("dump");
        let v: Value = serde_json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(get(&v, "version").and_then(Value::as_str), Some("1.2.3"));
        assert_eq!(
            get(&v, "config_echo").and_then(|c| get_u64(c, "ribbons")),
            Some(4)
        );
        let profiles = get(&v, "profiles").and_then(Value::as_array).unwrap();
        assert_eq!(profiles.len(), 1);
        assert_eq!(
            get(&profiles[0], "source").and_then(Value::as_str),
            Some("engine")
        );
        fs::remove_dir_all(&dir).ok();
    }
}
