//! Wall-clock self-profiling of the simulator itself.
//!
//! Everything else in this crate is deterministic *simulation*
//! telemetry — stamped with [`SimTime`](rip_units::SimTime), never
//! wall-clock, so same-seed runs are byte-identical. This module is the
//! one deliberate exception: it measures where the *simulator's own*
//! host time goes (event-kernel pops, HBM timing arithmetic, batch
//! assembly, shard-channel stalls, telemetry export, checkpoint I/O,
//! fleet framing), so optimization work can be aimed at the real hot
//! spots instead of guesses.
//!
//! The invariant that keeps the two worlds separate: **wall-clock data
//! never touches a deterministic surface.** Profile records travel on
//! their own stream (a [`ProfileHub`] writer, `ripsim_profile_*`
//! Prometheus families, the flight-recorder ring) and are never mixed
//! into reports, JSONL telemetry, traces or checkpoints — the
//! differential suite runs every shipped config with the profiler on
//! and off and byte-compares all four surfaces.
//!
//! Cost model: phases are an enum indexing two fixed `u64` arrays, so
//! recording a span is two array adds and one monotonic-clock read —
//! no allocation, no map lookup, no lock. The hot loops read the clock
//! only when a profiler is attached (an `Option` check otherwise), and
//! records are flushed once per telemetry epoch, not per event. Even
//! so, an unconditional clock read per simulated event costs several
//! times the event's own work, so per-event phases go through
//! [`prof_now_sampled`] — a systematic 1-in-[`SAMPLE_STRIDE`] sample
//! of loop iterations; coarse once-per-epoch phases (telemetry export,
//! checkpoints, fleet framing, channel stalls) are always timed. The
//! `repro profile-overhead` bench holds the end-to-end overhead under
//! 3 %.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One profiled phase of simulator execution. Adding a variant is
/// cheap: extend [`Phase::ALL`] and [`Phase::name`] and every table
/// resizes at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Event-queue peeks/pops and the arrival-vs-event tie decision.
    KernelPop = 0,
    /// Arrival handling: VOQ push, batch formation, flush replay.
    BatchAssembly,
    /// HBM/SRAM timing arithmetic: `BatchAtTail`, read turns,
    /// `FrameAtHead` admission.
    HbmTiming,
    /// Output drain scheduling and egress serialization.
    BatchDrain,
    /// Everything else the dispatcher handles (faults, shutdown).
    Dispatch,
    /// Epoch snapshot/delta extraction and sink export.
    TelemetryExport,
    /// Shard-worker compute: input-stage simulation of its partition.
    ShardBusy,
    /// Shard-worker blocked in `send` on the bounded effect channel.
    ShardSend,
    /// Serial core blocked in `recv` waiting for a shard block. This
    /// stall happens *inside* the enclosing pop/replay span, so it is a
    /// breakdown of those phases, not an additive sibling — exclude it
    /// when summing phases against wall time.
    ChannelRecv,
    /// Serial-core replay of shard boundary effects.
    SerialReplay,
    /// Fleet collector: wire-frame decode and line parsing.
    FrameDecode,
    /// Fleet collector: staging records until their worker commits.
    Staging,
    /// Fleet collector: replaying committed planes through the sink.
    MergeReplay,
    /// Snapshot serialization and persistence.
    CheckpointSave,
    /// Snapshot decode and state restoration.
    CheckpointRestore,
}

impl Phase {
    /// Number of phases (the fixed accumulator-table size).
    pub const COUNT: usize = 15;

    /// Every phase, in index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::KernelPop,
        Phase::BatchAssembly,
        Phase::HbmTiming,
        Phase::BatchDrain,
        Phase::Dispatch,
        Phase::TelemetryExport,
        Phase::ShardBusy,
        Phase::ShardSend,
        Phase::ChannelRecv,
        Phase::SerialReplay,
        Phase::FrameDecode,
        Phase::Staging,
        Phase::MergeReplay,
        Phase::CheckpointSave,
        Phase::CheckpointRestore,
    ];

    /// Stable snake_case name, used as the record map key and the
    /// Prometheus `phase` label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::KernelPop => "kernel_pop",
            Phase::BatchAssembly => "batch_assembly",
            Phase::HbmTiming => "hbm_timing",
            Phase::BatchDrain => "batch_drain",
            Phase::Dispatch => "dispatch",
            Phase::TelemetryExport => "telemetry_export",
            Phase::ShardBusy => "shard_busy",
            Phase::ShardSend => "shard_send",
            Phase::ChannelRecv => "channel_recv",
            Phase::SerialReplay => "serial_replay",
            Phase::FrameDecode => "frame_decode",
            Phase::Staging => "staging",
            Phase::MergeReplay => "merge_replay",
            Phase::CheckpointSave => "checkpoint_save",
            Phase::CheckpointRestore => "checkpoint_restore",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated time and span count for one phase within one record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Wall-clock nanoseconds accumulated.
    pub ns: u64,
    /// Number of spans that contributed.
    pub count: u64,
}

/// Fixed-size per-phase accumulator: two `u64` arrays indexed by
/// [`Phase`], plus the wall-clock instant of the last flush. Recording
/// never allocates; flushing produces one [`ProfileRecord`].
///
/// Double-entry is impossible by construction: spans are recorded
/// either through the borrow-exclusive [`PhaseAcc::scope`] guard or
/// through explicit `add_since` laps whose start instants are taken
/// *after* the previous span ended — the phase-accounting proptest
/// checks that summed phase time never exceeds the record's wall time.
#[derive(Debug)]
pub struct PhaseAcc {
    ns: [u64; Phase::COUNT],
    count: [u64; Phase::COUNT],
    started: Instant,
}

impl Default for PhaseAcc {
    fn default() -> Self {
        PhaseAcc::new()
    }
}

impl PhaseAcc {
    /// A zeroed accumulator whose wall clock starts now.
    pub fn new() -> Self {
        PhaseAcc {
            ns: [0; Phase::COUNT],
            count: [0; Phase::COUNT],
            started: Instant::now(),
        }
    }

    /// Time a scope: the returned guard attributes its lifetime to
    /// `phase` on drop. The `&mut` borrow makes overlapping scopes a
    /// compile error — no phase can be double-counted.
    pub fn scope(&mut self, phase: Phase) -> PhaseScope<'_> {
        PhaseScope {
            t0: Instant::now(),
            acc: self,
            phase,
        }
    }

    /// Attribute the time since `t0` to `phase` (one span).
    #[inline]
    pub fn add_since(&mut self, phase: Phase, t0: Instant) {
        self.add_ns_n(phase, duration_ns(t0, Instant::now()), 1);
    }

    /// Attribute externally measured nanoseconds (`n` spans) to
    /// `phase` — for time accumulated on another thread or in a
    /// structure that cannot hold the accumulator.
    #[inline]
    pub fn add_ns_n(&mut self, phase: Phase, ns: u64, n: u64) {
        let i = phase.index();
        self.ns[i] += ns;
        self.count[i] += n;
    }

    /// True when no span was recorded since the last flush.
    pub fn is_idle(&self) -> bool {
        self.count.iter().all(|&c| c == 0)
    }

    /// Close the accumulation window: produce a record carrying every
    /// phase with at least one span, stamped with the wall time since
    /// the last flush (or construction), then reset.
    pub fn flush(&mut self, source: &str, epoch: u64) -> ProfileRecord {
        let now = Instant::now();
        let wall_ns = duration_ns(self.started, now);
        let mut phases = BTreeMap::new();
        for p in Phase::ALL {
            let i = p.index();
            if self.count[i] > 0 {
                phases.insert(
                    p.name().to_string(),
                    PhaseSample {
                        ns: self.ns[i],
                        count: self.count[i],
                    },
                );
            }
        }
        self.ns = [0; Phase::COUNT];
        self.count = [0; Phase::COUNT];
        self.started = now;
        ProfileRecord {
            source: source.to_string(),
            epoch,
            wall_ns,
            phases,
        }
    }
}

#[inline]
fn duration_ns(t0: Instant, t1: Instant) -> u64 {
    u64::try_from(t1.saturating_duration_since(t0).as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard from [`PhaseAcc::scope`]: attributes its lifetime to the
/// phase on drop.
pub struct PhaseScope<'a> {
    acc: &'a mut PhaseAcc,
    phase: Phase,
    t0: Instant,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.acc.add_since(self.phase, self.t0);
    }
}

/// One flushed accumulation window (normally one telemetry epoch) of
/// one source. Serialized onto the profile stream as the `data` field
/// of a `{"record":"profile", ...}` JSONL line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Who measured: `engine`, `shard03`, `collect`, `w1/engine`, ...
    pub source: String,
    /// Flush sequence number; aligned with telemetry epoch indices when
    /// the run streams live epochs.
    pub epoch: u64,
    /// Wall-clock nanoseconds covered by this window.
    pub wall_ns: u64,
    /// Per-phase accumulations, keyed by [`Phase::name`]; phases with
    /// zero spans are omitted.
    pub phases: BTreeMap<String, PhaseSample>,
}

struct HubInner {
    out: Option<Box<dyn Write + Send>>,
    /// Cumulative per-source, per-phase totals for Prometheus.
    totals: BTreeMap<String, BTreeMap<&'static str, PhaseSample>>,
    /// Records accepted, per source.
    records: BTreeMap<String, u64>,
    /// Most recent records, for the flight recorder.
    ring: VecDeque<ProfileRecord>,
    ring_cap: usize,
    /// Output-stream write failures (the profile stream is best-effort:
    /// a full disk must not kill the simulation it is observing).
    write_errors: u64,
}

/// The collection point for profile records from every instrumented
/// component: engines, shard workers, the fleet collector, checkpoint
/// paths. Cloning shares the hub (it is an `Arc` around the state), so
/// one hub can fan in from worker threads.
///
/// A hub does three things with each record: writes it as a JSONL line
/// to the attached output stream (if any), folds it into cumulative
/// per-source/per-phase totals for the `ripsim_profile_*` Prometheus
/// families, and keeps it in a bounded recent-records ring for the
/// flight recorder.
#[derive(Clone)]
pub struct ProfileHub {
    inner: Arc<Mutex<HubInner>>,
}

impl Default for ProfileHub {
    fn default() -> Self {
        ProfileHub::new()
    }
}

impl ProfileHub {
    /// A hub with no output stream and a 64-record ring.
    pub fn new() -> Self {
        ProfileHub {
            inner: Arc::new(Mutex::new(HubInner {
                out: None,
                totals: BTreeMap::new(),
                records: BTreeMap::new(),
                ring: VecDeque::new(),
                ring_cap: 64,
                write_errors: 0,
            })),
        }
    }

    /// Survive a poisoned lock: a panicking instrumented thread must
    /// not stop the flight recorder from reading the ring post-mortem.
    fn lock(&self) -> MutexGuard<'_, HubInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attach the JSONL output stream (e.g. stderr or a file). Records
    /// seen before this call still count in totals and the ring.
    pub fn set_output(&self, out: Box<dyn Write + Send>) {
        self.lock().out = Some(out);
    }

    /// Accept one record: write, fold into totals, push onto the ring.
    pub fn record(&self, rec: ProfileRecord) {
        let mut inner = self.lock();
        if inner.out.is_some() {
            let line = serde_json::to_string(&rec)
                .map(|data| format!("{{\"record\":\"profile\",\"data\":{data}}}\n"));
            match line {
                Ok(line) => {
                    let out = inner.out.as_mut().expect("checked above");
                    if out.write_all(line.as_bytes()).is_err() {
                        inner.write_errors += 1;
                    }
                }
                Err(_) => inner.write_errors += 1,
            }
        }
        let by_phase = inner.totals.entry(rec.source.clone()).or_default();
        for (name, sample) in &rec.phases {
            // Map the string key back to the static phase name so the
            // totals table never allocates per record for known phases.
            if let Some(p) = Phase::ALL.iter().find(|p| p.name() == name.as_str()) {
                let t = by_phase.entry(p.name()).or_default();
                t.ns += sample.ns;
                t.count += sample.count;
            }
        }
        *inner.records.entry(rec.source.clone()).or_insert(0) += 1;
        if inner.ring.len() == inner.ring_cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(rec);
    }

    /// Records accepted so far, across all sources.
    pub fn records_total(&self) -> u64 {
        self.lock().records.values().sum()
    }

    /// Output-stream write failures so far.
    pub fn write_errors(&self) -> u64 {
        self.lock().write_errors
    }

    /// The most recent records (oldest first), for post-mortem dumps.
    pub fn recent(&self) -> Vec<ProfileRecord> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Flush the attached output stream.
    pub fn flush_output(&self) {
        let mut inner = self.lock();
        if let Some(out) = inner.out.as_mut() {
            if out.flush().is_err() {
                inner.write_errors += 1;
            }
        }
    }

    /// Render the cumulative totals as Prometheus exposition text:
    /// `<prefix>_profile_phase_seconds_total{source,phase}`,
    /// `<prefix>_profile_phase_events_total{source,phase}` and
    /// `<prefix>_profile_records_total{source}` counters. `prefix` must
    /// be a valid metric-name prefix (e.g. `ripsim`); sources and phase
    /// names are emitted verbatim (they are internal identifiers, never
    /// attacker-controlled).
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let inner = self.lock();
        let mut out = String::new();
        if inner.records.is_empty() {
            return out;
        }
        out.push_str(&format!(
            "# HELP {prefix}_profile_phase_seconds_total Wall-clock seconds the simulator spent in each profiled phase (counter)\n\
             # TYPE {prefix}_profile_phase_seconds_total counter\n"
        ));
        for (source, phases) in &inner.totals {
            for (phase, s) in phases {
                out.push_str(&format!(
                    "{prefix}_profile_phase_seconds_total{{source=\"{source}\",phase=\"{phase}\"}} {:.9}\n",
                    s.ns as f64 / 1e9
                ));
            }
        }
        out.push_str(&format!(
            "# HELP {prefix}_profile_phase_events_total Spans attributed to each profiled phase (counter)\n\
             # TYPE {prefix}_profile_phase_events_total counter\n"
        ));
        for (source, phases) in &inner.totals {
            for (phase, s) in phases {
                out.push_str(&format!(
                    "{prefix}_profile_phase_events_total{{source=\"{source}\",phase=\"{phase}\"}} {}\n",
                    s.count
                ));
            }
        }
        out.push_str(&format!(
            "# HELP {prefix}_profile_records_total Profile records accepted per source (counter)\n\
             # TYPE {prefix}_profile_records_total counter\n"
        ));
        for (source, n) in &inner.records {
            out.push_str(&format!(
                "{prefix}_profile_records_total{{source=\"{source}\"}} {n}\n"
            ));
        }
        out
    }
}

/// A [`PhaseAcc`] bound to a hub and a source name, flushing one
/// record per telemetry epoch. This is what instrumented components
/// hold (`Option<EngineProfiler>` — `None` means profiling off and the
/// hot paths never read the clock).
pub struct EngineProfiler {
    acc: PhaseAcc,
    hub: ProfileHub,
    source: String,
    next_epoch: u64,
    /// Calls into [`prof_now_sampled`] since binding — drives the
    /// 1-in-[`SAMPLE_STRIDE`] hot-path sample.
    tick: u64,
}

impl EngineProfiler {
    /// Bind a fresh accumulator for `source` to `hub`.
    pub fn new(hub: ProfileHub, source: &str) -> Self {
        EngineProfiler {
            acc: PhaseAcc::new(),
            hub,
            source: source.to_string(),
            next_epoch: 0,
            tick: 0,
        }
    }

    /// The shared hub (to bind sibling profilers, e.g. shard workers).
    pub fn hub(&self) -> &ProfileHub {
        &self.hub
    }

    /// The raw accumulator, for bulk `add_ns_n` attribution.
    pub fn acc_mut(&mut self) -> &mut PhaseAcc {
        &mut self.acc
    }

    /// Close the current window and send its record to the hub.
    pub fn flush(&mut self) {
        let rec = self.acc.flush(&self.source, self.next_epoch);
        self.next_epoch += 1;
        self.hub.record(rec);
    }

    /// [`EngineProfiler::flush`], skipped when nothing was recorded —
    /// the end-of-run catch-all that avoids empty trailing records.
    pub fn flush_nonempty(&mut self) {
        if !self.acc.is_idle() {
            self.flush();
        }
    }
}

/// Start a lap timer iff a profiler is attached — the profiling-off hot
/// path is one `Option` discriminant check, zero clock reads.
#[inline]
pub fn prof_now(p: &Option<EngineProfiler>) -> Option<Instant> {
    p.as_ref().map(|_| Instant::now())
}

/// Per-event lap starters sample one loop iteration in this many.
pub const SAMPLE_STRIDE: u64 = 64;

/// Start a *sampled* lap timer: reads the clock on one call in
/// [`SAMPLE_STRIDE`], and only when a profiler is attached. Per-event
/// instrumentation in the engine hot loops must use this — an
/// unconditional monotonic-clock read per simulated event costs
/// several times the <3% overhead budget — so hot-phase `ns` and
/// `count` are a systematic 1-in-64 sample: relative weight between
/// phases and per-span means are unbiased, absolute totals are ~1/64
/// of the true time. Coarse spans (epoch export, checkpoints, fleet
/// framing) keep using [`prof_now`] and are exact.
#[inline]
pub fn prof_now_sampled(p: &mut Option<EngineProfiler>) -> Option<Instant> {
    match p.as_mut() {
        Some(prof) => {
            prof.tick = prof.tick.wrapping_add(1);
            if prof.tick.is_multiple_of(SAMPLE_STRIDE) {
                Some(Instant::now())
            } else {
                None
            }
        }
        None => None,
    }
}

/// Restart a lap *within* an iteration already admitted by
/// [`prof_now_sampled`]: reads the clock iff the previous lap was
/// sampled, without touching the sample counter — so one iteration
/// makes exactly one sampling decision however many laps it chains.
#[inline]
pub fn prof_renew(prev: Option<Instant>) -> Option<Instant> {
    prev.map(|_| Instant::now())
}

/// Attribute the time since `t0` to `phase` (no-op when off).
#[inline]
pub fn prof_add(p: &mut Option<EngineProfiler>, phase: Phase, t0: Option<Instant>) {
    if let (Some(prof), Some(t0)) = (p.as_mut(), t0) {
        prof.acc.add_since(phase, t0);
    }
}

/// Attribute the time since `*t0` to `phase` and restart the lap at
/// now, so consecutive loop sections chain without gaps or overlap.
#[inline]
pub fn prof_lap(p: &mut Option<EngineProfiler>, phase: Phase, t0: &mut Option<Instant>) {
    if let (Some(prof), Some(start)) = (p.as_mut(), *t0) {
        let now = Instant::now();
        prof.acc.add_ns_n(phase, duration_ns(start, now), 1);
        *t0 = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        v.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    #[test]
    fn phase_table_is_complete_and_names_unique() {
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT, "phase names must be unique");
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL must be in index order");
        }
    }

    #[test]
    fn scoped_spans_accumulate_and_flush_resets() {
        let mut acc = PhaseAcc::new();
        {
            let _s = acc.scope(Phase::KernelPop);
        }
        acc.add_ns_n(Phase::ChannelRecv, 1234, 2);
        assert!(!acc.is_idle());
        let rec = acc.flush("engine", 0);
        assert_eq!(rec.source, "engine");
        assert_eq!(rec.epoch, 0);
        assert_eq!(rec.phases["kernel_pop"].count, 1);
        assert_eq!(rec.phases["channel_recv"].ns, 1234);
        assert_eq!(rec.phases["channel_recv"].count, 2);
        assert!(acc.is_idle(), "flush must reset the accumulator");
        let empty = acc.flush("engine", 1);
        assert!(empty.phases.is_empty());
    }

    #[test]
    fn phase_sum_never_exceeds_wall_time() {
        let mut acc = PhaseAcc::new();
        for _ in 0..100 {
            let _a = acc.scope(Phase::BatchAssembly);
        }
        for _ in 0..100 {
            let _b = acc.scope(Phase::HbmTiming);
        }
        let rec = acc.flush("engine", 0);
        let sum: u64 = rec.phases.values().map(|s| s.ns).sum();
        assert!(
            sum <= rec.wall_ns,
            "disjoint scopes must sum to at most the wall time ({sum} > {})",
            rec.wall_ns
        );
    }

    #[test]
    fn record_round_trips_through_serde() {
        let mut acc = PhaseAcc::new();
        acc.add_ns_n(Phase::FrameDecode, 55, 3);
        let rec = acc.flush("collect", 7);
        let json = serde_json::to_string(&rec).unwrap();
        let back: ProfileRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn hub_totals_ring_and_exposition() {
        let hub = ProfileHub::new();
        let mut prof = EngineProfiler::new(hub.clone(), "engine");
        prof.acc_mut().add_ns_n(Phase::KernelPop, 1_000_000_000, 4);
        prof.flush();
        prof.acc_mut().add_ns_n(Phase::KernelPop, 500_000_000, 1);
        prof.flush();
        assert_eq!(hub.records_total(), 2);
        let recent = hub.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[1].epoch, 1);
        let text = hub.render_prometheus("ripsim");
        assert!(text.contains(
            "ripsim_profile_phase_seconds_total{source=\"engine\",phase=\"kernel_pop\"} 1.500000000"
        ));
        assert!(text.contains(
            "ripsim_profile_phase_events_total{source=\"engine\",phase=\"kernel_pop\"} 5"
        ));
        assert!(text.contains("ripsim_profile_records_total{source=\"engine\"} 2"));
        // One HELP/TYPE per family.
        assert_eq!(
            text.matches("# TYPE ripsim_profile_phase_seconds_total")
                .count(),
            1
        );
    }

    #[test]
    fn hub_output_stream_carries_profile_lines() {
        // A Vec<u8> behind the writer via a small adapter.
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let bytes: Arc<Mutex<Vec<u8>>> = Arc::default();
        let hub = ProfileHub::new();
        hub.set_output(Box::new(Buf(bytes.clone())));
        let mut acc = PhaseAcc::new();
        acc.add_ns_n(Phase::Staging, 10, 1);
        hub.record(acc.flush("collect", 0));
        hub.flush_output();
        let text = String::from_utf8(bytes.lock().unwrap().clone()).unwrap();
        let line = text.lines().next().unwrap();
        let v: Value = serde_json::parse(line).unwrap();
        assert_eq!(get(&v, "record").and_then(Value::as_str), Some("profile"));
        use serde::Deserialize;
        let rec = ProfileRecord::from_value(get(&v, "data").unwrap()).unwrap();
        assert_eq!(rec.source, "collect");
        assert_eq!(rec.phases["staging"].ns, 10);
        assert_eq!(hub.write_errors(), 0);
    }
}
