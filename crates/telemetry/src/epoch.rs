//! Epoch snapshot/delta support for live telemetry streaming.
//!
//! A run is divided into fixed-period epochs by [`EpochClock`], driven
//! purely by [`SimTime`] (integer picoseconds) — never wall-clock — so
//! the epoch boundaries, and therefore the emitted stream, are
//! byte-identical across same-seed runs. At each boundary the engine
//! takes a [`Snapshot`] of its registry and emits the
//! [`EpochDelta`] against the previous snapshot.
//!
//! The delta algebra is designed so that deltas are *mergeable*:
//!
//! * `delta(a, b) ⊕ delta(b, c) == delta(a, c)` (associative merge),
//! * replaying every epoch delta of a run, in order, onto an empty
//!   registry reconstructs the final registry byte-identically
//!   ([`crate::MetricsRegistry::apply_delta`]).
//!
//! Three representation rules make that work:
//!
//! * **counters** carry increments (`new - old`), omitted when zero —
//!   except a counter's *first appearance*, which is always emitted
//!   (even at zero) so the replay creates the key and reconstruction
//!   stays byte-exact for registries that pre-register zero counters;
//! * **histograms** carry count/reject/bucket increments but keep the
//!   *newer cumulative* min/max — cumulative min is non-increasing and
//!   max non-decreasing, so min-of-min / max-of-max merging always
//!   resolves to the later epoch's values;
//! * **gauges** carry the cumulative last-written value, omitted when
//!   unchanged; merging lets the later epoch overwrite unconditionally
//!   (last-writer-wins in epoch order, *not* the `(at, value)`
//!   comparison used for cross-plane merges, which is not associative
//!   when a gauge is rewritten at the same sim time).

use std::collections::BTreeMap;

use rip_units::{SimTime, TimeDelta};
use serde::{Deserialize, Serialize};

use crate::{Gauge, LogHistogram, MetricsRegistry};

/// A frozen copy of a [`MetricsRegistry`] stamped with the sim time it
/// was taken at. Produced by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    at: SimTime,
    registry: MetricsRegistry,
}

impl Snapshot {
    pub(crate) fn new(at: SimTime, registry: MetricsRegistry) -> Self {
        Snapshot { at, registry }
    }

    /// The empty snapshot at sim time zero — the `prev` seed for the
    /// first epoch of a run.
    pub fn empty() -> Self {
        Snapshot {
            at: SimTime::ZERO,
            registry: MetricsRegistry::new(),
        }
    }

    /// Sim time the snapshot was taken at.
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// The frozen registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The delta from an earlier snapshot `prev` of the *same* registry
    /// to this one. Metrics that did not change are omitted, so an idle
    /// epoch serializes small.
    pub fn delta_since(&self, prev: &Snapshot) -> EpochDelta {
        let mut counters = BTreeMap::new();
        for (name, &v) in &self.registry.counters {
            match prev.registry.counters.get(name) {
                Some(&before) => {
                    debug_assert!(v >= before, "counter {name} went backwards");
                    if v > before {
                        counters.insert(name.clone(), v - before);
                    }
                }
                // First appearance: emit even a zero value so replaying
                // the delta creates the key.
                None => {
                    counters.insert(name.clone(), v);
                }
            }
        }
        let mut gauges = BTreeMap::new();
        for (name, &g) in &self.registry.gauges {
            if prev.registry.gauge(name) != Some(g) {
                gauges.insert(name.clone(), g);
            }
        }
        let mut histograms = BTreeMap::new();
        for (name, h) in &self.registry.histograms {
            match prev.registry.histogram(name) {
                // A cumulative histogram only changes by absorbing a
                // sample, which always bumps `count` or `rejected`, so
                // equal totals mean an identical histogram — no need to
                // compare the bucket vectors on every idle epoch.
                Some(p) if p.count == h.count && p.rejected == h.rejected => {}
                Some(p) => {
                    histograms.insert(name.clone(), h.diff_since(p));
                }
                None => {
                    histograms.insert(name.clone(), h.clone());
                }
            }
        }
        EpochDelta {
            from: prev.at,
            to: self.at,
            counters,
            gauges,
            histograms,
        }
    }
}

/// The change in a registry over one epoch `[from, to)`.
///
/// All three maps are `BTreeMap`-keyed, so serialization order is the
/// lexicographic name order — a requirement for the byte-identical
/// stream comparison in CI. See the module docs for the merge algebra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochDelta {
    from: SimTime,
    to: SimTime,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl EpochDelta {
    /// Start of the covered interval (inclusive).
    pub fn from(&self) -> SimTime {
        self.from
    }

    /// End of the covered interval (exclusive).
    pub fn to(&self) -> SimTime {
        self.to
    }

    /// Counter increments over the epoch (zero increments omitted).
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Gauges rewritten during the epoch, as cumulative values.
    pub fn gauges(&self) -> &BTreeMap<String, Gauge> {
        &self.gauges
    }

    /// Histogram increments over the epoch (see module docs for the
    /// min/max convention).
    pub fn histograms(&self) -> &BTreeMap<String, LogHistogram> {
        &self.histograms
    }

    /// True when the epoch saw no metric change at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold a chronologically *later* delta into this one, so that
    /// `delta(a, b) ⊕ delta(b, c) == delta(a, c)`: counters add,
    /// histograms add bucket-wise (min/max resolving to the later
    /// epoch's cumulative values), and later gauges overwrite.
    pub fn merge(&mut self, later: &EpochDelta) {
        debug_assert!(later.from >= self.from, "merge must be chronological");
        for (name, &v) in &later.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &later.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, &g) in &later.gauges {
            self.gauges.insert(name.clone(), g);
        }
        self.to = later.to;
    }
}

/// Deterministic fixed-period epoch boundary generator.
///
/// Epoch `e` covers `[e·P, (e+1)·P)` in sim time: an event stamped
/// exactly at a boundary belongs to the *next* epoch, so engines flush
/// epoch `e` as soon as the next event time reaches
/// [`EpochClock::next_boundary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochClock {
    period_ps: u64,
    epoch: u64,
}

impl EpochClock {
    /// A clock with the given period. Panics on a zero period — a
    /// zero-length epoch would flush forever without advancing.
    pub fn new(period: TimeDelta) -> Self {
        assert!(!period.is_zero(), "epoch period must be non-zero");
        EpochClock {
            period_ps: period.as_ps(),
            epoch: 0,
        }
    }

    /// The fixed epoch period.
    pub fn period(&self) -> TimeDelta {
        TimeDelta::from_ps(self.period_ps)
    }

    /// Index of the epoch currently accumulating.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Start of the epoch currently accumulating.
    pub fn epoch_start(&self) -> SimTime {
        SimTime::from_ps(self.epoch.saturating_mul(self.period_ps))
    }

    /// First sim time that no longer belongs to the current epoch.
    pub fn next_boundary(&self) -> SimTime {
        SimTime::from_ps((self.epoch + 1).saturating_mul(self.period_ps))
    }

    /// Close the current epoch and move to the next; returns the closed
    /// epoch's `(index, start, end)`.
    pub fn advance(&mut self) -> (u64, SimTime, SimTime) {
        let index = self.epoch;
        let from = self.epoch_start();
        let to = self.next_boundary();
        self.epoch += 1;
        (index, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn clock_boundaries_are_exact_multiples() {
        let mut c = EpochClock::new(TimeDelta::from_ns(100));
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.next_boundary(), t(100));
        let (e, from, to) = c.advance();
        assert_eq!((e, from, to), (0, t(0), t(100)));
        assert_eq!(c.epoch_start(), t(100));
        assert_eq!(c.next_boundary(), t(200));
    }

    #[test]
    fn delta_omits_unchanged_metrics() {
        let mut r = MetricsRegistry::new();
        r.inc("a", 5);
        r.inc("b", 1);
        r.set_gauge("g", t(10), 2.0);
        r.observe("h", 3.0);
        let s1 = r.snapshot(t(100));
        r.inc("a", 2);
        let s2 = r.snapshot(t(200));
        let d = s2.delta_since(&s1);
        assert_eq!(d.from(), t(100));
        assert_eq!(d.to(), t(200));
        assert_eq!(d.counters().len(), 1);
        assert_eq!(d.counters()["a"], 2);
        assert!(d.gauges().is_empty());
        assert!(d.histograms().is_empty());
    }

    #[test]
    fn delta_merge_equals_spanning_delta() {
        let mut r = MetricsRegistry::new();
        let a = r.snapshot(t(0));
        r.inc("pkts", 3);
        r.observe("lat", 4.0);
        r.set_gauge("depth", t(50), 1.0);
        let b = r.snapshot(t(100));
        r.inc("pkts", 2);
        r.observe("lat", 9.0);
        r.observe("lat", f64::NAN);
        r.set_gauge("depth", t(150), 0.5);
        let c = r.snapshot(t(200));

        let mut ab = b.delta_since(&a);
        let bc = c.delta_since(&b);
        let ac = c.delta_since(&a);
        ab.merge(&bc);
        assert_eq!(ab, ac);
    }

    #[test]
    fn replaying_deltas_reconstructs_registry() {
        let mut r = MetricsRegistry::new();
        let mut prev = Snapshot::empty();
        let mut rebuilt = MetricsRegistry::new();
        for i in 1..=5u64 {
            r.inc("pkts", i);
            r.observe("lat", 10.0 / i as f64);
            r.set_gauge("depth", t(i * 10), i as f64);
            let snap = r.snapshot(t(i * 100));
            rebuilt.apply_delta(&snap.delta_since(&prev));
            prev = snap;
        }
        assert_eq!(rebuilt, r);
        assert_eq!(
            serde_json::to_string(&rebuilt).unwrap(),
            serde_json::to_string(&r).unwrap()
        );
    }
}
