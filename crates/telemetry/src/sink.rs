//! Telemetry sinks: where live epoch deltas and span events go.
//!
//! Engines push three kinds of records into a [`TelemetrySink`] while
//! they run: per-epoch registry deltas, sampled packet-lifecycle span
//! events, and one terminal `run_end` carrying the final cumulative
//! registry. Everything a sink receives is derived from sim time and
//! seeded state only, so any sink that serializes records in arrival
//! order produces a byte-identical stream across same-seed runs.
//!
//! Provided sinks:
//!
//! * [`JsonlSink`] — one JSON object per line, the format diffed
//!   byte-for-byte by CI;
//! * [`PrometheusSink`] — accumulates deltas and renders a
//!   Prometheus-style text exposition at `run_end`;
//! * [`MemorySink`] — buffers records for tests and for replay;
//! * [`SharedSink`] — a clonable, thread-safe handle over a
//!   [`MemorySink`], used by per-plane worker threads whose buffered
//!   records are replayed into the caller's sink in plane order.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

use rip_units::SimTime;
use serde::Serialize;

use crate::{bucket_upper_edge, EpochDelta, MetricsRegistry};

/// One sampled packet-lifecycle event: packet `packet` reached `stage`
/// at sim time `at` on port `port` (input port for arrival-side stages,
/// output port afterwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SpanEvent {
    /// Packet id (unique within a run, per plane).
    pub packet: u64,
    /// Lifecycle stage, e.g. `"arrival"`, `"sram_enqueue"`,
    /// `"hbm_write"`, `"hbm_read"`, `"hbm_bypass"`, `"departure"`.
    pub stage: &'static str,
    /// Sim time the packet reached the stage.
    pub at: SimTime,
    /// Port the stage happened on.
    pub port: usize,
}

/// Receiver for live telemetry records. All methods take `&mut self`;
/// engines own their sink (or a clonable handle) for the duration of a
/// run.
pub trait TelemetrySink {
    /// One closed epoch from registry `source`.
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta);

    /// One sampled packet-lifecycle event from `source`.
    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        let _ = (source, span);
    }

    /// The run finished at sim time `at`; `totals` is the final
    /// cumulative registry (what the end-of-run report serializes).
    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        let _ = (source, at, totals);
    }
}

/// Deterministic JSONL exporter: one compact JSON object per record,
/// one record per line, flushed on drop. Two same-seed runs produce
/// byte-identical streams (all maps are `BTreeMap`-ordered, all
/// timestamps sim time).
pub struct JsonlSink<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, records: 0 }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) {
        self.out.flush().expect("telemetry sink flush");
    }

    // The vendored serde_derive cannot derive on lifetime-generic
    // structs, so record lines are composed from individually
    // serialized parts (each part is itself serde-serialized, so
    // escaping and map ordering stay correct).
    fn write_line(&mut self, line: &str) {
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .expect("telemetry sink write");
        self.records += 1;
    }
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serializes")
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        let line = format!(
            "{{\"record\":\"epoch\",\"source\":{},\"epoch\":{},\"delta\":{}}}",
            json_str(source),
            epoch,
            serde_json::to_string(delta).expect("delta serializes"),
        );
        self.write_line(&line);
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        let line = format!(
            "{{\"record\":\"span\",\"source\":{},\"packet\":{},\"stage\":{},\"t_ps\":{},\"port\":{}}}",
            json_str(source),
            span.packet,
            json_str(span.stage),
            span.at.as_ps(),
            span.port,
        );
        self.write_line(&line);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        let line = format!(
            "{{\"record\":\"run_end\",\"source\":{},\"t_ps\":{},\"records\":{},\"totals\":{}}}",
            json_str(source),
            at.as_ps(),
            self.records,
            serde_json::to_string(totals).expect("registry serializes"),
        );
        self.write_line(&line);
        self.flush();
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best-effort: never panic in drop (the run may already be
        // unwinding).
        let _ = self.out.flush();
    }
}

/// Prometheus-style text exposition writer.
///
/// Epoch deltas are accumulated into one cumulative registry per
/// source; the exposition text is rendered (and written) when the
/// source's `run_end` arrives. Metric names are sanitized to
/// `[a-zA-Z0-9_]` and prefixed `rip_`; the source becomes a
/// `source="..."` label, so per-plane registries share metric families.
pub struct PrometheusSink<W: Write> {
    out: W,
    cumulative: BTreeMap<String, MetricsRegistry>,
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl<W: Write> PrometheusSink<W> {
    /// A sink rendering to `out` at each source's `run_end`.
    pub fn new(out: W) -> Self {
        PrometheusSink {
            out,
            cumulative: BTreeMap::new(),
        }
    }

    /// Render one source's cumulative registry as exposition text.
    fn render(source: &str, reg: &MetricsRegistry, out: &mut W) -> std::io::Result<()> {
        for (name, &v) in reg.counters() {
            let n = sanitize(name);
            writeln!(out, "# TYPE rip_{n} counter")?;
            writeln!(out, "rip_{n}_total{{source=\"{source}\"}} {v}")?;
        }
        for (name, g) in reg.gauges() {
            let n = sanitize(name);
            writeln!(out, "# TYPE rip_{n} gauge")?;
            writeln!(out, "rip_{n}{{source=\"{source}\"}} {}", g.value)?;
        }
        for (name, h) in reg.histograms() {
            let n = sanitize(name);
            writeln!(out, "# TYPE rip_{n} histogram")?;
            let mut cum = 0u64;
            for &(idx, count) in &h.buckets {
                cum += count;
                let le = bucket_upper_edge(idx);
                if le.is_finite() {
                    writeln!(
                        out,
                        "rip_{n}_bucket{{source=\"{source}\",le=\"{le}\"}} {cum}"
                    )?;
                } else {
                    writeln!(
                        out,
                        "rip_{n}_bucket{{source=\"{source}\",le=\"+Inf\"}} {cum}"
                    )?;
                }
            }
            writeln!(
                out,
                "rip_{n}_bucket{{source=\"{source}\",le=\"+Inf\"}} {}",
                h.count()
            )?;
            writeln!(out, "rip_{n}_count{{source=\"{source}\"}} {}", h.count())?;
            if h.rejected() > 0 {
                writeln!(
                    out,
                    "rip_{n}_rejected{{source=\"{source}\"}} {}",
                    h.rejected()
                )?;
            }
        }
        Ok(())
    }
}

impl<W: Write> TelemetrySink for PrometheusSink<W> {
    fn on_epoch(&mut self, source: &str, _epoch: u64, delta: &EpochDelta) {
        self.cumulative
            .entry(source.to_string())
            .or_default()
            .apply_delta(delta);
    }

    fn on_run_end(&mut self, source: &str, _at: SimTime, totals: &MetricsRegistry) {
        // `totals` is authoritative (it includes report-time
        // aggregates); prefer it over the replayed deltas.
        self.cumulative.insert(source.to_string(), totals.clone());
        let reg = self.cumulative.get(source).expect("just inserted").clone();
        Self::render(source, &reg, &mut self.out).expect("telemetry sink write");
        self.out.flush().expect("telemetry sink flush");
    }
}

/// One buffered record, as received by a [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub enum SinkRecord {
    /// A closed epoch delta.
    Epoch {
        /// Registry the epoch came from.
        source: String,
        /// Epoch index.
        epoch: u64,
        /// The delta.
        delta: EpochDelta,
    },
    /// A sampled lifecycle event.
    Span {
        /// Registry the span came from.
        source: String,
        /// The event.
        span: SpanEvent,
    },
    /// End of a source's run.
    RunEnd {
        /// Registry that finished.
        source: String,
        /// Sim time of the end of the run.
        at: SimTime,
        /// Final cumulative registry.
        totals: MetricsRegistry,
    },
}

/// Buffers every record in arrival order — for tests, and as the
/// per-plane staging buffer whose contents are replayed into the real
/// sink in deterministic plane order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    records: Vec<SinkRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The buffered records, in arrival order.
    pub fn records(&self) -> &[SinkRecord] {
        &self.records
    }

    /// Consume the sink, returning its records.
    pub fn into_records(self) -> Vec<SinkRecord> {
        self.records
    }

    /// Replay every buffered record into `sink`, preserving sources.
    pub fn replay_into(&self, sink: &mut dyn TelemetrySink) {
        for rec in &self.records {
            match rec {
                SinkRecord::Epoch {
                    source,
                    epoch,
                    delta,
                } => sink.on_epoch(source, *epoch, delta),
                SinkRecord::Span { source, span } => sink.on_span(source, span),
                SinkRecord::RunEnd { source, at, totals } => sink.on_run_end(source, *at, totals),
            }
        }
    }

    /// Replay every buffered record into `sink` under a new source
    /// name — how per-plane buffers become `plane00`, `plane01`, …
    /// streams in the caller's sink.
    pub fn replay_renamed(&self, source: &str, sink: &mut dyn TelemetrySink) {
        for rec in &self.records {
            match rec {
                SinkRecord::Epoch { epoch, delta, .. } => sink.on_epoch(source, *epoch, delta),
                SinkRecord::Span { span, .. } => sink.on_span(source, span),
                SinkRecord::RunEnd { at, totals, .. } => sink.on_run_end(source, *at, totals),
            }
        }
    }
}

impl TelemetrySink for MemorySink {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        self.records.push(SinkRecord::Epoch {
            source: source.to_string(),
            epoch,
            delta: delta.clone(),
        });
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        self.records.push(SinkRecord::Span {
            source: source.to_string(),
            span: *span,
        });
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        self.records.push(SinkRecord::RunEnd {
            source: source.to_string(),
            at,
            totals: totals.clone(),
        });
    }
}

/// A clonable, `Send` handle over a shared [`MemorySink`] — handed to
/// per-plane worker threads so each can record concurrently; the owner
/// [`SharedSink::take`]s the buffer back after joining.
#[derive(Debug, Clone, Default)]
pub struct SharedSink {
    inner: Arc<Mutex<MemorySink>>,
}

impl SharedSink {
    /// A fresh, empty shared sink.
    pub fn new() -> Self {
        SharedSink::default()
    }

    /// Take the buffered records out, leaving the sink empty.
    pub fn take(&self) -> MemorySink {
        std::mem::take(&mut *self.inner.lock().expect("telemetry sink lock"))
    }
}

impl TelemetrySink for SharedSink {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_epoch(source, epoch, delta);
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_span(source, span);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_run_end(source, at, totals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;

    #[test]
    fn jsonl_stream_is_deterministic_and_newline_terminated() {
        let mut reg = MetricsRegistry::new();
        let run = |reg: &mut MetricsRegistry| {
            let mut buf = Vec::new();
            {
                let mut sink = JsonlSink::new(&mut buf);
                let prev = reg.snapshot(SimTime::ZERO);
                reg.inc("pkts", 7);
                reg.observe("lat", 3.5);
                let snap = reg.snapshot(SimTime::from_ns(100));
                sink.on_epoch("switch", 0, &snap.delta_since(&prev));
                sink.on_span(
                    "switch",
                    &SpanEvent {
                        packet: 42,
                        stage: "arrival",
                        at: SimTime::from_ns(5),
                        port: 1,
                    },
                );
                sink.on_run_end("switch", SimTime::from_ns(100), reg);
                assert_eq!(sink.records(), 3);
            }
            buf
        };
        let a = run(&mut MetricsRegistry::new());
        let b = run(&mut reg);
        assert_eq!(a, b, "same inputs must stream byte-identically");
        let text = String::from_utf8(a).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
        assert!(text.starts_with("{\"record\":\"epoch\""));
        assert!(text.contains("\"record\":\"span\""));
        assert!(text.contains("\"record\":\"run_end\""));
    }

    #[test]
    fn prometheus_renders_counters_gauges_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.inc("switch.packets", 9);
        reg.set_gauge("queue.depth", SimTime::from_ns(10), 4.5);
        reg.observe("lat.ns", 100.0);
        reg.observe("lat.ns", 200.0);
        let mut buf = Vec::new();
        {
            let mut sink = PrometheusSink::new(&mut buf);
            sink.on_run_end("switch", SimTime::from_ns(10), &reg);
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("rip_switch_packets_total{source=\"switch\"} 9"));
        assert!(text.contains("rip_queue_depth{source=\"switch\"} 4.5"));
        assert!(text.contains("rip_lat_ns_count{source=\"switch\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn shared_sink_replays_renamed() {
        let shared = SharedSink::new();
        let mut handle = shared.clone();
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot(SimTime::from_ns(50));
        handle.on_epoch("switch", 0, &snap.delta_since(&Snapshot::empty()));
        handle.on_run_end("switch", SimTime::from_ns(50), &reg);
        let mem = shared.take();
        assert_eq!(mem.records().len(), 2);
        let mut renamed = MemorySink::new();
        mem.replay_renamed("plane00", &mut renamed);
        match &renamed.records()[0] {
            SinkRecord::Epoch { source, .. } => assert_eq!(source, "plane00"),
            other => panic!("unexpected record {other:?}"),
        }
    }
}
