//! Telemetry sinks: where live epoch deltas and span events go.
//!
//! Engines push four kinds of records into a [`TelemetrySink`] while
//! they run: per-epoch registry deltas, sampled packet-lifecycle span
//! events, watchdog alarms, and one terminal `run_end` carrying the
//! final cumulative registry. Everything a sink receives is derived
//! from sim time and seeded state only, so any sink that serializes
//! records in arrival order produces a byte-identical stream across
//! same-seed runs.
//!
//! Provided sinks:
//!
//! * [`JsonlSink`] — one JSON object per line, the format diffed
//!   byte-for-byte by CI;
//! * [`PrometheusSink`] — accumulates deltas and renders one
//!   grammar-valid Prometheus text exposition when finished (or
//!   dropped);
//! * [`MemorySink`] — buffers records for tests and for replay, with
//!   an optional ring capacity so soaks cannot grow it unboundedly;
//! * [`SharedSink`] — a clonable, thread-safe handle over a
//!   [`MemorySink`], used by per-plane worker threads whose buffered
//!   records are replayed into the caller's sink in plane order;
//! * [`FanoutSink`] — forwards every record to several sinks (e.g.
//!   stdout JSONL plus a [`crate::MetricsEndpoint`]).

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Arc, Mutex};

use rip_units::SimTime;
use serde::{DeError, Deserialize, Serialize, Value};

use crate::{bucket_upper_edge, EpochDelta, MetricsRegistry, WatchdogEvent};

/// One sampled packet-lifecycle event: packet `packet` reached `stage`
/// at sim time `at` on port `port` (input port for arrival-side stages,
/// output port afterwards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SpanEvent {
    /// Packet id (unique within a run, per plane).
    pub packet: u64,
    /// Lifecycle stage, e.g. `"arrival"`, `"sram_enqueue"`,
    /// `"hbm_write"`, `"hbm_read"`, `"hbm_bypass"`, `"departure"`.
    pub stage: &'static str,
    /// Sim time the packet reached the stage.
    pub at: SimTime,
    /// Port the stage happened on.
    pub port: usize,
}

/// Every lifecycle stage an engine can emit. Stage labels are
/// `&'static str` so spans stay `Copy` and allocation-free on the hot
/// path; snapshot restore maps a serialized stage string back onto the
/// static label through this table.
pub const SPAN_STAGES: &[&str] = &[
    "arrival",
    "input_drop",
    "sram_enqueue",
    "hbm_write",
    "hbm_read",
    "hbm_bypass",
    "frame_drop",
    "departure",
];

/// Resolve a serialized stage name to its interned `&'static str`, or
/// `None` for a stage no engine emits (a corrupt or foreign snapshot).
pub fn intern_stage(stage: &str) -> Option<&'static str> {
    SPAN_STAGES.iter().find(|&&s| s == stage).copied()
}

impl Deserialize for SpanEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        #[derive(Deserialize)]
        struct Mirror {
            packet: u64,
            stage: String,
            at: SimTime,
            port: usize,
        }
        let m = Mirror::from_value(v)?;
        let stage = intern_stage(&m.stage)
            .ok_or_else(|| DeError::custom(format!("unknown span stage {:?}", m.stage)))?;
        Ok(SpanEvent {
            packet: m.packet,
            stage,
            at: m.at,
            port: m.port,
        })
    }
}

/// Receiver for live telemetry records. All methods take `&mut self`;
/// engines own their sink (or a clonable handle) for the duration of a
/// run.
pub trait TelemetrySink {
    /// One closed epoch from registry `source`.
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta);

    /// One sampled packet-lifecycle event from `source`.
    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        let _ = (source, span);
    }

    /// A watchdog alarm raised while consuming `source`'s stream.
    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        let _ = (source, event);
    }

    /// The run finished at sim time `at`; `totals` is the final
    /// cumulative registry (what the end-of-run report serializes).
    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        let _ = (source, at, totals);
    }
}

/// Deterministic JSONL exporter: one compact JSON object per record,
/// one record per line, flushed on drop. Two same-seed runs produce
/// byte-identical streams (all maps are `BTreeMap`-ordered, all
/// timestamps sim time).
pub struct JsonlSink<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink { out, records: 0 }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Seed the record counter — used when resuming a checkpointed run,
    /// so the `records` field of the eventual `run_end` line counts the
    /// records of the whole logical run, not just the lines written
    /// since resume.
    pub fn set_records(&mut self, records: u64) {
        self.records = records;
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) {
        self.out.flush().expect("telemetry sink flush");
    }

    // The vendored serde_derive cannot derive on lifetime-generic
    // structs, so record lines are composed from individually
    // serialized parts (each part is itself serde-serialized, so
    // escaping and map ordering stay correct).
    fn write_line(&mut self, line: &str) {
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .expect("telemetry sink write");
        self.records += 1;
    }
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s.to_string()).expect("string serializes")
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        let line = format!(
            "{{\"record\":\"epoch\",\"source\":{},\"epoch\":{},\"delta\":{}}}",
            json_str(source),
            epoch,
            serde_json::to_string(delta).expect("delta serializes"),
        );
        self.write_line(&line);
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        let line = format!(
            "{{\"record\":\"span\",\"source\":{},\"packet\":{},\"stage\":{},\"t_ps\":{},\"port\":{}}}",
            json_str(source),
            span.packet,
            json_str(span.stage),
            span.at.as_ps(),
            span.port,
        );
        self.write_line(&line);
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        let line = format!(
            "{{\"record\":\"watchdog\",\"source\":{},\"epoch\":{},\"t_ps\":{},\"kind\":{}}}",
            json_str(source),
            event.epoch,
            event.at.as_ps(),
            serde_json::to_string(&event.kind).expect("watchdog kind serializes"),
        );
        self.write_line(&line);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        let line = format!(
            "{{\"record\":\"run_end\",\"source\":{},\"t_ps\":{},\"records\":{},\"totals\":{}}}",
            json_str(source),
            at.as_ps(),
            self.records,
            serde_json::to_string(totals).expect("registry serializes"),
        );
        self.write_line(&line);
        self.flush();
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best-effort: never panic in drop (the run may already be
        // unwinding).
        let _ = self.out.flush();
    }
}

// --------------------------------------------------------------------
// Prometheus text exposition
// --------------------------------------------------------------------

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escape a label value per the exposition grammar: backslash, double
/// quote and newline must be `\\`, `\"` and `\n`.
pub(crate) fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline only.
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render every source's cumulative registry as one grammar-valid
/// Prometheus text exposition: each metric family appears exactly once
/// (`# HELP` + `# TYPE`, then one sample per source, label-escaped),
/// histograms carry cumulative `_bucket` lines with a single `+Inf`
/// bucket equal to `_count`. Sources become a `source="..."` label, so
/// per-plane registries share families.
pub(crate) fn render_exposition<W: Write>(
    regs: &BTreeMap<String, MetricsRegistry>,
    out: &mut W,
) -> std::io::Result<()> {
    // Group samples by family across sources (BTreeMaps keep both the
    // family order and the per-family source order deterministic).
    let mut counters: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    let mut gauges: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
    let mut histograms: BTreeMap<&str, Vec<(&str, &crate::LogHistogram)>> = BTreeMap::new();
    for (source, reg) in regs {
        for (name, &v) in reg.counters() {
            counters.entry(name).or_default().push((source, v));
        }
        for (name, g) in reg.gauges() {
            gauges.entry(name).or_default().push((source, g.value));
        }
        for (name, h) in reg.histograms() {
            histograms.entry(name).or_default().push((source, h));
        }
    }
    for (name, samples) in &counters {
        let n = sanitize(name);
        writeln!(out, "# HELP rip_{n}_total {} (counter)", escape_help(name))?;
        writeln!(out, "# TYPE rip_{n}_total counter")?;
        for (source, v) in samples {
            writeln!(
                out,
                "rip_{n}_total{{source=\"{}\"}} {v}",
                escape_label(source)
            )?;
        }
    }
    for (name, samples) in &gauges {
        let n = sanitize(name);
        writeln!(out, "# HELP rip_{n} {} (gauge)", escape_help(name))?;
        writeln!(out, "# TYPE rip_{n} gauge")?;
        for (source, v) in samples {
            writeln!(out, "rip_{n}{{source=\"{}\"}} {v}", escape_label(source))?;
        }
    }
    for (name, samples) in &histograms {
        let n = sanitize(name);
        writeln!(out, "# HELP rip_{n} {} (histogram)", escape_help(name))?;
        writeln!(out, "# TYPE rip_{n} histogram")?;
        for (source, h) in samples {
            let source = escape_label(source);
            let mut cum = 0u64;
            for &(idx, count) in &h.buckets {
                cum += count;
                let le = bucket_upper_edge(idx);
                // Non-finite edges fold into the single +Inf bucket
                // below (one +Inf sample per series, as the grammar
                // requires).
                if le.is_finite() {
                    writeln!(
                        out,
                        "rip_{n}_bucket{{source=\"{source}\",le=\"{le}\"}} {cum}"
                    )?;
                }
            }
            writeln!(
                out,
                "rip_{n}_bucket{{source=\"{source}\",le=\"+Inf\"}} {}",
                h.count()
            )?;
            writeln!(out, "rip_{n}_count{{source=\"{source}\"}} {}", h.count())?;
        }
    }
    // Rejected-sample tallies are their own counter family (they are
    // not histogram samples).
    let rejected: Vec<(&str, &str, u64)> = histograms
        .iter()
        .flat_map(|(name, samples)| {
            samples
                .iter()
                .filter(|(_, h)| h.rejected() > 0)
                .map(move |&(source, h)| (*name, source, h.rejected()))
        })
        .collect();
    let mut seen: Vec<&str> = Vec::new();
    for &(name, _, _) in &rejected {
        if !seen.contains(&name) {
            seen.push(name);
        }
    }
    for family in seen {
        let n = sanitize(family);
        writeln!(
            out,
            "# HELP rip_{n}_rejected_total NaN samples rejected by {} (counter)",
            escape_help(family)
        )?;
        writeln!(out, "# TYPE rip_{n}_rejected_total counter")?;
        for &(name, source, count) in &rejected {
            if name == family {
                writeln!(
                    out,
                    "rip_{n}_rejected_total{{source=\"{}\"}} {count}",
                    escape_label(source)
                )?;
            }
        }
    }
    Ok(())
}

/// Prometheus-style text exposition writer.
///
/// Epoch deltas are accumulated into one cumulative registry per
/// source (each source's `run_end` totals are authoritative when they
/// arrive); the exposition text is rendered exactly once — by
/// [`PrometheusSink::finish`], or on drop — so every metric family
/// appears once with `# HELP`/`# TYPE` ahead of all its samples, as
/// the exposition grammar requires. Metric names are sanitized to
/// `[a-zA-Z0-9_]` and prefixed `rip_`; the source becomes a
/// `source="..."` label, so per-plane registries share metric families.
pub struct PrometheusSink<W: Write> {
    out: W,
    cumulative: BTreeMap<String, MetricsRegistry>,
    rendered: bool,
}

impl<W: Write> PrometheusSink<W> {
    /// A sink rendering to `out` when finished (or dropped).
    pub fn new(out: W) -> Self {
        PrometheusSink {
            out,
            cumulative: BTreeMap::new(),
            rendered: false,
        }
    }

    /// Render the accumulated exposition now. Idempotent; also runs on
    /// drop if never called.
    pub fn finish(&mut self) {
        if !self.rendered {
            self.rendered = true;
            render_exposition(&self.cumulative, &mut self.out).expect("telemetry sink write");
            self.out.flush().expect("telemetry sink flush");
        }
    }
}

impl<W: Write> TelemetrySink for PrometheusSink<W> {
    fn on_epoch(&mut self, source: &str, _epoch: u64, delta: &EpochDelta) {
        self.cumulative
            .entry(source.to_string())
            .or_default()
            .apply_delta(delta);
    }

    fn on_run_end(&mut self, source: &str, _at: SimTime, totals: &MetricsRegistry) {
        // `totals` is authoritative (it includes report-time
        // aggregates); prefer it over the replayed deltas.
        self.cumulative.insert(source.to_string(), totals.clone());
    }
}

impl<W: Write> Drop for PrometheusSink<W> {
    fn drop(&mut self) {
        if !self.rendered {
            self.rendered = true;
            // Best-effort in drop: never panic while unwinding.
            let _ = render_exposition(&self.cumulative, &mut self.out);
            let _ = self.out.flush();
        }
    }
}

/// One buffered record, as received by a [`MemorySink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SinkRecord {
    /// A closed epoch delta.
    Epoch {
        /// Registry the epoch came from.
        source: String,
        /// Epoch index.
        epoch: u64,
        /// The delta.
        delta: EpochDelta,
    },
    /// A sampled lifecycle event.
    Span {
        /// Registry the span came from.
        source: String,
        /// The event.
        span: SpanEvent,
    },
    /// A watchdog alarm.
    Watchdog {
        /// Stream the alarm was raised on.
        source: String,
        /// The alarm.
        event: WatchdogEvent,
    },
    /// End of a source's run.
    RunEnd {
        /// Registry that finished.
        source: String,
        /// Sim time of the end of the run.
        at: SimTime,
        /// Final cumulative registry.
        totals: MetricsRegistry,
    },
}

/// Buffers every record in arrival order — for tests, and as the
/// per-plane staging buffer whose contents are replayed into the real
/// sink in deterministic plane order. An optional ring capacity
/// ([`MemorySink::with_capacity`]) bounds the buffer for multi-hour
/// soaks: the oldest records are evicted and counted in
/// [`MemorySink::dropped_records`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    records: VecDeque<SinkRecord>,
    /// Ring capacity (`None` = unbounded).
    capacity: Option<usize>,
    dropped: u64,
}

impl MemorySink {
    /// An unbounded sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A sink keeping only the most recent `capacity` records.
    ///
    /// # Panics
    /// Panics when `capacity` is zero (a sink that can hold nothing).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        MemorySink {
            records: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// The buffered records, in arrival order.
    pub fn records(&self) -> &VecDeque<SinkRecord> {
        &self.records
    }

    /// Records evicted by the ring capacity.
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// Consume the sink, returning its records.
    pub fn into_records(self) -> Vec<SinkRecord> {
        self.records.into()
    }

    fn push(&mut self, rec: SinkRecord) {
        if let Some(cap) = self.capacity {
            while self.records.len() >= cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
        self.records.push_back(rec);
    }

    /// Append a previously captured record — how a resumed run
    /// re-seeds a staging buffer from a checkpoint.
    pub fn push_record(&mut self, rec: SinkRecord) {
        self.push(rec);
    }

    /// Replay every buffered record into `sink`, preserving sources.
    pub fn replay_into(&self, sink: &mut dyn TelemetrySink) {
        for rec in &self.records {
            match rec {
                SinkRecord::Epoch {
                    source,
                    epoch,
                    delta,
                } => sink.on_epoch(source, *epoch, delta),
                SinkRecord::Span { source, span } => sink.on_span(source, span),
                SinkRecord::Watchdog { source, event } => sink.on_watchdog(source, event),
                SinkRecord::RunEnd { source, at, totals } => sink.on_run_end(source, *at, totals),
            }
        }
    }

    /// Replay every buffered record into `sink` under a new source
    /// name — how per-plane buffers become `plane00`, `plane01`, …
    /// streams in the caller's sink.
    pub fn replay_renamed(&self, source: &str, sink: &mut dyn TelemetrySink) {
        for rec in &self.records {
            match rec {
                SinkRecord::Epoch { epoch, delta, .. } => sink.on_epoch(source, *epoch, delta),
                SinkRecord::Span { span, .. } => sink.on_span(source, span),
                SinkRecord::Watchdog { event, .. } => sink.on_watchdog(source, event),
                SinkRecord::RunEnd { at, totals, .. } => sink.on_run_end(source, *at, totals),
            }
        }
    }
}

impl TelemetrySink for MemorySink {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        self.push(SinkRecord::Epoch {
            source: source.to_string(),
            epoch,
            delta: delta.clone(),
        });
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        self.push(SinkRecord::Span {
            source: source.to_string(),
            span: *span,
        });
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        self.push(SinkRecord::Watchdog {
            source: source.to_string(),
            event: event.clone(),
        });
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        self.push(SinkRecord::RunEnd {
            source: source.to_string(),
            at,
            totals: totals.clone(),
        });
    }
}

/// A clonable, `Send` handle over a shared [`MemorySink`] — handed to
/// per-plane worker threads so each can record concurrently; the owner
/// [`SharedSink::take`]s the buffer back after joining.
#[derive(Debug, Clone, Default)]
pub struct SharedSink {
    inner: Arc<Mutex<MemorySink>>,
}

impl SharedSink {
    /// A fresh, empty shared sink.
    pub fn new() -> Self {
        SharedSink::default()
    }

    /// Take the buffered records out, leaving the sink empty.
    pub fn take(&self) -> MemorySink {
        std::mem::take(&mut *self.inner.lock().expect("telemetry sink lock"))
    }

    /// Clone the buffered records without draining them — how a
    /// checkpoint captures a staging buffer mid-run.
    pub fn peek_records(&self) -> Vec<SinkRecord> {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .records()
            .iter()
            .cloned()
            .collect()
    }

    /// Append a previously captured record (checkpoint restore).
    pub fn push_record(&self, rec: SinkRecord) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .push_record(rec);
    }
}

impl TelemetrySink for SharedSink {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_epoch(source, epoch, delta);
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_span(source, span);
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_watchdog(source, event);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        self.inner
            .lock()
            .expect("telemetry sink lock")
            .on_run_end(source, at, totals);
    }
}

/// Forwards every record to each of several sinks, in push order —
/// composition glue for e.g. "JSONL to stdout *and* the scrape
/// endpoint".
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TelemetrySink + Send>>,
}

impl FanoutSink {
    /// An empty fanout.
    pub fn new() -> Self {
        FanoutSink::default()
    }

    /// Add a downstream sink.
    pub fn push(&mut self, sink: Box<dyn TelemetrySink + Send>) {
        self.sinks.push(sink);
    }

    /// Number of downstream sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no downstream sink was added.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TelemetrySink for FanoutSink {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        for sink in &mut self.sinks {
            sink.on_epoch(source, epoch, delta);
        }
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        for sink in &mut self.sinks {
            sink.on_span(source, span);
        }
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        for sink in &mut self.sinks {
            sink.on_watchdog(source, event);
        }
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        for sink in &mut self.sinks {
            sink.on_run_end(source, at, totals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Snapshot, WatchdogKind};

    #[test]
    fn jsonl_stream_is_deterministic_and_newline_terminated() {
        let mut reg = MetricsRegistry::new();
        let run = |reg: &mut MetricsRegistry| {
            let mut buf = Vec::new();
            {
                let mut sink = JsonlSink::new(&mut buf);
                let prev = reg.snapshot(SimTime::ZERO);
                reg.inc("pkts", 7);
                reg.observe("lat", 3.5);
                let snap = reg.snapshot(SimTime::from_ns(100));
                sink.on_epoch("switch", 0, &snap.delta_since(&prev));
                sink.on_span(
                    "switch",
                    &SpanEvent {
                        packet: 42,
                        stage: "arrival",
                        at: SimTime::from_ns(5),
                        port: 1,
                    },
                );
                sink.on_watchdog(
                    "switch",
                    &WatchdogEvent {
                        source: "switch".into(),
                        epoch: 0,
                        at: SimTime::from_ns(100),
                        kind: WatchdogKind::Stall { epochs: 3 },
                    },
                );
                sink.on_run_end("switch", SimTime::from_ns(100), reg);
                assert_eq!(sink.records(), 4);
            }
            buf
        };
        let a = run(&mut MetricsRegistry::new());
        let b = run(&mut reg);
        assert_eq!(a, b, "same inputs must stream byte-identically");
        let text = String::from_utf8(a).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.ends_with('\n'));
        assert!(text.starts_with("{\"record\":\"epoch\""));
        assert!(text.contains("\"record\":\"span\""));
        assert!(text.contains("\"record\":\"watchdog\""));
        assert!(text.contains("\"record\":\"run_end\""));
    }

    #[test]
    fn prometheus_renders_counters_gauges_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.inc("switch.packets", 9);
        reg.set_gauge("queue.depth", SimTime::from_ns(10), 4.5);
        reg.observe("lat.ns", 100.0);
        reg.observe("lat.ns", 200.0);
        let mut buf = Vec::new();
        {
            let mut sink = PrometheusSink::new(&mut buf);
            sink.on_run_end("switch", SimTime::from_ns(10), &reg);
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("rip_switch_packets_total{source=\"switch\"} 9"));
        assert!(text.contains("rip_queue_depth{source=\"switch\"} 4.5"));
        assert!(text.contains("rip_lat_ns_count{source=\"switch\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    /// The exposition grammar contract: one `# HELP` + `# TYPE` per
    /// family (ahead of all its samples, grouped), a single `+Inf`
    /// bucket per histogram series, cumulative bucket counts, and
    /// escaped label values.
    #[test]
    fn prometheus_exposition_follows_the_grammar() {
        let mut a = MetricsRegistry::new();
        a.inc("switch.packets", 9);
        a.observe("lat.ns", 100.0);
        a.observe("lat.ns", f64::INFINITY); // lands in the +Inf bucket
        a.observe("lat.ns", f64::NAN); // rejected tally
        let mut b = MetricsRegistry::new();
        b.inc("switch.packets", 4);
        b.set_gauge("queue.depth", SimTime::from_ns(10), 1.0);
        let mut regs = BTreeMap::new();
        // A hostile source name: every escapable character.
        regs.insert("pla\\ne\"0\n0".to_string(), a);
        regs.insert("plane01".to_string(), b);
        let mut buf = Vec::new();
        render_exposition(&regs, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // Label escaping: backslash, quote and newline are escaped.
        assert!(
            text.contains("source=\"pla\\\\ne\\\"0\\n0\""),
            "label not escaped: {text}"
        );
        assert!(!text.contains('\u{0}'));

        // Parse line-by-line: every line is a comment or a sample whose
        // family has already announced HELP and TYPE.
        let mut helped: Vec<String> = Vec::new();
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines inside an exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let family = rest.split(' ').next().unwrap().to_string();
                assert!(!helped.contains(&family), "duplicate HELP for {family}");
                helped.push(family);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let family = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap();
                assert!(["counter", "gauge", "histogram"].contains(&kind));
                assert!(!typed.contains(&family), "duplicate TYPE for {family}");
                assert_eq!(helped.last(), Some(&family), "HELP must precede TYPE");
                typed.push(family);
            } else {
                let name = line
                    .split(['{', ' '])
                    .next()
                    .expect("sample line has a name");
                let family = typed
                    .iter()
                    .find(|f| {
                        name == f.as_str()
                            || (name
                                .strip_prefix(f.as_str())
                                .is_some_and(|suffix| suffix == "_bucket" || suffix == "_count"))
                    })
                    .unwrap_or_else(|| panic!("sample {name} has no TYPE"));
                assert_eq!(
                    typed.last(),
                    Some(family),
                    "samples of {family} must be contiguous after its TYPE"
                );
                // The value parses as a number.
                let value = line.rsplit(' ').next().unwrap();
                assert!(value.parse::<f64>().is_ok(), "bad sample value {value}");
            }
        }

        // Exactly one +Inf bucket per histogram series, equal to _count.
        // Only the hostile source recorded a histogram, so exactly one
        // series — and exactly one +Inf bucket for it, equal to _count
        // (the infinite sample lands there; the NaN does not).
        let inf_lines: Vec<&str> = text.lines().filter(|l| l.contains("le=\"+Inf\"")).collect();
        assert_eq!(inf_lines.len(), 1, "single +Inf per series: {inf_lines:?}");
        assert!(inf_lines[0].ends_with(" 2"), "{inf_lines:?}");
        // The rejected NaN shows up as its own counter family.
        assert!(text.contains("rip_lat_ns_rejected_total"));
    }

    #[test]
    fn memory_sink_ring_bounds_and_counts_drops() {
        let mut sink = MemorySink::with_capacity(3);
        let reg = MetricsRegistry::new();
        let span = |packet| SpanEvent {
            packet,
            stage: "arrival",
            at: SimTime::from_ns(packet),
            port: 0,
        };
        for packet in 0..10u64 {
            sink.on_span("switch", &span(packet));
        }
        sink.on_run_end("switch", SimTime::from_ns(99), &reg);
        assert_eq!(sink.records().len(), 3, "ring must cap the buffer");
        assert_eq!(sink.dropped_records(), 8);
        // The newest records survive.
        match &sink.records()[2] {
            SinkRecord::RunEnd { .. } => {}
            other => panic!("expected the run_end to survive, got {other:?}"),
        }
        match &sink.records()[0] {
            SinkRecord::Span { span, .. } => assert_eq!(span.packet, 8),
            other => panic!("unexpected record {other:?}"),
        }
        // Unbounded default never drops.
        let mut unbounded = MemorySink::new();
        for packet in 0..10u64 {
            unbounded.on_span("switch", &span(packet));
        }
        assert_eq!(unbounded.records().len(), 10);
        assert_eq!(unbounded.dropped_records(), 0);
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn memory_sink_rejects_zero_capacity() {
        MemorySink::with_capacity(0);
    }

    #[test]
    fn memory_sink_capacity_one_keeps_only_the_newest() {
        let mut sink = MemorySink::with_capacity(1);
        let span = |packet| SpanEvent {
            packet,
            stage: "arrival",
            at: SimTime::from_ns(packet),
            port: 0,
        };
        sink.on_span("switch", &span(0));
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.dropped_records(), 0);
        for packet in 1..5u64 {
            sink.on_span("switch", &span(packet));
        }
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.dropped_records(), 4);
        match &sink.records()[0] {
            SinkRecord::Span { span, .. } => assert_eq!(span.packet, 4),
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn memory_sink_exact_wraparound_boundary() {
        // Filling to exactly capacity drops nothing; one more record
        // evicts exactly the oldest.
        let mut sink = MemorySink::with_capacity(4);
        let span = |packet| SpanEvent {
            packet,
            stage: "arrival",
            at: SimTime::from_ns(packet),
            port: 0,
        };
        for packet in 0..4u64 {
            sink.on_span("switch", &span(packet));
        }
        assert_eq!(sink.records().len(), 4);
        assert_eq!(sink.dropped_records(), 0);
        sink.on_span("switch", &span(4));
        assert_eq!(sink.records().len(), 4);
        assert_eq!(sink.dropped_records(), 1);
        let ids: Vec<u64> = sink
            .records()
            .iter()
            .map(|r| match r {
                SinkRecord::Span { span, .. } => span.packet,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn memory_sink_overflow_accounting_is_cumulative() {
        let mut sink = MemorySink::with_capacity(2);
        let span = |packet| SpanEvent {
            packet,
            stage: "departure",
            at: SimTime::from_ns(packet),
            port: 1,
        };
        for packet in 0..100u64 {
            sink.on_span("switch", &span(packet));
        }
        assert_eq!(sink.records().len(), 2);
        assert_eq!(sink.dropped_records(), 98);
        // Eviction count + retained count always equals pushes.
        assert_eq!(sink.dropped_records() + sink.records().len() as u64, 100);
    }

    #[test]
    fn sink_records_roundtrip_through_snapshot_values() {
        let mut reg = MetricsRegistry::new();
        reg.inc("pkts", 3);
        let snap = reg.snapshot(SimTime::from_ns(100));
        let mut sink = MemorySink::new();
        sink.on_epoch("switch", 0, &snap.delta_since(&Snapshot::empty()));
        sink.on_span(
            "switch",
            &SpanEvent {
                packet: 7,
                stage: "hbm_read",
                at: SimTime::from_ns(42),
                port: 3,
            },
        );
        sink.on_watchdog(
            "switch",
            &WatchdogEvent {
                source: "switch".into(),
                epoch: 0,
                at: SimTime::from_ns(100),
                kind: WatchdogKind::Stall { epochs: 3 },
            },
        );
        sink.on_run_end("switch", SimTime::from_ns(100), &reg);
        for rec in sink.records() {
            let v = rec.to_value();
            let back = SinkRecord::from_value(&v).expect("record roundtrips");
            assert_eq!(&back, rec);
        }
        // An unknown stage is rejected, not silently interned.
        let mut bad = SinkRecord::Span {
            source: "switch".into(),
            span: SpanEvent {
                packet: 1,
                stage: "arrival",
                at: SimTime::ZERO,
                port: 0,
            },
        }
        .to_value();
        // Rewrite the stage string inside the serialized tree.
        fn poison(v: &mut Value) {
            match v {
                Value::String(s) if s == "arrival" => *s = "no_such_stage".into(),
                Value::Array(items) => items.iter_mut().for_each(poison),
                Value::Object(fields) => fields.iter_mut().for_each(|(_, v)| poison(v)),
                _ => {}
            }
        }
        poison(&mut bad);
        let err = SinkRecord::from_value(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown span stage"), "{err}");
    }

    #[test]
    fn shared_sink_replays_renamed() {
        let shared = SharedSink::new();
        let mut handle = shared.clone();
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot(SimTime::from_ns(50));
        handle.on_epoch("switch", 0, &snap.delta_since(&Snapshot::empty()));
        handle.on_run_end("switch", SimTime::from_ns(50), &reg);
        let mem = shared.take();
        assert_eq!(mem.records().len(), 2);
        let mut renamed = MemorySink::new();
        mem.replay_renamed("plane00", &mut renamed);
        match &renamed.records()[0] {
            SinkRecord::Epoch { source, .. } => assert_eq!(source, "plane00"),
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn fanout_forwards_to_every_sink() {
        let a = SharedSink::new();
        let b = SharedSink::new();
        let mut fan = FanoutSink::new();
        fan.push(Box::new(a.clone()));
        fan.push(Box::new(b.clone()));
        assert_eq!(fan.len(), 2);
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot(SimTime::from_ns(10));
        fan.on_epoch("switch", 0, &snap.delta_since(&Snapshot::empty()));
        fan.on_run_end("switch", SimTime::from_ns(10), &reg);
        assert_eq!(a.take().records().len(), 2);
        assert_eq!(b.take().records().len(), 2);
    }
}
