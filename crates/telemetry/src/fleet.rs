//! Fleet-side telemetry reassembly: parse worker JSONL lines back into
//! [`SinkRecord`]s and stage them per plane for deterministic replay.
//!
//! A plane worker serializes its telemetry with a [`crate::JsonlSink`]
//! (sources renamed to `planeNN`), so the wire format *is* the sink's
//! line format. The collector parses every line back into the typed
//! record it came from — [`parse_sink_line`] is the exact inverse of
//! the sink's four `on_*` serializers — and pushes it into a
//! [`PlaneMerge`] staging cursor. Replaying the cursor in ascending
//! plane order through a fresh `JsonlSink` reproduces the
//! single-process stream byte-for-byte:
//!
//! * the sink's float formatting is parse-stable (vendored serde_json
//!   prints whole floats as `x.0` and everything else via shortest
//!   round-trip, and parses with `str::parse::<f64>`), so
//!   parse-then-reserialize is the identity on every line;
//! * the `records` field of a `run_end` line is *sink-side* state (the
//!   number of lines the sink wrote before it), so it is deliberately
//!   not part of [`SinkRecord`] — the collector's own sink recomputes
//!   it, which is what makes the count correct even though no single
//!   worker knows how many lines the other workers contributed;
//! * everything else in a line is plane-local and sim-time-stamped, so
//!   per-plane record order is independent of which worker ran the
//!   plane or when its stream arrived.

use std::collections::BTreeMap;
use std::fmt;

use rip_units::SimTime;
use serde::{Deserialize, Value};

use crate::sink::{intern_stage, MemorySink, SinkRecord, SpanEvent, TelemetrySink};
use crate::{EpochDelta, MetricsRegistry, WatchdogEvent, WatchdogKind};

/// The canonical source name a plane's telemetry is renamed to when it
/// leaves its staging buffer: `plane00`, `plane01`, ... Matches the
/// names `SpsRouter` uses for single-process streaming, which is what
/// makes worker streams byte-compatible with the oracle.
pub fn plane_source_name(plane: usize) -> String {
    format!("plane{plane:02}")
}

/// Inverse of [`plane_source_name`]: `plane07` → `Some(7)`. Returns
/// `None` for sources that are not plane streams (e.g. `sps`, `mimic`).
pub fn parse_plane_source(source: &str) -> Option<usize> {
    let digits = source.strip_prefix("plane")?;
    let plane: usize = digits.parse().ok()?;
    // Round-trip check rejects aliases like "plane007" that would let
    // two distinct source strings collide on one plane id.
    if plane_source_name(plane) == source || plane.to_string() == digits {
        Some(plane)
    } else {
        None
    }
}

/// A line that failed to parse back into a record.
#[derive(Debug, Clone, PartialEq)]
pub enum LineError {
    /// Not valid JSON at all.
    Json(String),
    /// Valid JSON but not an object with a string `record` field.
    NotARecord(String),
    /// A known record kind with a missing or ill-typed field.
    Field {
        /// The record kind being parsed.
        record: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineError::Json(e) => write!(f, "line is not valid JSON: {e}"),
            LineError::NotARecord(kind) => {
                write!(f, "line is not a telemetry record (found {kind})")
            }
            LineError::Field { record, detail } => {
                write!(f, "bad `{record}` record: {detail}")
            }
        }
    }
}

impl std::error::Error for LineError {}

/// One parsed worker line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A telemetry record a [`crate::JsonlSink`] emitted.
    Telemetry(SinkRecord),
    /// A non-telemetry control line (`fleet_hello`, `plane_done`,
    /// `fleet_end`, ...): the `record` value plus the whole object for
    /// the protocol layer to interpret.
    Control {
        /// The `record` field value.
        kind: String,
        /// The full parsed line.
        value: Value,
    },
}

fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn typed<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    record: &str,
) -> Result<T, LineError> {
    let v = field(obj, name).ok_or_else(|| LineError::Field {
        record: record.to_string(),
        detail: format!("missing field `{name}`"),
    })?;
    T::from_value(v).map_err(|e| LineError::Field {
        record: record.to_string(),
        detail: format!("field `{name}`: {e}"),
    })
}

/// Parse one JSONL line back into the record a [`crate::JsonlSink`]
/// serialized it from. Telemetry kinds (`epoch`, `span`, `watchdog`,
/// `run_end`) become [`SinkRecord`]s; any other `record` value is
/// returned as a [`ParsedLine::Control`] line for the fleet protocol
/// layer. The `records` field of a `run_end` line is intentionally
/// dropped: it is sink-side state the consumer's own sink recomputes.
pub fn parse_sink_line(line: &str) -> Result<ParsedLine, LineError> {
    let value = serde_json::parse(line).map_err(|e| LineError::Json(e.to_string()))?;
    let obj = value
        .as_object()
        .ok_or_else(|| LineError::NotARecord(value.kind().to_string()))?;
    let kind = field(obj, "record")
        .and_then(Value::as_str)
        .ok_or_else(|| LineError::NotARecord("object without `record` string".to_string()))?
        .to_string();
    let record = match kind.as_str() {
        "epoch" => SinkRecord::Epoch {
            source: typed(obj, "source", "epoch")?,
            epoch: typed(obj, "epoch", "epoch")?,
            delta: typed::<EpochDelta>(obj, "delta", "epoch")?,
        },
        "span" => {
            // The sink writes the timestamp as `t_ps` and the stage as
            // a plain string; `SpanEvent`'s own Deserialize expects an
            // `at` field, so the line is decoded field by field here.
            let stage: String = typed(obj, "stage", "span")?;
            let stage = intern_stage(&stage).ok_or_else(|| LineError::Field {
                record: "span".to_string(),
                detail: format!("unknown span stage {stage:?}"),
            })?;
            SinkRecord::Span {
                source: typed(obj, "source", "span")?,
                span: SpanEvent {
                    packet: typed(obj, "packet", "span")?,
                    stage,
                    at: SimTime::from_ps(typed(obj, "t_ps", "span")?),
                    port: typed(obj, "port", "span")?,
                },
            }
        }
        "watchdog" => {
            // The event's `source` is not repeated inside the line; it
            // is the line's own source.
            let source: String = typed(obj, "source", "watchdog")?;
            let epoch: u64 = typed(obj, "epoch", "watchdog")?;
            let at = SimTime::from_ps(typed(obj, "t_ps", "watchdog")?);
            let kind: WatchdogKind = typed(obj, "kind", "watchdog")?;
            SinkRecord::Watchdog {
                source: source.clone(),
                event: WatchdogEvent {
                    source,
                    epoch,
                    at,
                    kind,
                },
            }
        }
        "run_end" => SinkRecord::RunEnd {
            source: typed(obj, "source", "run_end")?,
            at: SimTime::from_ps(typed::<u64>(obj, "t_ps", "run_end")?),
            totals: typed::<MetricsRegistry>(obj, "totals", "run_end")?,
        },
        _ => return Ok(ParsedLine::Control { kind, value }),
    };
    Ok(ParsedLine::Telemetry(record))
}

/// Staging cursor for fleet reassembly: buffers each plane's records in
/// arrival order (arrival order per plane *is* sim order, because one
/// worker produced them sequentially) and replays every plane in
/// ascending plane-id order — the same order `SpsRouter::run_streamed`
/// drains its per-plane staging buffers, which is the whole
/// determinism argument.
#[derive(Debug, Clone, Default)]
pub struct PlaneMerge {
    planes: BTreeMap<usize, MemorySink>,
    capacity: Option<usize>,
}

impl PlaneMerge {
    /// An unbounded cursor.
    pub fn new() -> Self {
        PlaneMerge::default()
    }

    /// A cursor whose per-plane staging buffers are bounded rings of
    /// `capacity` records; evictions are counted in
    /// [`PlaneMerge::dropped_records`]. Bounding trades byte-identity
    /// for memory — only use it for scrape-only collection.
    pub fn with_plane_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "plane staging capacity must be positive");
        PlaneMerge {
            planes: BTreeMap::new(),
            capacity: Some(capacity),
        }
    }

    /// Stage one record for `plane`.
    pub fn push(&mut self, plane: usize, rec: SinkRecord) {
        let sink = self
            .planes
            .entry(plane)
            .or_insert_with(|| match self.capacity {
                Some(cap) => MemorySink::with_capacity(cap),
                None => MemorySink::default(),
            });
        sink.push_record(rec);
    }

    /// Plane ids staged so far, ascending.
    pub fn planes(&self) -> impl Iterator<Item = usize> + '_ {
        self.planes.keys().copied()
    }

    /// Records staged for `plane` (None if the plane never appeared).
    pub fn plane_records(&self, plane: usize) -> Option<usize> {
        self.planes.get(&plane).map(|s| s.records().len())
    }

    /// Total records staged across planes.
    pub fn staged_records(&self) -> usize {
        self.planes.values().map(|s| s.records().len()).sum()
    }

    /// Records evicted by bounded staging, across planes.
    pub fn dropped_records(&self) -> u64 {
        self.planes.values().map(MemorySink::dropped_records).sum()
    }

    /// Replay every staged record into `sink`: planes in ascending id
    /// order, records in arrival order within a plane, sources
    /// preserved.
    pub fn replay_into(&self, sink: &mut dyn TelemetrySink) {
        for stage in self.planes.values() {
            stage.replay_into(sink);
        }
    }

    /// Drop one plane's staged records (a worker reconnect replaces its
    /// earlier partial contribution).
    pub fn clear_plane(&mut self, plane: usize) {
        self.planes.remove(&plane);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonlSink, Snapshot};

    fn sample_registry(at: SimTime) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("switch.packets.delivered", 7);
        reg.set_gauge("switch.depth", at, 3.5);
        reg.observe("switch.latency_ns", 412.0);
        reg
    }

    /// Serialize records through a JsonlSink, parse every line back,
    /// and re-serialize: the streams must be byte-identical and the
    /// parsed records must equal the originals.
    #[test]
    fn parse_is_the_inverse_of_the_sink() {
        let reg = sample_registry(SimTime::from_ns(10));
        let records = vec![
            SinkRecord::Epoch {
                source: "plane00".to_string(),
                epoch: 0,
                delta: reg
                    .snapshot(SimTime::from_ns(5))
                    .delta_since(&Snapshot::empty()),
            },
            SinkRecord::Span {
                source: "plane00".to_string(),
                span: SpanEvent {
                    packet: 42,
                    stage: "hbm_write",
                    at: SimTime::from_ns(6),
                    port: 3,
                },
            },
            SinkRecord::Watchdog {
                source: "plane01".to_string(),
                event: WatchdogEvent {
                    source: "plane01".to_string(),
                    epoch: 2,
                    at: SimTime::from_ns(12),
                    kind: WatchdogKind::DropRate { fraction: 0.75 },
                },
            },
            SinkRecord::Watchdog {
                source: "plane01".to_string(),
                event: WatchdogEvent {
                    source: "plane01".to_string(),
                    epoch: 3,
                    at: SimTime::from_ns(14),
                    kind: WatchdogKind::WorkerLost { worker: 1 },
                },
            },
            SinkRecord::RunEnd {
                source: "sps".to_string(),
                at: SimTime::from_ns(20),
                totals: reg.clone(),
            },
        ];
        let mut bytes = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut bytes);
            let mut staging = MemorySink::default();
            for rec in &records {
                staging.push_record(rec.clone());
            }
            staging.replay_into(&mut sink);
        }
        let text = String::from_utf8(bytes).expect("utf8");
        let mut parsed = Vec::new();
        for line in text.lines() {
            match parse_sink_line(line).expect("line parses") {
                ParsedLine::Telemetry(rec) => parsed.push(rec),
                ParsedLine::Control { kind, .. } => panic!("unexpected control line {kind}"),
            }
        }
        assert_eq!(parsed, records);
        // Re-serialize the parsed records: byte-identical stream.
        let mut again = Vec::new();
        let mut sink2 = JsonlSink::new(&mut again);
        for rec in &parsed {
            match rec {
                SinkRecord::Epoch {
                    source,
                    epoch,
                    delta,
                } => sink2.on_epoch(source, *epoch, delta),
                SinkRecord::Span { source, span } => sink2.on_span(source, span),
                SinkRecord::Watchdog { source, event } => sink2.on_watchdog(source, event),
                SinkRecord::RunEnd { source, at, totals } => sink2.on_run_end(source, *at, totals),
            }
        }
        drop(sink2);
        assert_eq!(String::from_utf8(again).expect("utf8"), text);
    }

    #[test]
    fn control_lines_pass_through() {
        let line = "{\"record\":\"fleet_hello\",\"schema\":\"rip-fleet/v1\",\"worker\":0}";
        match parse_sink_line(line).expect("parses") {
            ParsedLine::Control { kind, value } => {
                assert_eq!(kind, "fleet_hello");
                let obj = value.as_object().expect("object");
                assert!(obj.iter().any(|(k, _)| k == "schema"));
            }
            other => panic!("want control, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            parse_sink_line("not json"),
            Err(LineError::Json(_))
        ));
        assert!(matches!(
            parse_sink_line("[1,2]"),
            Err(LineError::NotARecord(_))
        ));
        assert!(matches!(
            parse_sink_line("{\"record\":\"epoch\",\"source\":\"p\"}"),
            Err(LineError::Field { .. })
        ));
        assert!(matches!(
            parse_sink_line(
                "{\"record\":\"span\",\"source\":\"p\",\"packet\":1,\"stage\":\"bogus\",\"t_ps\":1,\"port\":0}"
            ),
            Err(LineError::Field { .. })
        ));
    }

    #[test]
    fn plane_source_names_round_trip() {
        for plane in [0usize, 1, 9, 10, 63, 99, 100, 128] {
            assert_eq!(
                parse_plane_source(&plane_source_name(plane)),
                Some(plane),
                "plane {plane}"
            );
        }
        assert_eq!(parse_plane_source("sps"), None);
        assert_eq!(parse_plane_source("plane"), None);
        assert_eq!(parse_plane_source("plane007"), None);
        assert_eq!(parse_plane_source("plane-1"), None);
    }

    #[test]
    fn plane_merge_replays_in_plane_order_and_counts_evictions() {
        let span = |packet| SinkRecord::Span {
            source: "x".to_string(),
            span: SpanEvent {
                packet,
                stage: "arrival",
                at: SimTime::from_ns(packet),
                port: 0,
            },
        };
        let mut merge = PlaneMerge::new();
        merge.push(2, span(20));
        merge.push(0, span(1));
        merge.push(2, span(21));
        merge.push(1, span(10));
        let mut out = MemorySink::default();
        merge.replay_into(&mut out);
        let packets: Vec<u64> = out
            .records()
            .iter()
            .map(|r| match r {
                SinkRecord::Span { span, .. } => span.packet,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(packets, vec![1, 10, 20, 21]);
        assert_eq!(merge.staged_records(), 4);
        assert_eq!(merge.dropped_records(), 0);

        let mut bounded = PlaneMerge::with_plane_capacity(1);
        bounded.push(0, span(1));
        bounded.push(0, span(2));
        bounded.push(1, span(3));
        assert_eq!(bounded.staged_records(), 2);
        assert_eq!(bounded.dropped_records(), 1);
        bounded.clear_plane(1);
        assert_eq!(bounded.staged_records(), 1);
    }
}
