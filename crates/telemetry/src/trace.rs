//! Chrome trace-event export: the simulator's timeline view.
//!
//! A [`TraceRecorder`] collects span/instant/counter events on
//! `(process, track)` lanes and serializes them as Chrome trace-event
//! JSON (`{"traceEvents": [...]}`), the format Perfetto and
//! `chrome://tracing` load directly. Everything is stamped with
//! [`SimTime`] (integer picoseconds) and all ordering is derived from
//! `BTreeMap` iteration plus a stable sort, so two same-seed runs write
//! byte-identical files — CI diffs them with `cmp`.
//!
//! Unit convention: the trace-event `ts`/`dur` fields are nominally
//! microseconds, but this exporter writes **integer picoseconds of sim
//! time** into them (floats would make byte-stability depend on
//! formatting). One microsecond on the Perfetto timeline therefore
//! equals one picosecond of simulated time; timelines stay fully
//! zoomable and exact.
//!
//! Recording is gated by a [`TraceWindow`] so multi-hour soaks can
//! export a narrow slice: emitters consult [`TraceRecorder::window`]
//! before recording (the recorder itself never filters, because
//! higher-level policies differ — a packet admitted inside the window
//! is followed to its departure even past the window's end, while an
//! HBM command strictly outside it is skipped).
//!
//! Well-known process ids: [`PID_HBM`] carries one track per HBM bank
//! (plus one tFAW lane per channel), [`PID_FRAMES`] one
//! fill/write/read/drain track quartet per output. [`ChromeTraceSink`]
//! allocates dynamic pids from [`PID_DYNAMIC_BASE`] upward for
//! packet-lifecycle spans and per-source activity lanes.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::io::{self, Write};

use rip_units::SimTime;

use crate::{EpochDelta, MetricsRegistry, SpanEvent, TelemetrySink};

/// Process id of the per-bank HBM command timeline.
pub const PID_HBM: u32 = 1;
/// Process id of the per-output PFI frame-lifecycle tracks.
pub const PID_FRAMES: u32 = 2;
/// First process id handed out dynamically by [`ChromeTraceSink`].
pub const PID_DYNAMIC_BASE: u32 = 16;

/// Why a `--trace-window` specification was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceWindowError {
    /// `end <= start`: the window selects nothing.
    Empty {
        /// Requested start, picoseconds.
        start_ps: u64,
        /// Requested end, picoseconds.
        end_ps: u64,
    },
    /// The textual form did not parse as `<start_ps>:<end_ps>` with two
    /// non-negative integers.
    Malformed(String),
}

impl fmt::Display for TraceWindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceWindowError::Empty { start_ps, end_ps } => write!(
                f,
                "trace window [{start_ps}, {end_ps}) ps is empty (end must exceed start)"
            ),
            TraceWindowError::Malformed(s) => write!(
                f,
                "trace window {s:?} must be <start_ps>:<end_ps> with non-negative integers"
            ),
        }
    }
}

impl Error for TraceWindowError {}

/// A half-open sim-time interval `[start, end)` gating trace recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceWindow {
    start_ps: u64,
    end_ps: u64,
}

impl TraceWindow {
    /// A window covering `[start, end)`; rejects empty and inverted
    /// ranges.
    pub fn new(start: SimTime, end: SimTime) -> Result<Self, TraceWindowError> {
        if end <= start {
            return Err(TraceWindowError::Empty {
                start_ps: start.as_ps(),
                end_ps: end.as_ps(),
            });
        }
        Ok(TraceWindow {
            start_ps: start.as_ps(),
            end_ps: end.as_ps(),
        })
    }

    /// The window covering all of sim time.
    pub fn all() -> Self {
        TraceWindow {
            start_ps: 0,
            end_ps: u64::MAX,
        }
    }

    /// Parse the `--trace-window` CLI form `<start_ps>:<end_ps>`.
    /// Negative or non-numeric components are rejected as
    /// [`TraceWindowError::Malformed`], zero-length or inverted ranges
    /// as [`TraceWindowError::Empty`].
    pub fn parse(s: &str) -> Result<Self, TraceWindowError> {
        let (a, b) = s
            .split_once(':')
            .ok_or_else(|| TraceWindowError::Malformed(s.to_string()))?;
        let start: u64 = a
            .trim()
            .parse()
            .map_err(|_| TraceWindowError::Malformed(s.to_string()))?;
        let end: u64 = b
            .trim()
            .parse()
            .map_err(|_| TraceWindowError::Malformed(s.to_string()))?;
        TraceWindow::new(SimTime::from_ps(start), SimTime::from_ps(end))
    }

    /// Window start (inclusive).
    pub fn start(&self) -> SimTime {
        SimTime::from_ps(self.start_ps)
    }

    /// Window end (exclusive).
    pub fn end(&self) -> SimTime {
        SimTime::from_ps(self.end_ps)
    }

    /// Whether instant `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        let ps = t.as_ps();
        self.start_ps <= ps && ps < self.end_ps
    }

    /// Whether the closed span `[a, b]` overlaps the window.
    pub fn overlaps(&self, a: SimTime, b: SimTime) -> bool {
        a.as_ps() < self.end_ps && b.as_ps() >= self.start_ps
    }
}

impl Default for TraceWindow {
    fn default() -> Self {
        TraceWindow::all()
    }
}

/// Trace-event phase of one recorded event.
#[derive(Debug, Clone, PartialEq)]
enum Ph {
    /// A complete duration event (`"X"`): may overlap others on the
    /// same track, which is why device-command and frame spans use it.
    Complete {
        /// Duration, picoseconds.
        dur_ps: u64,
    },
    /// Span begin (`"B"`); must be balanced by an `End` on its track.
    Begin,
    /// Span end (`"E"`).
    End,
    /// A thread-scoped instant (`"i"`).
    Instant,
    /// A counter sample (`"C"`): renders as a filled activity lane.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event on `(pid, tid)` at `ts_ps`.
#[derive(Debug, Clone, PartialEq)]
struct TraceEvent {
    pid: u32,
    tid: u64,
    ts_ps: u64,
    name: String,
    ph: Ph,
}

/// Deterministic recorder for Chrome trace-event JSON.
///
/// Events accumulate in insertion order; serialization stable-sorts by
/// `(pid, tid, ts)` so every track is monotonically non-decreasing in
/// `ts` while same-timestamp events keep their recording order (a `B`
/// recorded before its zero-length `E` stays before it).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    window: TraceWindow,
    events: Vec<TraceEvent>,
    process_names: BTreeMap<u32, String>,
    thread_names: BTreeMap<(u32, u64), String>,
}

impl TraceRecorder {
    /// An empty recorder gated by `window`.
    pub fn new(window: TraceWindow) -> Self {
        TraceRecorder {
            window,
            events: Vec::new(),
            process_names: BTreeMap::new(),
            thread_names: BTreeMap::new(),
        }
    }

    /// The recording window emitters must consult.
    pub fn window(&self) -> TraceWindow {
        self.window
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process (one Perfetto process group).
    pub fn set_process_name(&mut self, pid: u32, name: &str) {
        self.process_names.insert(pid, name.to_string());
    }

    /// Name a track within a process.
    pub fn set_thread_name(&mut self, pid: u32, tid: u64, name: &str) {
        self.thread_names.insert((pid, tid), name.to_string());
    }

    /// Record a complete duration event spanning `[start, end]`.
    pub fn complete(&mut self, pid: u32, tid: u64, name: &str, start: SimTime, end: SimTime) {
        self.events.push(TraceEvent {
            pid,
            tid,
            ts_ps: start.as_ps(),
            name: name.to_string(),
            ph: Ph::Complete {
                dur_ps: end.as_ps().saturating_sub(start.as_ps()),
            },
        });
    }

    /// Record a span begin.
    pub fn begin(&mut self, pid: u32, tid: u64, name: &str, at: SimTime) {
        self.events.push(TraceEvent {
            pid,
            tid,
            ts_ps: at.as_ps(),
            name: name.to_string(),
            ph: Ph::Begin,
        });
    }

    /// Record a span end (balancing an earlier begin on the track).
    pub fn end(&mut self, pid: u32, tid: u64, name: &str, at: SimTime) {
        self.events.push(TraceEvent {
            pid,
            tid,
            ts_ps: at.as_ps(),
            name: name.to_string(),
            ph: Ph::End,
        });
    }

    /// Record an instant event.
    pub fn instant(&mut self, pid: u32, tid: u64, name: &str, at: SimTime) {
        self.events.push(TraceEvent {
            pid,
            tid,
            ts_ps: at.as_ps(),
            name: name.to_string(),
            ph: Ph::Instant,
        });
    }

    /// Record a counter sample (an activity lane point).
    pub fn counter(&mut self, pid: u32, tid: u64, name: &str, at: SimTime, value: f64) {
        self.events.push(TraceEvent {
            pid,
            tid,
            ts_ps: at.as_ps(),
            name: name.to_string(),
            ph: Ph::Counter { value },
        });
    }

    /// Absorb another recorder's events and names (its window is
    /// dropped; windows are an emitter-side policy).
    pub fn merge(&mut self, other: TraceRecorder) {
        self.events.extend(other.events);
        self.process_names.extend(other.process_names);
        self.thread_names.extend(other.thread_names);
    }

    /// Serialize as Chrome trace-event JSON: metadata first (process
    /// and track names in id order), then all events stable-sorted by
    /// `(pid, tid, ts)`. Byte-identical for identical recordings.
    pub fn write_chrome_json<W: Write>(&self, out: &mut W) -> io::Result<()> {
        let jstr = |s: &str| serde_json::to_string(&s.to_string()).expect("string serializes");
        let jnum = |v: f64| serde_json::to_string(&v).expect("number serializes");
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| {
            let e = &self.events[i];
            (e.pid, e.tid, e.ts_ps)
        });
        write!(out, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
        let mut first = true;
        let sep = |out: &mut W, first: &mut bool| -> io::Result<()> {
            if *first {
                *first = false;
                writeln!(out)
            } else {
                writeln!(out, ",")
            }
        };
        for (&pid, name) in &self.process_names {
            sep(out, &mut first)?;
            write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                jstr(name)
            )?;
        }
        for (&(pid, tid), name) in &self.thread_names {
            sep(out, &mut first)?;
            write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                jstr(name)
            )?;
        }
        for &i in &order {
            let e = &self.events[i];
            sep(out, &mut first)?;
            let head = format!(
                "\"pid\":{},\"tid\":{},\"ts\":{},\"name\":{}",
                e.pid,
                e.tid,
                e.ts_ps,
                jstr(&e.name)
            );
            match e.ph {
                Ph::Complete { dur_ps } => {
                    write!(out, "{{\"ph\":\"X\",{head},\"dur\":{dur_ps}}}")?;
                }
                Ph::Begin => write!(out, "{{\"ph\":\"B\",{head}}}")?,
                Ph::End => write!(out, "{{\"ph\":\"E\",{head}}}")?,
                Ph::Instant => write!(out, "{{\"ph\":\"i\",\"s\":\"t\",{head}}}")?,
                Ph::Counter { value } => {
                    write!(
                        out,
                        "{{\"ph\":\"C\",{head},\"args\":{{\"value\":{}}}}}",
                        jnum(value)
                    )?;
                }
            }
        }
        writeln!(out, "\n]}}")
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(TraceWindow::all())
    }
}

/// A [`TelemetrySink`] that turns the live record stream into trace
/// events: sampled packet lifecycles become one B/E span per packet
/// (tid = packet id) with instants for intermediate stages, and every
/// source's per-epoch gauges become counter activity lanes — fed
/// per-plane SPS streams, this yields one activity lane per plane.
///
/// Windowing policy: a packet is admitted when its `arrival` falls
/// inside the recording window and is then followed to its terminal
/// stage (even past the window's end) so every begun span is balanced;
/// `run_end` force-closes spans the run itself cut short. Lane samples
/// are kept only when their epoch boundary lies inside the window.
pub struct ChromeTraceSink {
    rec: TraceRecorder,
    next_pid: u32,
    pids: BTreeMap<String, u32>,
    open: BTreeSet<(u32, u64)>,
}

impl ChromeTraceSink {
    /// A sink recording into a fresh recorder gated by `window`.
    pub fn new(window: TraceWindow) -> Self {
        ChromeTraceSink {
            rec: TraceRecorder::new(window),
            next_pid: PID_DYNAMIC_BASE,
            pids: BTreeMap::new(),
            open: BTreeSet::new(),
        }
    }

    /// The pid carrying `source`'s packet spans and activity lane,
    /// allocated (and named) on first use. Sources arrive in
    /// deterministic stream order, so pid assignment is deterministic.
    fn pid_for(&mut self, source: &str) -> u32 {
        if let Some(&pid) = self.pids.get(source) {
            return pid;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        self.pids.insert(source.to_string(), pid);
        self.rec.set_process_name(pid, source);
        pid
    }

    /// Finish recording and hand the recorder over (merge it with the
    /// device-side recorder before writing).
    pub fn into_recorder(self) -> TraceRecorder {
        self.rec
    }
}

impl TelemetrySink for ChromeTraceSink {
    fn on_epoch(&mut self, source: &str, _epoch: u64, delta: &EpochDelta) {
        let at = delta.to();
        if !self.rec.window().contains(at) {
            return;
        }
        let pid = self.pid_for(source);
        for (lane, gauge) in [
            ("delivered", "switch.packets.delivered"),
            ("in_flight", "switch.packets.in_flight"),
        ] {
            if let Some(g) = delta.gauges().get(gauge) {
                self.rec.counter(pid, 0, lane, at, g.value);
            }
        }
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        let pid = self.pid_for(source);
        let key = (pid, span.packet);
        match span.stage {
            "arrival" => {
                if self.rec.window().contains(span.at) {
                    // Per-plane SPS streams can reuse a packet id (the
                    // per-fiber generators share one (input, sequence)
                    // id space, and several fibers of a ribbon land on
                    // the same plane); the source also stops sampling a
                    // reused id at its first terminal stage. Truncate
                    // the open span here so every track stays balanced.
                    if self.open.contains(&key) {
                        self.rec.end(pid, span.packet, "pkt", span.at);
                    }
                    self.rec.begin(pid, span.packet, "pkt", span.at);
                    self.open.insert(key);
                }
            }
            "departure" | "frame_drop" => {
                if self.open.remove(&key) {
                    self.rec.instant(pid, span.packet, span.stage, span.at);
                    self.rec.end(pid, span.packet, "pkt", span.at);
                }
            }
            // `input_drop` arrives for packets never admitted (no open
            // span); intermediate stages only annotate open spans.
            "input_drop" => {
                if self.rec.window().contains(span.at) {
                    self.rec.instant(pid, span.packet, span.stage, span.at);
                }
            }
            stage => {
                if self.open.contains(&key) {
                    self.rec.instant(pid, span.packet, stage, span.at);
                }
            }
        }
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, _totals: &MetricsRegistry) {
        // Balance spans the run cut short (packets still in flight at
        // the deadline).
        let pid = self.pid_for(source);
        let stuck: Vec<(u32, u64)> = self
            .open
            .iter()
            .copied()
            .filter(|&(p, _)| p == pid)
            .collect();
        for (p, tid) in stuck {
            self.open.remove(&(p, tid));
            self.rec.end(p, tid, "pkt", at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn parse(bytes: &[u8]) -> Value {
        serde_json::parse(std::str::from_utf8(bytes).unwrap()).unwrap()
    }

    fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
        v.as_object()
            .unwrap()
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, val)| val)
            .unwrap_or_else(|| panic!("missing field {key}"))
    }

    fn num_u64(v: &Value) -> u64 {
        match v {
            Value::Number(serde::Number::U64(n)) => *n,
            other => panic!("expected u64, got {other:?}"),
        }
    }

    #[test]
    fn window_rejects_empty_and_inverted() {
        assert!(matches!(
            TraceWindow::new(SimTime::from_ps(5), SimTime::from_ps(5)),
            Err(TraceWindowError::Empty { .. })
        ));
        assert!(matches!(
            TraceWindow::new(SimTime::from_ps(9), SimTime::from_ps(3)),
            Err(TraceWindowError::Empty { .. })
        ));
        let w = TraceWindow::new(SimTime::from_ps(10), SimTime::from_ps(20)).unwrap();
        assert!(w.contains(SimTime::from_ps(10)));
        assert!(!w.contains(SimTime::from_ps(20)));
        assert!(w.overlaps(SimTime::from_ps(0), SimTime::from_ps(10)));
        assert!(w.overlaps(SimTime::from_ps(19), SimTime::from_ps(100)));
        assert!(!w.overlaps(SimTime::from_ps(0), SimTime::from_ps(9)));
        assert!(!w.overlaps(SimTime::from_ps(20), SimTime::from_ps(30)));
    }

    #[test]
    fn window_parse_accepts_range_and_rejects_garbage() {
        let w = TraceWindow::parse("100:2000").unwrap();
        assert_eq!(w.start().as_ps(), 100);
        assert_eq!(w.end().as_ps(), 2000);
        for bad in ["", "100", "a:b", "-5:10", "10:-5", "3:3", "9:1"] {
            assert!(TraceWindow::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn recorder_output_is_deterministic_and_track_sorted() {
        let render = || {
            let mut rec = TraceRecorder::new(TraceWindow::all());
            rec.set_process_name(PID_HBM, "hbm");
            rec.set_thread_name(PID_HBM, 3, "ch00/b03");
            // Recorded out of time order on purpose: serialization
            // sorts per track.
            rec.complete(
                PID_HBM,
                3,
                "RD",
                SimTime::from_ps(500),
                SimTime::from_ps(900),
            );
            rec.complete(
                PID_HBM,
                3,
                "ACT",
                SimTime::from_ps(100),
                SimTime::from_ps(116),
            );
            rec.counter(PID_FRAMES, 0, "lane", SimTime::from_ps(50), 1.5);
            let mut buf = Vec::new();
            rec.write_chrome_json(&mut buf).unwrap();
            buf
        };
        let a = render();
        assert_eq!(
            a,
            render(),
            "identical recordings must serialize identically"
        );
        let v = parse(&a);
        let events = field(&v, "traceEvents").as_array().unwrap();
        assert_eq!(events.len(), 5); // 2 metadata + 3 events
        let acts: Vec<&str> = events
            .iter()
            .filter(|e| field(e, "ph").as_str() == Some("X"))
            .map(|e| field(e, "name").as_str().unwrap())
            .collect();
        assert_eq!(acts, ["ACT", "RD"], "track must be ts-sorted");
    }

    #[test]
    fn chrome_sink_balances_packet_spans() {
        let mut sink = ChromeTraceSink::new(TraceWindow::all());
        let span = |packet, stage, ps| SpanEvent {
            packet,
            stage,
            at: SimTime::from_ps(ps),
            port: 0,
        };
        sink.on_span("switch", &span(1, "arrival", 10));
        sink.on_span("switch", &span(1, "hbm_write", 20));
        sink.on_span("switch", &span(1, "departure", 30));
        sink.on_span("switch", &span(2, "arrival", 15));
        // Packet 2 never departs; run_end must close it.
        sink.on_run_end("switch", SimTime::from_ps(99), &MetricsRegistry::new());
        let rec = sink.into_recorder();
        let mut buf = Vec::new();
        rec.write_chrome_json(&mut buf).unwrap();
        let v = parse(&buf);
        let (mut b, mut e) = (0, 0);
        for ev in field(&v, "traceEvents").as_array().unwrap() {
            match field(ev, "ph").as_str().unwrap() {
                "B" => b += 1,
                "E" => e += 1,
                _ => {}
            }
        }
        assert_eq!((b, e), (2, 2), "every begin must be balanced");
    }

    #[test]
    fn chrome_sink_window_admits_at_arrival_only() {
        let w = TraceWindow::new(SimTime::from_ps(100), SimTime::from_ps(200)).unwrap();
        let mut sink = ChromeTraceSink::new(w);
        let span = |packet, stage, ps| SpanEvent {
            packet,
            stage,
            at: SimTime::from_ps(ps),
            port: 0,
        };
        // Arrived before the window: fully ignored, even its departure.
        sink.on_span("switch", &span(1, "arrival", 50));
        sink.on_span("switch", &span(1, "departure", 150));
        // Arrived inside: followed past the window's end.
        sink.on_span("switch", &span(2, "arrival", 150));
        sink.on_span("switch", &span(2, "departure", 900));
        let rec = sink.into_recorder();
        let mut buf = Vec::new();
        rec.write_chrome_json(&mut buf).unwrap();
        let v = parse(&buf);
        let events = field(&v, "traceEvents").as_array().unwrap();
        let spans: Vec<(&str, u64)> = events
            .iter()
            .filter(|e| matches!(field(e, "ph").as_str().unwrap(), "B" | "E"))
            .map(|e| (field(e, "ph").as_str().unwrap(), num_u64(field(e, "tid"))))
            .collect();
        assert_eq!(spans, [("B", 2), ("E", 2)]);
    }
}
