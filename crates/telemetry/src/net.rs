//! Network telemetry: a std-only scrape endpoint and a push framing.
//!
//! [`MetricsServer`] binds a `TcpListener` (port 0 gives an ephemeral
//! port — CI uses that) and serves the latest published body to any
//! HTTP GET as `text/plain` Prometheus exposition. The accept loop
//! runs on one background thread, holds only an `Arc<Mutex<String>>`,
//! and shuts down via a self-connect poke, so the whole exporter stays
//! inside `std` — no async runtime, no HTTP dependency.
//!
//! [`MetricsEndpoint`] is the [`TelemetrySink`] in front of it: it
//! accumulates epoch deltas into one cumulative registry per source and
//! republishes the rendered exposition at every epoch, so a scrape
//! during a soak sees the run's current totals.
//!
//! [`LengthFramedWriter`] adapts any `Write` into the collector push
//! format: each newline-terminated record (e.g. a [`crate::JsonlSink`]
//! line) is re-emitted as a `u32` big-endian byte length followed by
//! the record bytes without the newline. `JsonlSink<LengthFramedWriter
//! <TcpStream>>` therefore pushes length-framed JSONL epoch deltas to a
//! collector with no new serialization code.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use rip_units::SimTime;

use crate::sink::render_exposition;
use crate::{EpochDelta, MetricsRegistry, TelemetrySink};

/// A minimal single-threaded HTTP scrape endpoint over `TcpListener`.
///
/// Every connection gets the latest published body as an
/// `HTTP/1.0 200` `text/plain` response and is closed — exactly what a
/// Prometheus scraper (or `bash /dev/tcp`, as ci.sh does) needs.
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept thread.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let body: Arc<Mutex<String>> = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (body_t, shutdown_t) = (body.clone(), shutdown.clone());
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown_t.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                // Drain whatever request line arrived (best effort; the
                // response does not depend on it).
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let text = body_t.lock().expect("metrics body lock").clone();
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    text.len(),
                    text
                );
                let _ = stream.flush();
            }
        });
        Ok(MetricsServer {
            addr,
            body,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the served body.
    pub fn publish(&self, body: String) {
        *self.body.lock().expect("metrics body lock") = body;
    }

    /// Stop the accept thread and join it.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Poke the blocking accept so the thread observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The sink feeding a [`MetricsServer`]: accumulates one cumulative
/// registry per source and republishes the full Prometheus exposition
/// at every epoch and at `run_end` (whose totals are authoritative).
pub struct MetricsEndpoint {
    server: MetricsServer,
    cumulative: BTreeMap<String, MetricsRegistry>,
}

impl MetricsEndpoint {
    /// Serve scrapes of this sink's registries at `addr`.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(MetricsEndpoint {
            server: MetricsServer::bind(addr)?,
            cumulative: BTreeMap::new(),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    fn republish(&mut self) {
        let mut out = Vec::new();
        render_exposition(&self.cumulative, &mut out).expect("vec write");
        self.server
            .publish(String::from_utf8(out).expect("exposition is utf-8"));
    }
}

impl TelemetrySink for MetricsEndpoint {
    fn on_epoch(&mut self, source: &str, _epoch: u64, delta: &EpochDelta) {
        self.cumulative
            .entry(source.to_string())
            .or_default()
            .apply_delta(delta);
        self.republish();
    }

    fn on_run_end(&mut self, source: &str, _at: SimTime, totals: &MetricsRegistry) {
        self.cumulative.insert(source.to_string(), totals.clone());
        self.republish();
    }
}

/// Re-frames newline-delimited records as `u32` big-endian length
/// prefixes followed by the record bytes (newline stripped) — the
/// collector push wire format. Partial lines are buffered until their
/// newline arrives; `flush` forwards to the inner writer without
/// emitting incomplete frames.
pub struct LengthFramedWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> LengthFramedWriter<W> {
    /// Frame records into `inner`.
    pub fn new(inner: W) -> Self {
        LengthFramedWriter {
            inner,
            buf: Vec::new(),
        }
    }

    /// Unwrap the inner writer (any incomplete trailing line is
    /// discarded — frames are whole records only).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for LengthFramedWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        for &b in data {
            if b == b'\n' {
                let len = u32::try_from(self.buf.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "record exceeds u32 frame")
                })?;
                self.inner.write_all(&len.to_be_bytes())?;
                self.inner.write_all(&self.buf)?;
                self.buf.clear();
            } else {
                self.buf.push(b);
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_serves_published_body_on_ephemeral_port() {
        let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        server.publish("rip_up 1\n".to_string());
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port must be resolved");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain"));
        assert!(response.ends_with("rip_up 1\n"), "{response}");
        server.shutdown();
    }

    #[test]
    fn endpoint_republishes_on_each_epoch() {
        let mut endpoint = MetricsEndpoint::bind("127.0.0.1:0").expect("bind");
        let addr = endpoint.local_addr();
        let mut reg = MetricsRegistry::new();
        let prev = reg.snapshot(SimTime::ZERO);
        reg.inc("switch.packets", 5);
        let delta = reg.snapshot(SimTime::from_ns(100)).delta_since(&prev);
        endpoint.on_epoch("switch", 0, &delta);
        let scrape = || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"GET / HTTP/1.0\r\n\r\n")
                .expect("request");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("response");
            response
        };
        assert!(
            scrape().contains("rip_switch_packets_total{source=\"switch\"} 5"),
            "epoch totals must be scrapable mid-run"
        );
        reg.inc("switch.packets", 2);
        endpoint.on_run_end("switch", SimTime::from_ns(200), &reg);
        assert!(scrape().contains("rip_switch_packets_total{source=\"switch\"} 7"));
    }

    #[test]
    fn length_framing_wraps_whole_lines_only() {
        let mut framed = LengthFramedWriter::new(Vec::new());
        framed.write_all(b"{\"a\":1}\n{\"bb\"").expect("write");
        framed.write_all(b":2}\n").expect("write");
        let bytes = framed.into_inner();
        let mut want = Vec::new();
        want.extend_from_slice(&7u32.to_be_bytes());
        want.extend_from_slice(b"{\"a\":1}");
        want.extend_from_slice(&8u32.to_be_bytes());
        want.extend_from_slice(b"{\"bb\":2}");
        assert_eq!(bytes, want);
    }
}
