//! Network telemetry: a std-only scrape endpoint and a push framing.
//!
//! [`MetricsServer`] binds a `TcpListener` (port 0 gives an ephemeral
//! port — CI uses that) and serves the latest published body to any
//! HTTP GET as `text/plain` Prometheus exposition. The accept loop
//! runs on one background thread, holds only an `Arc<Mutex<String>>`,
//! and shuts down via a self-connect poke, so the whole exporter stays
//! inside `std` — no async runtime, no HTTP dependency.
//!
//! [`MetricsEndpoint`] is the [`TelemetrySink`] in front of it: it
//! accumulates epoch deltas into one cumulative registry per source and
//! republishes the rendered exposition at every epoch, so a scrape
//! during a soak sees the run's current totals.
//!
//! [`LengthFramedWriter`] adapts any `Write` into the collector push
//! format: each newline-terminated record (e.g. a [`crate::JsonlSink`]
//! line) is re-emitted as a `u32` big-endian byte length followed by
//! the record bytes without the newline. `JsonlSink<LengthFramedWriter
//! <TcpStream>>` therefore pushes length-framed JSONL epoch deltas to a
//! collector with no new serialization code.
//!
//! [`LengthFramedReader`] is the receiving half: it decodes that wire
//! format back into whole records with typed errors for truncated and
//! oversized frames, and its decode state survives transient I/O errors
//! (a read timeout mid-frame can be retried without losing bytes).
//! [`FrameListener`] is the std-only accept machinery a collector
//! binary polls for incoming worker pushes.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rip_units::SimTime;

use crate::sink::{escape_label, render_exposition};
use crate::{EpochDelta, MetricsRegistry, TelemetrySink, WatchdogEvent};

/// A minimal single-threaded HTTP scrape endpoint over `TcpListener`.
///
/// Every connection gets the latest published body as an
/// `HTTP/1.0 200` `text/plain` response and is closed — exactly what a
/// Prometheus scraper (or `bash /dev/tcp`, as ci.sh does) needs.
pub struct MetricsServer {
    addr: SocketAddr,
    body: Arc<Mutex<String>>,
    info: Arc<Mutex<Option<BuildInfo>>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Build metadata served ahead of the published exposition body.
struct BuildInfo {
    service: String,
    version: String,
    started: Instant,
}

impl BuildInfo {
    /// Render the `<service>_build_info` / `<service>_uptime_seconds`
    /// families. Uptime is wall-clock by design — it is scrape-time
    /// exporter metadata, not simulation telemetry.
    fn render(&self) -> String {
        let s = &self.service;
        let mut out = String::new();
        out.push_str(&format!(
            "# HELP {s}_build_info Build metadata of the serving binary (gauge)\n\
             # TYPE {s}_build_info gauge\n\
             {s}_build_info{{version=\"{}\"}} 1\n",
            escape_label(&self.version)
        ));
        out.push_str(&format!(
            "# HELP {s}_uptime_seconds Wall-clock seconds since the exporter started (gauge)\n\
             # TYPE {s}_uptime_seconds gauge\n\
             {s}_uptime_seconds {:.3}\n",
            self.started.elapsed().as_secs_f64()
        ));
        out
    }
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept thread.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let body: Arc<Mutex<String>> = Arc::default();
        let info: Arc<Mutex<Option<BuildInfo>>> = Arc::default();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (body_t, info_t, shutdown_t) = (body.clone(), info.clone(), shutdown.clone());
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shutdown_t.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                // Drain whatever request line arrived (best effort; the
                // response does not depend on it).
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let mut text = info_t
                    .lock()
                    .expect("metrics info lock")
                    .as_ref()
                    .map(BuildInfo::render)
                    .unwrap_or_default();
                text.push_str(&body_t.lock().expect("metrics body lock"));
                let _ = write!(
                    stream,
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    text.len(),
                    text
                );
                let _ = stream.flush();
            }
        });
        Ok(MetricsServer {
            addr,
            body,
            info,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replace the served body.
    pub fn publish(&self, body: String) {
        *self.body.lock().expect("metrics body lock") = body;
    }

    /// Serve `<service>_build_info{version="..."} 1` and a
    /// `<service>_uptime_seconds` gauge ahead of every published body.
    /// `service` must already be a valid metric-name prefix
    /// (`[a-zA-Z_][a-zA-Z0-9_]*`, e.g. `ripsim`); the version label is
    /// escaped per the exposition grammar.
    pub fn set_build_info(&self, service: &str, version: &str) {
        debug_assert!(
            !service.is_empty()
                && service
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !service.starts_with(|c: char| c.is_ascii_digit()),
            "service must be a valid metric-name prefix"
        );
        *self.info.lock().expect("metrics info lock") = Some(BuildInfo {
            service: service.to_string(),
            version: version.to_string(),
            started: Instant::now(),
        });
    }

    /// Stop the accept thread and join it.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Poke the blocking accept so the thread observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The sink feeding a [`MetricsServer`]: accumulates one cumulative
/// registry per source and republishes the full Prometheus exposition
/// at every epoch and at `run_end` (whose totals are authoritative).
pub struct MetricsEndpoint {
    server: MetricsServer,
    cumulative: BTreeMap<String, MetricsRegistry>,
    /// Optional self-profiling families appended to every published
    /// body as `<prefix>_profile_*` (wall-clock exporter metadata, like
    /// [`MetricsServer::set_build_info`] — never simulation telemetry).
    profile: Option<(String, crate::ProfileHub)>,
}

impl MetricsEndpoint {
    /// Serve scrapes of this sink's registries at `addr`.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(MetricsEndpoint {
            server: MetricsServer::bind(addr)?,
            cumulative: BTreeMap::new(),
            profile: None,
        })
    }

    /// Append `<prefix>_profile_*` families rendered from `hub`'s
    /// cumulative totals to every published exposition body. `prefix`
    /// must be a valid metric-name prefix (e.g. `ripsim`).
    pub fn attach_profile_hub(&mut self, prefix: &str, hub: crate::ProfileHub) {
        self.profile = Some((prefix.to_string(), hub));
        self.republish();
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Forward to [`MetricsServer::set_build_info`].
    pub fn set_build_info(&self, service: &str, version: &str) {
        self.server.set_build_info(service, version);
    }

    /// Surface telemetry loss at scrape time: record that `source`'s
    /// staging buffer evicted `dropped` records (a bounded
    /// [`crate::MemorySink`] ring overflowed) as a
    /// `rip_telemetry_dropped_records` gauge.
    pub fn note_dropped_records(&mut self, source: &str, at: SimTime, dropped: u64) {
        self.cumulative
            .entry(source.to_string())
            .or_default()
            .set_gauge("telemetry.dropped_records", at, dropped as f64);
        self.republish();
    }

    fn republish(&mut self) {
        let mut out = Vec::new();
        render_exposition(&self.cumulative, &mut out).expect("vec write");
        let mut body = String::from_utf8(out).expect("exposition is utf-8");
        if let Some((prefix, hub)) = &self.profile {
            body.push_str(&hub.render_prometheus(prefix));
        }
        self.server.publish(body);
    }
}

impl TelemetrySink for MetricsEndpoint {
    fn on_epoch(&mut self, source: &str, _epoch: u64, delta: &EpochDelta) {
        self.cumulative
            .entry(source.to_string())
            .or_default()
            .apply_delta(delta);
        self.republish();
    }

    fn on_watchdog(&mut self, source: &str, _event: &WatchdogEvent) {
        // Alarm tallies survive as a counter family so silent streams
        // and alarmed streams are distinguishable at scrape time.
        self.cumulative
            .entry(source.to_string())
            .or_default()
            .inc("watchdog.alarms", 1);
        self.republish();
    }

    fn on_run_end(&mut self, source: &str, _at: SimTime, totals: &MetricsRegistry) {
        // `totals` is authoritative for the engine's own metrics, but
        // watchdog alarm counts are stream-side observations that the
        // engine registry never carries — preserve them across the
        // overwrite.
        let alarms = self
            .cumulative
            .get(source)
            .and_then(|reg| reg.counters().get("watchdog.alarms").copied());
        let entry = self.cumulative.entry(source.to_string()).or_default();
        *entry = totals.clone();
        if let Some(n) = alarms {
            entry.inc("watchdog.alarms", n);
        }
        self.republish();
    }
}

/// Re-frames newline-delimited records as `u32` big-endian length
/// prefixes followed by the record bytes (newline stripped) — the
/// collector push wire format. Partial lines are buffered until their
/// newline arrives; `flush` forwards to the inner writer without
/// emitting incomplete frames.
pub struct LengthFramedWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> LengthFramedWriter<W> {
    /// Frame records into `inner`.
    pub fn new(inner: W) -> Self {
        LengthFramedWriter {
            inner,
            buf: Vec::new(),
        }
    }

    /// Unwrap the inner writer (any incomplete trailing line is
    /// discarded — frames are whole records only).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for LengthFramedWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        for &b in data {
            if b == b'\n' {
                let len = u32::try_from(self.buf.len()).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "record exceeds u32 frame")
                })?;
                self.inner.write_all(&len.to_be_bytes())?;
                self.inner.write_all(&self.buf)?;
                self.buf.clear();
            } else {
                self.buf.push(b);
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Decode failure on the length-framed push stream.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended inside a frame header or frame body: `got` of
    /// `expected` bytes of the current unit arrived before EOF.
    Truncated {
        /// Bytes the current header/body still needed.
        expected: usize,
        /// Bytes of it that actually arrived.
        got: usize,
    },
    /// A header announced a frame longer than the configured bound —
    /// a corrupt stream or a hostile peer; reading on would buffer
    /// unbounded garbage.
    Oversize {
        /// Announced frame length.
        len: u32,
        /// The configured bound ([`LengthFramedReader::with_max_frame`]).
        max: u32,
    },
    /// The underlying reader failed. Timeout-style errors
    /// (`WouldBlock`/`TimedOut`) are retryable: the reader's decode
    /// state is kept, so the next [`LengthFramedReader::read_frame`]
    /// resumes mid-frame.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { expected, got } => write!(
                f,
                "frame stream truncated: {got}/{expected} bytes of the current unit before EOF"
            ),
            FrameError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Default [`LengthFramedReader`] frame bound: far above any telemetry
/// record the workspace emits, far below anything that could OOM the
/// collector.
pub const MAX_FRAME_BYTES: u32 = 1 << 26; // 64 MiB

/// The receiving half of [`LengthFramedWriter`]: decodes `u32`
/// big-endian length-prefixed frames back into whole records.
///
/// Decode state is kept across calls, so a transient
/// [`FrameError::Io`] (e.g. a socket read timeout mid-frame) can be
/// retried without corrupting the stream position. EOF exactly on a
/// frame boundary is the clean end of stream (`Ok(None)`); EOF anywhere
/// else is [`FrameError::Truncated`].
pub struct LengthFramedReader<R: Read> {
    inner: R,
    max_frame: u32,
    header: [u8; 4],
    header_got: usize,
    body: Vec<u8>,
    body_need: Option<usize>,
}

impl<R: Read> LengthFramedReader<R> {
    /// Decode frames from `inner` with the default
    /// [`MAX_FRAME_BYTES`] bound.
    pub fn new(inner: R) -> Self {
        Self::with_max_frame(inner, MAX_FRAME_BYTES)
    }

    /// Decode frames from `inner`, rejecting frames above `max_frame`
    /// bytes with [`FrameError::Oversize`].
    pub fn with_max_frame(inner: R, max_frame: u32) -> Self {
        LengthFramedReader {
            inner,
            max_frame,
            header: [0; 4],
            header_got: 0,
            body: Vec::new(),
            body_need: None,
        }
    }

    /// Unwrap the inner reader, discarding any partially decoded frame.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// The next whole frame, `Ok(None)` at a clean end of stream.
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        // Header first (unless a body is already in progress).
        while self.body_need.is_none() {
            if self.header_got == 4 {
                let len = u32::from_be_bytes(self.header);
                if len > self.max_frame {
                    return Err(FrameError::Oversize {
                        len,
                        max: self.max_frame,
                    });
                }
                self.body_need = Some(len as usize);
                self.body.clear();
                break;
            }
            let n = self.inner.read(&mut self.header[self.header_got..4])?;
            if n == 0 {
                if self.header_got == 0 {
                    return Ok(None); // clean EOF between frames
                }
                return Err(FrameError::Truncated {
                    expected: 4,
                    got: self.header_got,
                });
            }
            self.header_got += n;
        }
        let need = self.body_need.expect("body length decoded above");
        while self.body.len() < need {
            let mut chunk = [0u8; 4096];
            let want = (need - self.body.len()).min(chunk.len());
            let n = self.inner.read(&mut chunk[..want])?;
            if n == 0 {
                return Err(FrameError::Truncated {
                    expected: need,
                    got: self.body.len(),
                });
            }
            self.body.extend_from_slice(&chunk[..n]);
        }
        self.header_got = 0;
        self.body_need = None;
        Ok(Some(std::mem::take(&mut self.body)))
    }
}

/// Std-only accept machinery for a collector: a non-blocking
/// `TcpListener` polled between ingest attempts, so a single thread can
/// interleave accepting worker pushes with deadline checks — no async
/// runtime, mirroring [`MetricsServer`].
pub struct FrameListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl FrameListener {
    /// Bind `addr` (`127.0.0.1:0` gives an ephemeral port).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(FrameListener { listener, addr })
    }

    /// The bound address (real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept one pending connection, or `None` when nobody is waiting.
    /// The returned stream is switched back to blocking mode with
    /// `read_timeout` applied, ready for a [`LengthFramedReader`].
    pub fn poll_accept(&self, read_timeout: std::time::Duration) -> io::Result<Option<TcpStream>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(read_timeout))?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_serves_published_body_on_ephemeral_port() {
        let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        server.publish("rip_up 1\n".to_string());
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port must be resolved");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain"));
        assert!(response.ends_with("rip_up 1\n"), "{response}");
        server.shutdown();
    }

    #[test]
    fn endpoint_republishes_on_each_epoch() {
        let mut endpoint = MetricsEndpoint::bind("127.0.0.1:0").expect("bind");
        let addr = endpoint.local_addr();
        let mut reg = MetricsRegistry::new();
        let prev = reg.snapshot(SimTime::ZERO);
        reg.inc("switch.packets", 5);
        let delta = reg.snapshot(SimTime::from_ns(100)).delta_since(&prev);
        endpoint.on_epoch("switch", 0, &delta);
        let scrape = || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"GET / HTTP/1.0\r\n\r\n")
                .expect("request");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("response");
            response
        };
        assert!(
            scrape().contains("rip_switch_packets_total{source=\"switch\"} 5"),
            "epoch totals must be scrapable mid-run"
        );
        reg.inc("switch.packets", 2);
        endpoint.on_run_end("switch", SimTime::from_ns(200), &reg);
        assert!(scrape().contains("rip_switch_packets_total{source=\"switch\"} 7"));
    }

    #[test]
    fn server_prepends_build_info_and_uptime_families() {
        let mut server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        server.set_build_info("ripsim", "1.2.3\"quoted\"");
        server.publish("rip_up 1\n".to_string());
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        // The version label is escaped per the exposition grammar and
        // each family carries exactly one HELP and one TYPE line.
        assert!(
            response.contains("ripsim_build_info{version=\"1.2.3\\\"quoted\\\"\"} 1\n"),
            "{response}"
        );
        for family in ["ripsim_build_info", "ripsim_uptime_seconds"] {
            assert_eq!(
                response
                    .matches(&format!("# TYPE {family} gauge\n"))
                    .count(),
                1,
                "{response}"
            );
            assert_eq!(
                response.matches(&format!("# HELP {family} ")).count(),
                1,
                "{response}"
            );
        }
        assert!(response.contains("\nripsim_uptime_seconds "), "{response}");
        assert!(response.ends_with("rip_up 1\n"), "{response}");
        server.shutdown();
    }

    #[test]
    fn endpoint_counts_watchdog_alarms_across_run_end() {
        let mut endpoint = MetricsEndpoint::bind("127.0.0.1:0").expect("bind");
        let addr = endpoint.local_addr();
        let event = WatchdogEvent {
            source: "plane00".into(),
            epoch: 3,
            at: SimTime::from_ns(100),
            kind: crate::WatchdogKind::Stall { epochs: 16 },
        };
        endpoint.on_watchdog("plane00", &event);
        endpoint.on_watchdog("plane00", &event);
        let mut totals = MetricsRegistry::new();
        totals.inc("switch.packets", 9);
        endpoint.on_run_end("plane00", SimTime::from_ns(200), &totals);
        endpoint.note_dropped_records("plane00", SimTime::from_ns(200), 5);
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET / HTTP/1.0\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        // run_end's authoritative totals must not erase the stream-side
        // alarm tally, and eviction counts surface as a gauge.
        assert!(
            response.contains("rip_watchdog_alarms_total{source=\"plane00\"} 2"),
            "{response}"
        );
        assert!(
            response.contains("rip_switch_packets_total{source=\"plane00\"} 9"),
            "{response}"
        );
        assert!(
            response.contains("rip_telemetry_dropped_records{source=\"plane00\"} 5"),
            "{response}"
        );
    }

    #[test]
    fn reader_round_trips_writer_frames() {
        let mut framed = LengthFramedWriter::new(Vec::new());
        framed.write_all(b"{\"a\":1}\n{\"bb\":2}\n").expect("write");
        framed.write_all(b"third line\n").expect("write");
        let bytes = framed.into_inner();
        let mut reader = LengthFramedReader::new(&bytes[..]);
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some(&b"{\"a\":1}"[..])
        );
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some(&b"{\"bb\":2}"[..])
        );
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some(&b"third line"[..])
        );
        assert!(reader.read_frame().unwrap().is_none(), "clean EOF");
        assert!(reader.read_frame().unwrap().is_none(), "EOF is sticky");
    }

    #[test]
    fn reader_types_truncation_and_oversize() {
        // EOF mid-header.
        let mut reader = LengthFramedReader::new(&[0u8, 0][..]);
        match reader.read_frame() {
            Err(FrameError::Truncated {
                expected: 4,
                got: 2,
            }) => {}
            other => panic!("want header truncation, got {other:?}"),
        }
        // EOF mid-body.
        let mut wire = 10u32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"abc");
        let mut reader = LengthFramedReader::new(&wire[..]);
        match reader.read_frame() {
            Err(FrameError::Truncated {
                expected: 10,
                got: 3,
            }) => {}
            other => panic!("want body truncation, got {other:?}"),
        }
        // Oversize header.
        let wire = u32::MAX.to_be_bytes();
        let mut reader = LengthFramedReader::with_max_frame(&wire[..], 1024);
        match reader.read_frame() {
            Err(FrameError::Oversize {
                len: u32::MAX,
                max: 1024,
            }) => {}
            other => panic!("want oversize, got {other:?}"),
        }
    }

    #[test]
    fn reader_resumes_after_transient_io_errors() {
        /// Yields one byte per read, interleaving `WouldBlock` errors —
        /// the shape of a socket with a short read timeout.
        struct Choppy<'a> {
            data: &'a [u8],
            pos: usize,
            tick: bool,
        }
        impl Read for Choppy<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.tick = !self.tick;
                if self.tick {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
                }
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut framed = LengthFramedWriter::new(Vec::new());
        framed.write_all(b"hello\nworld\n").expect("write");
        let wire = framed.into_inner();
        let mut reader = LengthFramedReader::new(Choppy {
            data: &wire,
            pos: 0,
            tick: false,
        });
        let mut frames = Vec::new();
        loop {
            match reader.read_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(frames, vec![b"hello".to_vec(), b"world".to_vec()]);
    }

    #[test]
    fn length_framing_wraps_whole_lines_only() {
        let mut framed = LengthFramedWriter::new(Vec::new());
        framed.write_all(b"{\"a\":1}\n{\"bb\"").expect("write");
        framed.write_all(b":2}\n").expect("write");
        let bytes = framed.into_inner();
        let mut want = Vec::new();
        want.extend_from_slice(&7u32.to_be_bytes());
        want.extend_from_slice(b"{\"a\":1}");
        want.extend_from_slice(&8u32.to_be_bytes());
        want.extend_from_slice(b"{\"bb\":2}");
        assert_eq!(bytes, want);
    }
}
