//! Live SLO watchdogs over the epoch-delta stream.
//!
//! A [`Watchdog`] wraps any inner [`TelemetrySink`] and evaluates each
//! source's per-epoch gauge series as it streams through: stalls (the
//! feeder keeps pulling but deliveries stop), drop-rate breaches,
//! degraded HBM capacity (dead channels, PR 1's fault accounting), and
//! mimic-lag violations reported post-run. Alarms become typed
//! [`WatchdogEvent`]s, forwarded to the inner sink through
//! [`TelemetrySink::on_watchdog`] (JSONL streams grow a
//! `{"record":"watchdog",...}` line) and retained behind a shared
//! [`WatchdogHandle`] so the driving binary can turn them into a
//! nonzero exit code after the sink was consumed by the engine.
//!
//! Everything the watchdog consumes is sim-time-deterministic, so a
//! same-seed run alarms (or stays silent) identically every time.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use rip_units::SimTime;
use serde::{Deserialize, Serialize};

use crate::{EpochDelta, MetricsRegistry, SpanEvent, TelemetrySink};

/// Alarm thresholds. `Default` gives conservative values that stay
/// silent on healthy runs: stalls need 16 quiet epochs after delivery
/// has begun, drops alarm above 50 % of an epoch's offered packets,
/// and any dead HBM channel alarms immediately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Consecutive epochs with feeder progress but zero new deliveries
    /// before a [`WatchdogKind::Stall`] fires (0 disables). The rule
    /// arms only after the source's first delivery, so pipeline fill
    /// latency can never false-alarm.
    pub stall_epochs: u64,
    /// Epoch drop fraction (`dropped / offered`, both per-epoch deltas)
    /// above which [`WatchdogKind::DropRate`] fires.
    pub max_drop_fraction: Option<f64>,
    /// Minimum per-epoch offered packets before the drop-rate rule is
    /// evaluated — keeps one drop out of two packets from reading as
    /// "50 % loss".
    pub min_epoch_offered: u64,
    /// Dead-HBM-channel count above which
    /// [`WatchdogKind::DegradedCapacity`] fires.
    pub max_dead_channels: Option<f64>,
    /// Mimic lag bound, nanoseconds, checked by
    /// [`Watchdog::observe_mimic_lag`].
    pub max_mimic_lag_ns: Option<f64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_epochs: 16,
            max_drop_fraction: Some(0.5),
            min_epoch_offered: 64,
            max_dead_channels: Some(0.0),
            max_mimic_lag_ns: None,
        }
    }
}

/// What tripped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WatchdogKind {
    /// No deliveries for `epochs` consecutive epochs while the feeder
    /// kept offering traffic.
    Stall {
        /// Quiet epochs counted.
        epochs: u64,
    },
    /// An epoch dropped more than the configured fraction of its
    /// offered packets.
    DropRate {
        /// Observed per-epoch `dropped / offered`.
        fraction: f64,
    },
    /// Dead HBM channels exceed the configured bound.
    DegradedCapacity {
        /// Dead channels reported by the capacity gauge.
        dead_channels: f64,
    },
    /// A mimicking comparison exceeded its lag bound.
    MimicMismatch {
        /// Observed worst lag, nanoseconds.
        max_lag_ns: f64,
        /// The configured bound, nanoseconds.
        bound_ns: f64,
    },
    /// A fleet worker disconnected, timed out or never completed its
    /// stream. Raised by the collector, not by epoch evaluation.
    WorkerLost {
        /// Worker id from the stream's `fleet_hello`.
        worker: u64,
    },
}

/// One fired alarm: which source, at which epoch boundary, and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchdogEvent {
    /// Stream source the alarm belongs to.
    pub source: String,
    /// Epoch index the breach was observed at (the mimic check, which
    /// runs post-run, reports the last seen epoch).
    pub epoch: u64,
    /// Sim time of the observation.
    pub at: SimTime,
    /// The breach.
    pub kind: WatchdogKind,
}

/// Per-source evaluation state.
#[derive(Debug, Default)]
struct SourceState {
    prev_delivered: f64,
    prev_pulled: f64,
    prev_dropped: f64,
    prev_offered: f64,
    delivered_once: bool,
    quiet_epochs: u64,
    drop_alarmed: bool,
    degraded_alarmed: bool,
    last_epoch: u64,
}

/// Shared view of fired alarms, usable after the [`Watchdog`] itself
/// was boxed into an engine.
#[derive(Debug, Clone, Default)]
pub struct WatchdogHandle {
    events: Arc<Mutex<Vec<WatchdogEvent>>>,
}

impl WatchdogHandle {
    /// All alarms fired so far, in stream order.
    pub fn events(&self) -> Vec<WatchdogEvent> {
        self.events.lock().expect("watchdog lock").clone()
    }

    /// True once any alarm fired.
    pub fn fired(&self) -> bool {
        !self.events.lock().expect("watchdog lock").is_empty()
    }
}

/// The watchdog tee: forwards every record to `inner` unchanged and
/// raises [`WatchdogEvent`]s on threshold breaches. Alarms use episode
/// semantics — each rule fires once when breached and re-arms when the
/// condition clears — so a sustained fault produces one alarm, not one
/// per epoch.
pub struct Watchdog<S: TelemetrySink> {
    cfg: WatchdogConfig,
    inner: S,
    state: BTreeMap<String, SourceState>,
    events: Arc<Mutex<Vec<WatchdogEvent>>>,
}

impl<S: TelemetrySink> Watchdog<S> {
    /// Wrap `inner`, returning the tee and the handle that outlives it.
    pub fn new(cfg: WatchdogConfig, inner: S) -> (Self, WatchdogHandle) {
        let events: Arc<Mutex<Vec<WatchdogEvent>>> = Arc::default();
        let handle = WatchdogHandle {
            events: events.clone(),
        };
        (
            Watchdog {
                cfg,
                inner,
                state: BTreeMap::new(),
                events,
            },
            handle,
        )
    }

    /// The wrapped sink.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    fn raise(&mut self, source: &str, epoch: u64, at: SimTime, kind: WatchdogKind) {
        let event = WatchdogEvent {
            source: source.to_string(),
            epoch,
            at,
            kind,
        };
        self.events
            .lock()
            .expect("watchdog lock")
            .push(event.clone());
        self.inner.on_watchdog(source, &event);
    }

    /// Post-run mimic check: alarm when the mimicking comparison's
    /// worst lag exceeds the configured bound. (The mimic checker
    /// produces its lag statistics at end of run, outside the epoch
    /// stream, so the caller feeds them in explicitly.)
    pub fn observe_mimic_lag(&mut self, source: &str, at: SimTime, max_lag_ns: f64) {
        if let Some(bound_ns) = self.cfg.max_mimic_lag_ns {
            if max_lag_ns > bound_ns {
                let epoch = self.state.get(source).map_or(0, |s| s.last_epoch);
                self.raise(
                    source,
                    epoch,
                    at,
                    WatchdogKind::MimicMismatch {
                        max_lag_ns,
                        bound_ns,
                    },
                );
            }
        }
    }

    fn evaluate(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        let at = delta.to();
        let gauge = |name: &str| delta.gauges().get(name).map(|g| g.value);
        let st = self.state.entry(source.to_string()).or_default();
        st.last_epoch = epoch;
        let mut alarms: Vec<WatchdogKind> = Vec::new();

        // Stall: feeder progressed, deliveries did not — after the
        // pipeline has proven it can deliver at all.
        if let (Some(pulled), Some(delivered)) = (
            gauge("switch.feeder.pulled_packets"),
            gauge("switch.packets.delivered"),
        ) {
            if delivered > st.prev_delivered {
                st.delivered_once = true;
                st.quiet_epochs = 0;
            } else if st.delivered_once && pulled > st.prev_pulled {
                st.quiet_epochs += 1;
                if self.cfg.stall_epochs > 0 && st.quiet_epochs == self.cfg.stall_epochs {
                    alarms.push(WatchdogKind::Stall {
                        epochs: st.quiet_epochs,
                    });
                }
            }
            st.prev_pulled = pulled;
            st.prev_delivered = delivered;
        }

        // Drop rate over this epoch's offered packets.
        if let (Some(limit), Some(dropped), Some(offered)) = (
            self.cfg.max_drop_fraction,
            gauge("switch.packets.dropped"),
            gauge("switch.packets.offered"),
        ) {
            let epoch_offered = offered - st.prev_offered;
            let epoch_dropped = dropped - st.prev_dropped;
            if epoch_offered >= self.cfg.min_epoch_offered as f64 {
                let fraction = epoch_dropped / epoch_offered;
                if fraction > limit {
                    if !st.drop_alarmed {
                        st.drop_alarmed = true;
                        alarms.push(WatchdogKind::DropRate { fraction });
                    }
                } else {
                    st.drop_alarmed = false;
                }
            }
            st.prev_offered = offered;
            st.prev_dropped = dropped;
        }

        // Degraded capacity: dead channels over the bound.
        if let (Some(limit), Some(dead)) = (
            self.cfg.max_dead_channels,
            gauge("switch.capacity.dead_channels"),
        ) {
            if dead > limit {
                if !st.degraded_alarmed {
                    st.degraded_alarmed = true;
                    alarms.push(WatchdogKind::DegradedCapacity {
                        dead_channels: dead,
                    });
                }
            } else {
                st.degraded_alarmed = false;
            }
        }

        for kind in alarms {
            self.raise(source, epoch, at, kind);
        }
    }
}

impl<S: TelemetrySink> TelemetrySink for Watchdog<S> {
    fn on_epoch(&mut self, source: &str, epoch: u64, delta: &EpochDelta) {
        self.inner.on_epoch(source, epoch, delta);
        self.evaluate(source, epoch, delta);
    }

    fn on_span(&mut self, source: &str, span: &SpanEvent) {
        self.inner.on_span(source, span);
    }

    fn on_run_end(&mut self, source: &str, at: SimTime, totals: &MetricsRegistry) {
        self.inner.on_run_end(source, at, totals);
    }

    fn on_watchdog(&mut self, source: &str, event: &WatchdogEvent) {
        // A replayed watchdog record (e.g. a staged stream) counts as
        // this watchdog's own observation too.
        self.events
            .lock()
            .expect("watchdog lock")
            .push(event.clone());
        self.inner.on_watchdog(source, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Snapshot};
    use rip_units::TimeDelta;

    /// Build an epoch delta carrying the live gauge series.
    fn delta_at(
        epoch: u64,
        period: TimeDelta,
        reg: &mut MetricsRegistry,
        prev: &mut Snapshot,
        gauges: &[(&str, f64)],
    ) -> EpochDelta {
        let at = SimTime::from_ps(period.as_ps() * (epoch + 1));
        for &(name, v) in gauges {
            reg.set_gauge(name, at, v);
        }
        let snap = reg.snapshot(at);
        let d = snap.delta_since(prev);
        *prev = snap;
        d
    }

    #[test]
    fn healthy_progress_never_alarms() {
        let (mut wd, handle) = Watchdog::new(WatchdogConfig::default(), MemorySink::new());
        let period = TimeDelta::from_ns(1000);
        let mut reg = MetricsRegistry::new();
        let mut prev = Snapshot::empty();
        for epoch in 0..100u64 {
            let d = delta_at(
                epoch,
                period,
                &mut reg,
                &mut prev,
                &[
                    ("switch.feeder.pulled_packets", (epoch * 100) as f64),
                    ("switch.packets.delivered", (epoch * 90) as f64),
                    ("switch.packets.offered", (epoch * 100) as f64),
                    ("switch.packets.dropped", 0.0),
                    ("switch.capacity.dead_channels", 0.0),
                ],
            );
            wd.on_epoch("switch", epoch, &d);
        }
        assert!(
            !handle.fired(),
            "healthy run alarmed: {:?}",
            handle.events()
        );
    }

    #[test]
    fn stall_fires_once_after_k_quiet_epochs() {
        let cfg = WatchdogConfig {
            stall_epochs: 4,
            ..WatchdogConfig::default()
        };
        let (mut wd, handle) = Watchdog::new(cfg, MemorySink::new());
        let period = TimeDelta::from_ns(1000);
        let mut reg = MetricsRegistry::new();
        let mut prev = Snapshot::empty();
        // Delivery happens, then freezes while the feeder keeps going.
        for epoch in 0..20u64 {
            let delivered = if epoch < 5 { epoch * 10 } else { 50 };
            let d = delta_at(
                epoch,
                period,
                &mut reg,
                &mut prev,
                &[
                    ("switch.feeder.pulled_packets", (epoch * 100) as f64),
                    ("switch.packets.delivered", delivered as f64),
                ],
            );
            wd.on_epoch("switch", epoch, &d);
        }
        let events = handle.events();
        assert_eq!(events.len(), 1, "stall must fire exactly once: {events:?}");
        assert!(matches!(events[0].kind, WatchdogKind::Stall { epochs: 4 }));
        // Last delivery increment at epoch 5; quiet epochs 6..=9.
        assert_eq!(events[0].epoch, 9);
    }

    #[test]
    fn pipeline_fill_does_not_false_stall() {
        let cfg = WatchdogConfig {
            stall_epochs: 2,
            ..WatchdogConfig::default()
        };
        let (mut wd, handle) = Watchdog::new(cfg, MemorySink::new());
        let period = TimeDelta::from_ns(1000);
        let mut reg = MetricsRegistry::new();
        let mut prev = Snapshot::empty();
        // 10 epochs of arrivals before the first delivery: no alarm.
        for epoch in 0..10u64 {
            let d = delta_at(
                epoch,
                period,
                &mut reg,
                &mut prev,
                &[
                    ("switch.feeder.pulled_packets", (epoch * 100) as f64),
                    ("switch.packets.delivered", 0.0),
                ],
            );
            wd.on_epoch("switch", epoch, &d);
        }
        assert!(!handle.fired(), "fill latency must not alarm");
    }

    #[test]
    fn drop_rate_and_degraded_capacity_alarm_per_episode() {
        let (mut wd, handle) = Watchdog::new(WatchdogConfig::default(), MemorySink::new());
        let period = TimeDelta::from_ns(1000);
        let mut reg = MetricsRegistry::new();
        let mut prev = Snapshot::empty();
        for epoch in 0..6u64 {
            // Epochs 2..4: a dead channel and 80 % epoch loss.
            let degraded = (2..4).contains(&epoch);
            let offered = (epoch + 1) * 1000;
            let dropped = if degraded { (epoch - 1) * 800 } else { 0 };
            let d = delta_at(
                epoch,
                period,
                &mut reg,
                &mut prev,
                &[
                    ("switch.packets.offered", offered as f64),
                    ("switch.packets.dropped", dropped as f64),
                    (
                        "switch.capacity.dead_channels",
                        if degraded { 1.0 } else { 0.0 },
                    ),
                ],
            );
            wd.on_epoch("switch", epoch, &d);
        }
        let kinds: Vec<WatchdogKind> = handle.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds.len(), 2, "one alarm per rule per episode: {kinds:?}");
        let events = handle.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, WatchdogKind::DropRate { fraction } if fraction > 0.5)));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, WatchdogKind::DegradedCapacity { dead_channels } if dead_channels == 1.0)));
    }

    #[test]
    fn mimic_lag_over_bound_alarms() {
        let cfg = WatchdogConfig {
            max_mimic_lag_ns: Some(500.0),
            ..WatchdogConfig::default()
        };
        let (mut wd, handle) = Watchdog::new(cfg, MemorySink::new());
        wd.observe_mimic_lag("mimic", SimTime::from_ns(100), 499.0);
        assert!(!handle.fired());
        wd.observe_mimic_lag("mimic", SimTime::from_ns(100), 501.0);
        let events = handle.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, WatchdogKind::MimicMismatch { .. }));
    }
}
