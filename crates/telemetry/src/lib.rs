//! Deterministic telemetry for the router-in-a-package simulator.
//!
//! Every metric in this crate is stamped with [`SimTime`] (integer
//! picoseconds) — never wall-clock — so that two runs of the same
//! binary at the same seed produce byte-identical exports. The three
//! metric kinds are:
//!
//! * **counters** — monotonically increasing `u64` totals;
//! * **gauges** — a last-written `f64` value with the sim time it was
//!   written at;
//! * **log-bucketed histograms** — [`LogHistogram`], whose buckets are
//!   derived from the bit pattern of the sample (integer arithmetic
//!   only, no `log2`), making merges exactly associative and
//!   commutative.
//!
//! All registries key their metrics through `BTreeMap`, so iteration
//! and serde output order is the lexicographic name order regardless of
//! insertion order — a requirement for the golden-report snapshot tests
//! and the `BENCH_*.json` stable schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod epoch;
mod fleet;
mod flight;
mod net;
mod profile;
mod sink;
mod trace;
mod watchdog;

use std::collections::BTreeMap;

use rip_units::SimTime;
use serde::{Deserialize, Serialize};

pub use epoch::{EpochClock, EpochDelta, Snapshot};
pub use fleet::{
    parse_plane_source, parse_sink_line, plane_source_name, LineError, ParsedLine, PlaneMerge,
};
pub use flight::{FlightEpoch, FlightRecorder, FlightTee};
pub use net::{
    FrameError, FrameListener, LengthFramedReader, LengthFramedWriter, MetricsEndpoint,
    MetricsServer, MAX_FRAME_BYTES,
};
pub use profile::{
    prof_add, prof_lap, prof_now, prof_now_sampled, prof_renew, EngineProfiler, Phase, PhaseAcc,
    PhaseSample, PhaseScope, ProfileHub, ProfileRecord, SAMPLE_STRIDE,
};
pub use sink::{
    intern_stage, FanoutSink, JsonlSink, MemorySink, PrometheusSink, SharedSink, SinkRecord,
    SpanEvent, TelemetrySink, SPAN_STAGES,
};
pub use trace::{
    ChromeTraceSink, TraceRecorder, TraceWindow, TraceWindowError, PID_DYNAMIC_BASE, PID_FRAMES,
    PID_HBM,
};
pub use watchdog::{Watchdog, WatchdogConfig, WatchdogEvent, WatchdogHandle, WatchdogKind};

/// Sub-bucket resolution of [`LogHistogram`]: each power-of-two octave
/// is split into `2^SUB_BITS` buckets, so the relative width of a
/// bucket is at most `2^-SUB_BITS` = 25 %.
const SUB_BITS: u32 = 2;
const SUBS_PER_OCTAVE: u32 = 1 << SUB_BITS;
/// Largest finite bucket index: biased exponent 2046, top sub-bucket.
const TOP_BUCKET: u32 = 1 + 2046 * SUBS_PER_OCTAVE + (SUBS_PER_OCTAVE - 1);

/// The bucket index holding a sample.
///
/// Bucket 0 collects every non-positive sample; positive finite
/// samples map to `1 + exponent·4 + top-2-mantissa-bits`, computed
/// from the IEEE-754 bit pattern so the mapping is pure integer
/// arithmetic (deterministic across platforms, unlike `log2`). NaN
/// never reaches bucketing: [`LogHistogram::record_n`] rejects NaN
/// samples before calling this (counting them in
/// [`LogHistogram::rejected`]); the defensive comparison below would
/// still route one to bucket 0 if it ever slipped through.
fn bucket_of(v: f64) -> u32 {
    // Not `v <= 0.0`: `partial_cmp` also catches NaN defensively.
    if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    if v.is_infinite() {
        return TOP_BUCKET;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as u32;
    let sub = ((bits >> (52 - SUB_BITS)) & u64::from(SUBS_PER_OCTAVE - 1)) as u32;
    1 + exp * SUBS_PER_OCTAVE + sub
}

/// Lower edge of a bucket (inclusive). Bucket 0's edge is 0.
fn bucket_lower_edge(idx: u32) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let exp = u64::from((idx - 1) / SUBS_PER_OCTAVE);
    let sub = u64::from((idx - 1) % SUBS_PER_OCTAVE);
    f64::from_bits((exp << 52) | (sub << (52 - SUB_BITS)))
}

/// Upper edge of a bucket (exclusive). The topmost finite bucket's
/// upper edge is `+inf`.
fn bucket_upper_edge(idx: u32) -> f64 {
    if idx >= TOP_BUCKET {
        return f64::INFINITY;
    }
    bucket_lower_edge(idx + 1)
}

/// A mergeable log-bucketed histogram of non-negative samples.
///
/// Buckets split each power-of-two octave four ways (≤ 25 % relative
/// width); counts live in a `(bucket index, count)` list kept sorted by
/// index, so merging two histograms is bucket-wise integer addition —
/// exactly associative and commutative, unlike any scheme that
/// accumulates an `f64` sum. Quantile queries return the lower edge of
/// the bucket holding the nearest-rank sample, guaranteed within one
/// bucket of the exact sorted-sample answer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    count: u64,
    /// Smallest sample seen (`None` when empty).
    min: Option<f64>,
    /// Largest sample seen (`None` when empty).
    max: Option<f64>,
    /// `(bucket index, count)`, sorted by index, no zero counts.
    buckets: Vec<(u32, u64)>,
    /// NaN samples rejected by [`LogHistogram::record_n`]. They are
    /// counted (so data-quality problems are visible) but never enter
    /// `count`, the buckets, or min/max.
    #[serde(default)]
    rejected: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    ///
    /// NaN samples are rejected: they do not enter `count`, the
    /// buckets, or min/max, but they are tallied in
    /// [`LogHistogram::rejected`] so the data-quality problem that
    /// produced them stays visible.
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        if v.is_nan() {
            self.rejected += n;
            return;
        }
        self.count += n;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        let idx = bucket_of(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += n,
            Err(pos) => self.buckets.insert(pos, (idx, n)),
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN samples rejected (never bucketed).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// True when no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample recorded.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample recorded.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        self.count += other.count;
        self.rejected += other.rejected;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }

    /// The `[lower, upper)` edges of the bucket holding the
    /// nearest-rank sample for quantile `q` (clamped to `[0, 1]`).
    ///
    /// The exact sorted-sample quantile is guaranteed to lie inside the
    /// returned interval, because bucketing is monotone: walking
    /// buckets in index order visits samples in (bucket-resolution)
    /// sorted order.
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return Some((bucket_lower_edge(idx), bucket_upper_edge(idx)));
            }
        }
        None
    }

    /// Nearest-rank quantile, at bucket resolution (the lower edge of
    /// the bucket holding the exact answer — within 25 % relative
    /// error by construction).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_bounds(q).map(|(lo, _)| lo)
    }

    /// Approximate mean, reconstructed from bucket lower edges. Derived
    /// from the (exactly mergeable) bucket counts rather than a stored
    /// `f64` sum, so merge order can never change it.
    pub fn approx_mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let sum: f64 = self
            .buckets
            .iter()
            .map(|&(idx, n)| bucket_lower_edge(idx) * n as f64)
            .sum();
        Some(sum / self.count as f64)
    }

    /// The non-empty buckets as `(lower_edge, count)` pairs, in value
    /// order.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(idx, n)| (bucket_lower_edge(idx), n))
    }

    /// The histogram of samples recorded since `prev`, where `prev` is
    /// an earlier state of *this* histogram (cumulative counts only
    /// grow).
    ///
    /// Counts, rejects and buckets are subtracted; `min`/`max` keep the
    /// *newer cumulative* values. Cumulative min is non-increasing and
    /// max non-decreasing, so when two consecutive diffs are merged the
    /// min-of-min / max-of-max rule in [`LogHistogram::merge`] yields
    /// exactly the later diff's values — which keeps diff merging
    /// associative and makes replaying every diff reconstruct the
    /// cumulative histogram byte-identically.
    pub fn diff_since(&self, prev: &LogHistogram) -> LogHistogram {
        debug_assert!(self.count >= prev.count, "cumulative count went backwards");
        debug_assert!(self.rejected >= prev.rejected);
        let mut buckets = Vec::new();
        for &(idx, n) in &self.buckets {
            let before = prev
                .buckets
                .binary_search_by_key(&idx, |&(i, _)| i)
                .map_or(0, |pos| prev.buckets[pos].1);
            if n > before {
                buckets.push((idx, n - before));
            }
        }
        LogHistogram {
            count: self.count - prev.count,
            min: self.min,
            max: self.max,
            buckets,
            rejected: self.rejected - prev.rejected,
        }
    }
}

/// A last-written value with the sim time it was written at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gauge {
    /// Sim time of the write.
    pub at: SimTime,
    /// The value written.
    pub value: f64,
}

/// A named-metric registry: counters, gauges and log-bucketed
/// histograms, all keyed through `BTreeMap` so serialization order is
/// the lexicographic name order (deterministic and insertion-order
/// independent).
///
/// Registries merge: counters add, histograms add bucket-wise, and a
/// gauge keeps the write with the latest sim time (ties broken toward
/// the larger value), so merging per-plane registries is associative,
/// commutative, and independent of how work was partitioned over
/// planes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, Gauge>,
    pub(crate) histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Write a gauge value at sim time `at`.
    pub fn set_gauge(&mut self, name: &str, at: SimTime, value: f64) {
        self.gauges.insert(name.to_string(), Gauge { at, value });
    }

    /// The named gauge, if ever written.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.get(name).copied()
    }

    /// Record one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> &BTreeMap<String, Gauge> {
        &self.gauges
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> &BTreeMap<String, LogHistogram> {
        &self.histograms
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges keep the latest-`at` write (ties
    /// toward the larger value).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, &g) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|cur| {
                    if (g.at, g.value) > (cur.at, cur.value) {
                        *cur = g;
                    }
                })
                .or_insert(g);
        }
    }

    /// Freeze the current state into a [`Snapshot`] stamped `at`, for
    /// later [`Snapshot::delta_since`] epoch-delta extraction.
    pub fn snapshot(&self, at: SimTime) -> Snapshot {
        Snapshot::new(at, self.clone())
    }

    /// Replay an epoch delta into this registry: counters add,
    /// histograms merge bucket-wise, and each gauge carried by the
    /// delta overwrites the current value (the delta's gauge *is* the
    /// cumulative value as of that epoch, not an increment).
    ///
    /// Applying every epoch delta of a run, in order, onto an empty
    /// registry reconstructs the final registry byte-identically.
    pub fn apply_delta(&mut self, delta: &EpochDelta) {
        for (name, &v) in delta.counters() {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in delta.histograms() {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, &g) in delta.gauges() {
            self.gauges.insert(name.clone(), g);
        }
    }

    /// Merge another registry under a name prefix (`prefix` + `.` +
    /// original name) — used to keep per-plane breakdowns alongside the
    /// merged totals.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(format!("{prefix}.{name}")).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(format!("{prefix}.{name}"))
                .or_default()
                .merge(h);
        }
        for (name, &g) in &other.gauges {
            let key = format!("{prefix}.{name}");
            self.gauges
                .entry(key)
                .and_modify(|cur| {
                    if (g.at, g.value) > (cur.at, cur.value) {
                        *cur = g;
                    }
                })
                .or_insert(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_in_value() {
        let vals = [
            1e-300, 0.001, 0.5, 0.999, 1.0, 1.24, 1.25, 1.9, 2.0, 3.5, 4.0, 1e3, 1e9, 1e300,
        ];
        for w in vals.windows(2) {
            assert!(bucket_of(w[0]) <= bucket_of(w[1]), "{} vs {}", w[0], w[1]);
        }
        // Every value lies inside its own bucket's edges.
        for &v in &vals {
            let idx = bucket_of(v);
            assert!(
                bucket_lower_edge(idx) <= v && v < bucket_upper_edge(idx),
                "{v}"
            );
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for &v in &[1.0, 1.3, 7.0, 1000.0, 1e12] {
            let idx = bucket_of(v);
            let (lo, hi) = (bucket_lower_edge(idx), bucket_upper_edge(idx));
            assert!(hi / lo <= 1.0 + 1.0 / SUBS_PER_OCTAVE as f64 + 1e-12);
        }
    }

    #[test]
    fn zero_and_negative_go_to_bucket_zero() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NEG_INFINITY), 0);
        assert_eq!(bucket_of(f64::INFINITY), TOP_BUCKET);
    }

    #[test]
    fn histogram_quantile_brackets_exact() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<f64> = (1..=1000).map(|i| (i as f64) * 1.7).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let exact = samples[((q * 999.0_f64).round()) as usize];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(
                lo <= exact && exact < hi,
                "q={q}: {exact} not in [{lo},{hi})"
            );
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..100 {
            let v = (i as f64) * 3.3 + 0.1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        // And the other order.
        let mut merged2 = b;
        merged2.merge(&a);
        assert_eq!(merged2, all);
    }

    #[test]
    fn nan_samples_are_rejected_and_counted() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(f64::NAN);
        h.record_n(f64::NAN, 3);
        assert_eq!(h.count(), 1, "NaN must not enter the sample count");
        assert_eq!(h.rejected(), 4);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1.0));
        assert_eq!(h.buckets().map(|(_, n)| n).sum::<u64>(), 1);
        // Rejection counts survive merges and serde round-trips.
        let mut other = LogHistogram::new();
        other.record(f64::NAN);
        h.merge(&other);
        assert_eq!(h.rejected(), 5);
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        // Pre-`rejected` serialized histograms still deserialize.
        let legacy: LogHistogram =
            serde_json::from_str(r#"{"count":0,"min":null,"max":null,"buckets":[]}"#).unwrap();
        assert_eq!(legacy.rejected(), 0);
    }

    #[test]
    fn registry_merge_adds_counters_and_keeps_latest_gauge() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc("pkts", 3);
        b.inc("pkts", 4);
        a.set_gauge("depth", SimTime::from_ns(10), 1.0);
        b.set_gauge("depth", SimTime::from_ns(20), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("pkts"), 7);
        assert_eq!(a.gauge("depth").unwrap().value, 2.0);
        assert_eq!(a.gauge("depth").unwrap().at, SimTime::from_ns(20));
    }

    #[test]
    fn serialization_is_name_ordered_regardless_of_insertion() {
        let mut a = MetricsRegistry::new();
        a.inc("zulu", 1);
        a.inc("alpha", 2);
        let mut b = MetricsRegistry::new();
        b.inc("alpha", 2);
        b.inc("zulu", 1);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
        let alpha = ja.find("alpha").unwrap();
        let zulu = ja.find("zulu").unwrap();
        assert!(alpha < zulu);
    }
}
