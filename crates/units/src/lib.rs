//! Typed physical quantities for the petabit router-in-a-package reproduction.
//!
//! Every quantity that crosses a crate boundary in this workspace is a
//! newtype from this crate, so that bits are never confused with bytes,
//! picoseconds with nanoseconds, or per-lane with aggregate rates. The
//! conventions are:
//!
//! * **Data** is stored in **bits** ([`DataSize`]), with byte-oriented
//!   constructors, because the paper mixes both freely (4 KB batches,
//!   2,048-bit interfaces).
//! * **Time** is stored in integer **picoseconds** ([`SimTime`] for instants,
//!   [`TimeDelta`] for durations). All HBM/SRAM timings in the paper are
//!   exact multiples of 1 ps, so simulations are exact and deterministic —
//!   no floating-point drift in event ordering.
//! * **Rates** are stored in **bits per second** ([`DataRate`]), with exact
//!   integer transfer-time computation via 128-bit intermediates.
//! * Analysis-only quantities ([`Power`], [`Energy`], [`Area`]) are `f64`
//!   because §4 of the paper is closed-form arithmetic, not simulation.
//!
//! # Example
//!
//! ```
//! use rip_units::{DataRate, DataSize};
//!
//! // One HBM4 channel: 64 bits wide at 10 Gb/s per bit.
//! let channel = DataRate::from_gbps(64 * 10);
//! // Transferring one 1 KiB PFI segment takes exactly 12.8 ns.
//! let segment = DataSize::from_bytes(1024);
//! assert_eq!(channel.transfer_time(segment).as_ps(), 12_800);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod data;
mod power;
mod rate;
mod time;

pub use area::Area;
pub use data::DataSize;
pub use power::{Energy, Power};
pub use rate::DataRate;
pub use time::{SimTime, TimeDelta};

/// Number of picoseconds in a nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Number of picoseconds in a microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Number of picoseconds in a millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Number of picoseconds in a second.
pub const PS_PER_S: u64 = 1_000_000_000_000;
