//! Power and energy quantities for the §4 design analysis.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

use crate::DataRate;

/// Electrical power, in watts.
///
/// Used by the closed-form §4 analysis (processing chiplets, HBM stacks,
/// OEO conversion) — `f64` because the paper's arithmetic is approximate
/// by construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power {
    watts: f64,
}

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power { watts: 0.0 };

    /// Construct from watts.
    pub const fn from_watts(watts: f64) -> Self {
        Power { watts }
    }

    /// Construct from kilowatts.
    pub const fn from_kw(kw: f64) -> Self {
        Power {
            watts: kw * 1_000.0,
        }
    }

    /// The power in watts.
    pub const fn watts(self) -> f64 {
        self.watts
    }

    /// The power in kilowatts.
    pub fn kilowatts(self) -> f64 {
        self.watts / 1_000.0
    }

    /// Fraction `self / total`.
    pub fn fraction_of(self, total: Power) -> f64 {
        self.watts / total.watts
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power {
            watts: self.watts + rhs.watts,
        }
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power {
            watts: self.watts - rhs.watts,
        }
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power {
            watts: self.watts * rhs,
        }
    }
}

impl Mul<u64> for Power {
    type Output = Power;
    fn mul(self, rhs: u64) -> Power {
        self * rhs as f64
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power {
            watts: self.watts / rhs,
        }
    }
}

impl Div<Power> for Power {
    type Output = f64;
    fn div(self, rhs: Power) -> f64 {
        self.watts / rhs.watts
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.watts.abs() >= 1_000.0 {
            write!(f, "{:.2} kW", self.kilowatts())
        } else {
            write!(f, "{:.1} W", self.watts)
        }
    }
}

/// Energy per bit, in picojoules per bit.
///
/// The OEO conversion figure of merit used in §4 (≈ 1.15 pJ/bit for
/// commercially available silicon photonics).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy {
    pj_per_bit: f64,
}

impl Energy {
    /// Construct from picojoules per bit.
    pub const fn from_pj_per_bit(pj_per_bit: f64) -> Self {
        Energy { pj_per_bit }
    }

    /// Picojoules per bit.
    pub const fn pj_per_bit(self) -> f64 {
        self.pj_per_bit
    }

    /// Sustained power of converting a stream at `rate`:
    /// `P [W] = pJ/bit × bits/s × 1e-12`.
    pub fn power_at(self, rate: DataRate) -> Power {
        Power::from_watts(self.pj_per_bit * rate.bps() as f64 * 1e-12)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} pJ/bit", self.pj_per_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_oeo_power() {
        // 1.15 pJ/bit at 81.92 Tb/s of I/O ~= 94 W per HBM switch (paper §4).
        let oeo = Energy::from_pj_per_bit(1.15);
        let io = DataRate::from_gbps(81_920);
        let p = oeo.power_at(io);
        assert!((p.watts() - 94.2).abs() < 0.1, "got {}", p.watts());
    }

    #[test]
    fn arithmetic() {
        let a = Power::from_watts(400.0);
        let b = Power::from_watts(300.0);
        assert_eq!((a + b).watts(), 700.0);
        assert_eq!((a - b).watts(), 100.0);
        assert_eq!((a * 2.0).watts(), 800.0);
        assert_eq!((a / 2.0).watts(), 200.0);
        assert!((b.fraction_of(a + b) - 3.0 / 7.0).abs() < 1e-12);
        let total: Power = vec![a, b].into_iter().sum();
        assert_eq!(total.watts(), 700.0);
    }

    #[test]
    fn display() {
        assert_eq!(Power::from_watts(794.0).to_string(), "794.0 W");
        assert_eq!(Power::from_kw(12.7).to_string(), "12.70 kW");
        assert_eq!(Energy::from_pj_per_bit(1.15).to_string(), "1.15 pJ/bit");
    }
}
