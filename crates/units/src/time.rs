//! Simulation time: instants and durations in integer picoseconds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

use crate::{PS_PER_MS, PS_PER_NS, PS_PER_S, PS_PER_US};

/// A duration, in integer picoseconds.
///
/// All device timings in the reproduced design (HBM tRCD/tRP/tFAW, SRAM
/// clock periods, wavelength serialization times) are exact integer
/// picosecond counts, so simulated schedules are exact and reproducible.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta {
    ps: u64,
}

impl TimeDelta {
    /// Zero duration.
    pub const ZERO: TimeDelta = TimeDelta { ps: 0 };

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        TimeDelta { ps }
    }

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        TimeDelta { ps: ns * PS_PER_NS }
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        TimeDelta { ps: us * PS_PER_US }
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        TimeDelta { ps: ms * PS_PER_MS }
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta { ps: s * PS_PER_S }
    }

    /// The duration in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.ps
    }

    /// The duration in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.ps as f64 / PS_PER_NS as f64
    }

    /// The duration in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.ps as f64 / PS_PER_US as f64
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.ps as f64 / PS_PER_MS as f64
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.ps as f64 / PS_PER_S as f64
    }

    /// True if zero.
    pub const fn is_zero(self) -> bool {
        self.ps == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta {
            ps: self.ps.saturating_sub(rhs.ps),
        }
    }

    /// The minimum of two durations.
    pub fn min(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta {
            ps: self.ps.min(rhs.ps),
        }
    }

    /// The maximum of two durations.
    pub fn max(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta {
            ps: self.ps.max(rhs.ps),
        }
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta {
            ps: self.ps + rhs.ps,
        }
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.ps += rhs.ps;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta {
            ps: self
                .ps
                .checked_sub(rhs.ps)
                .expect("TimeDelta subtraction underflow"),
        }
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta { ps: self.ps * rhs }
    }
}

impl Mul<TimeDelta> for u64 {
    type Output = TimeDelta;
    fn mul(self, rhs: TimeDelta) -> TimeDelta {
        rhs * self
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta { ps: self.ps / rhs }
    }
}

impl Div<TimeDelta> for TimeDelta {
    type Output = f64;
    /// Ratio of two durations.
    fn div(self, rhs: TimeDelta) -> f64 {
        self.ps as f64 / rhs.ps as f64
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.ps;
        if ps == 0 {
            write!(f, "0 ps")
        } else if ps.is_multiple_of(PS_PER_S) {
            write!(f, "{} s", ps / PS_PER_S)
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else {
            write!(f, "{ps} ps")
        }
    }
}

/// An instant in simulated time, in integer picoseconds since simulation
/// start.
///
/// A `u64` of picoseconds wraps after ~5,100 hours of simulated time — far
/// beyond any run in this workspace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    ps: u64,
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime { ps: 0 };

    /// Construct from picoseconds since the epoch.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime { ps }
    }

    /// Construct from nanoseconds since the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime { ps: ns * PS_PER_NS }
    }

    /// Picoseconds since the epoch.
    pub const fn as_ps(self) -> u64 {
        self.ps
    }

    /// Duration since the epoch.
    pub const fn since_epoch(self) -> TimeDelta {
        TimeDelta::from_ps(self.ps)
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> TimeDelta {
        TimeDelta::from_ps(
            self.ps
                .checked_sub(earlier.ps)
                .expect("SimTime::since: earlier instant is after self"),
        )
    }

    /// Saturating duration since another instant (zero if `other` is later).
    pub const fn saturating_since(self, other: SimTime) -> TimeDelta {
        TimeDelta::from_ps(self.ps.saturating_sub(other.ps))
    }

    /// The later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime {
            ps: self.ps.max(rhs.ps),
        }
    }

    /// The earlier of two instants.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime {
            ps: self.ps.min(rhs.ps),
        }
    }
}

impl Add<TimeDelta> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: TimeDelta) -> SimTime {
        SimTime {
            ps: self.ps + rhs.as_ps(),
        }
    }
}

impl AddAssign<TimeDelta> for SimTime {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.ps += rhs.as_ps();
    }
}

impl Sub<TimeDelta> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: TimeDelta) -> SimTime {
        SimTime {
            ps: self
                .ps
                .checked_sub(rhs.as_ps())
                .expect("SimTime - TimeDelta underflow"),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = TimeDelta;
    fn sub(self, rhs: SimTime) -> TimeDelta {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.since_epoch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_constructors() {
        assert_eq!(TimeDelta::from_ns(30).as_ps(), 30_000);
        assert_eq!(TimeDelta::from_us(1).as_ps(), 1_000_000);
        assert_eq!(TimeDelta::from_ms(51).as_ms_f64(), 51.0);
        assert_eq!(TimeDelta::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + TimeDelta::from_ns(100);
        assert_eq!(t1.since(t0), TimeDelta::from_ns(100));
        assert_eq!(t1 - t0, TimeDelta::from_ns(100));
        assert_eq!(t1 - TimeDelta::from_ns(40), SimTime::from_ns(60));
        assert_eq!(t0.saturating_since(t1), TimeDelta::ZERO);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    #[should_panic(expected = "earlier instant is after self")]
    fn since_panics_on_reversed_order() {
        SimTime::ZERO.since(SimTime::from_ns(1));
    }

    #[test]
    fn delta_arithmetic() {
        let a = TimeDelta::from_ns(10);
        let b = TimeDelta::from_ns(4);
        assert_eq!((a + b).as_ps(), 14_000);
        assert_eq!((a - b).as_ps(), 6_000);
        assert_eq!(a.saturating_sub(b * 3), TimeDelta::ZERO);
        assert_eq!(a * 3, TimeDelta::from_ns(30));
        assert_eq!(a / 2, TimeDelta::from_ns(5));
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeDelta::from_ps(500).to_string(), "500 ps");
        assert_eq!(TimeDelta::from_ns(30).to_string(), "30.000 ns");
        assert_eq!(TimeDelta::from_us(12).to_string(), "12.000 us");
        assert_eq!(TimeDelta::from_secs(2).to_string(), "2 s");
        assert_eq!(TimeDelta::ZERO.to_string(), "0 ps");
        assert_eq!(SimTime::from_ns(1).to_string(), "t=1.000 ns");
    }

    #[test]
    fn sum_iterator() {
        let total: TimeDelta = (1..=3).map(TimeDelta::from_ns).sum();
        assert_eq!(total, TimeDelta::from_ns(6));
    }
}
