//! Data sizes, stored in bits.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An amount of data, stored internally in **bits**.
///
/// The paper mixes bit- and byte-denominated quantities (2,048-bit SRAM
/// interfaces, 4 KB batches, 64 GB stacks); this type makes the unit
/// explicit at every construction and extraction site.
///
/// Sizes are exact integers; byte extraction of non-byte-aligned sizes
/// rounds down, and [`DataSize::is_byte_aligned`] reports alignment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize {
    bits: u64,
}

impl DataSize {
    /// Zero bits.
    pub const ZERO: DataSize = DataSize { bits: 0 };

    /// Construct from a number of bits.
    pub const fn from_bits(bits: u64) -> Self {
        DataSize { bits }
    }

    /// Construct from a number of bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        DataSize { bits: bytes * 8 }
    }

    /// Construct from binary kilobytes (KiB, 1024 bytes).
    ///
    /// The paper's "4 KB batch" and "512 KB frame" are used as powers of
    /// two (`K = γ·T·S` with S = 1 KB and 2,048-bit interfaces), so KB in
    /// the paper means KiB here.
    pub const fn from_kib(kib: u64) -> Self {
        DataSize::from_bytes(kib * 1024)
    }

    /// Construct from binary megabytes (MiB).
    pub const fn from_mib(mib: u64) -> Self {
        DataSize::from_bytes(mib * 1024 * 1024)
    }

    /// Construct from binary gigabytes (GiB).
    pub const fn from_gib(gib: u64) -> Self {
        DataSize::from_bytes(gib * 1024 * 1024 * 1024)
    }

    /// The size in bits.
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// The size in whole bytes (rounds down).
    pub const fn bytes(self) -> u64 {
        self.bits / 8
    }

    /// The size in bytes as a float (exact for sub-byte remainders).
    pub fn bytes_f64(self) -> f64 {
        self.bits as f64 / 8.0
    }

    /// True if the size is a whole number of bytes.
    pub const fn is_byte_aligned(self) -> bool {
        self.bits.is_multiple_of(8)
    }

    /// True if the size is zero.
    pub const fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: DataSize) -> DataSize {
        DataSize {
            bits: self.bits.saturating_sub(rhs.bits),
        }
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: DataSize) -> Option<DataSize> {
        match self.bits.checked_sub(rhs.bits) {
            Some(bits) => Some(DataSize { bits }),
            None => None,
        }
    }

    /// The minimum of two sizes.
    pub fn min(self, rhs: DataSize) -> DataSize {
        DataSize {
            bits: self.bits.min(rhs.bits),
        }
    }

    /// The maximum of two sizes.
    pub fn max(self, rhs: DataSize) -> DataSize {
        DataSize {
            bits: self.bits.max(rhs.bits),
        }
    }

    /// How many whole `chunk`s fit in `self`.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn chunks(self, chunk: DataSize) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be non-zero");
        self.bits / chunk.bits
    }

    /// True if `self` is an exact multiple of `unit`.
    pub fn is_multiple_of(self, unit: DataSize) -> bool {
        !unit.is_zero() && self.bits.is_multiple_of(unit.bits)
    }
}

impl Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize {
            bits: self.bits + rhs.bits,
        }
    }
}

impl AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        self.bits += rhs.bits;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize {
            bits: self
                .bits
                .checked_sub(rhs.bits)
                .expect("DataSize subtraction underflow"),
        }
    }
}

impl SubAssign for DataSize {
    fn sub_assign(&mut self, rhs: DataSize) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for DataSize {
    type Output = DataSize;
    fn mul(self, rhs: u64) -> DataSize {
        DataSize {
            bits: self.bits * rhs,
        }
    }
}

impl Mul<DataSize> for u64 {
    type Output = DataSize;
    fn mul(self, rhs: DataSize) -> DataSize {
        rhs * self
    }
}

impl Div<u64> for DataSize {
    type Output = DataSize;
    fn div(self, rhs: u64) -> DataSize {
        DataSize {
            bits: self.bits / rhs,
        }
    }
}

impl Div<DataSize> for DataSize {
    type Output = u64;
    /// Integer ratio of two sizes (how many `rhs` fit in `self`).
    fn div(self, rhs: DataSize) -> u64 {
        self.chunks(rhs)
    }
}

impl Rem<DataSize> for DataSize {
    type Output = DataSize;
    fn rem(self, rhs: DataSize) -> DataSize {
        DataSize {
            bits: self.bits % rhs.bits,
        }
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> DataSize {
        iter.fold(DataSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bits;
        if !b.is_multiple_of(8) {
            return write!(f, "{b} b");
        }
        let bytes = b / 8;
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        const TIB: u64 = 1024 * GIB;
        if bytes >= TIB && bytes.is_multiple_of(TIB) {
            write!(f, "{} TiB", bytes / TIB)
        } else if bytes >= GIB && bytes.is_multiple_of(GIB) {
            write!(f, "{} GiB", bytes / GIB)
        } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
            write!(f, "{} MiB", bytes / MIB)
        } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
            write!(f, "{} KiB", bytes / KIB)
        } else {
            write!(f, "{bytes} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(DataSize::from_bytes(1).bits(), 8);
        assert_eq!(DataSize::from_kib(4), DataSize::from_bytes(4096));
        assert_eq!(DataSize::from_mib(1), DataSize::from_kib(1024));
        assert_eq!(DataSize::from_gib(64).bytes(), 64 << 30);
    }

    #[test]
    fn paper_reference_sizes() {
        // Batch k = 4 KB = N x 2,048-bit interface width.
        let interface = DataSize::from_bits(2048);
        assert_eq!(16 * interface, DataSize::from_kib(4));
        // Frame K = gamma * T * S = 4 * 128 * 1 KiB = 512 KiB.
        let s = DataSize::from_kib(1);
        assert_eq!(4 * 128 * s, DataSize::from_kib(512));
        // Batch slice = k / N = 256 B.
        assert_eq!(DataSize::from_kib(4) / 16, DataSize::from_bytes(256));
    }

    #[test]
    fn arithmetic() {
        let a = DataSize::from_bytes(100);
        let b = DataSize::from_bytes(60);
        assert_eq!((a + b).bytes(), 160);
        assert_eq!((a - b).bytes(), 40);
        assert_eq!(a.saturating_sub(b * 2), DataSize::ZERO);
        assert_eq!(a.checked_sub(b * 2), None);
        assert_eq!(a / b, 1);
        assert_eq!(a % b, DataSize::from_bytes(40));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = DataSize::from_bytes(1) - DataSize::from_bytes(2);
    }

    #[test]
    fn chunks_and_multiples() {
        let frame = DataSize::from_kib(512);
        let batch = DataSize::from_kib(4);
        assert_eq!(frame.chunks(batch), 128);
        assert!(frame.is_multiple_of(batch));
        assert!(!DataSize::from_bytes(100).is_multiple_of(DataSize::from_bytes(64)));
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(DataSize::from_kib(512).to_string(), "512 KiB");
        assert_eq!(DataSize::from_bytes(1500).to_string(), "1500 B");
        assert_eq!(DataSize::from_bits(3).to_string(), "3 b");
        assert_eq!(DataSize::from_gib(4096).to_string(), "4 TiB");
    }

    #[test]
    fn alignment() {
        assert!(DataSize::from_bytes(7).is_byte_aligned());
        assert!(!DataSize::from_bits(7).is_byte_aligned());
        assert_eq!(DataSize::from_bits(12).bytes(), 1);
        assert!((DataSize::from_bits(12).bytes_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_iterator() {
        let total: DataSize = (1..=4).map(DataSize::from_bytes).sum();
        assert_eq!(total, DataSize::from_bytes(10));
    }
}
