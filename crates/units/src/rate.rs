//! Data rates in bits per second, with exact transfer-time arithmetic.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, Div, Mul};
use serde::{Deserialize, Serialize};

use crate::{DataSize, TimeDelta, PS_PER_S};

/// A data rate, stored in **bits per second**.
///
/// Transfer times are computed exactly with 128-bit intermediates and
/// round **up** to the next picosecond: a device is never credited with
/// finishing earlier than physically possible, which keeps simulated
/// utilization conservative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataRate {
    bps: u64,
}

impl DataRate {
    /// Zero rate.
    pub const ZERO: DataRate = DataRate { bps: 0 };

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        DataRate { bps }
    }

    /// Construct from gigabits per second (decimal, as in "40 Gb/s").
    pub const fn from_gbps(gbps: u64) -> Self {
        DataRate {
            bps: gbps * 1_000_000_000,
        }
    }

    /// Construct from terabits per second (decimal).
    pub const fn from_tbps(tbps: u64) -> Self {
        DataRate {
            bps: tbps * 1_000_000_000_000,
        }
    }

    /// Construct from megabits per second (decimal).
    pub const fn from_mbps(mbps: u64) -> Self {
        DataRate {
            bps: mbps * 1_000_000,
        }
    }

    /// The rate in bits per second.
    pub const fn bps(self) -> u64 {
        self.bps
    }

    /// The rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.bps as f64 / 1e9
    }

    /// The rate in terabits per second.
    pub fn tbps(self) -> f64 {
        self.bps as f64 / 1e12
    }

    /// True if zero.
    pub const fn is_zero(self) -> bool {
        self.bps == 0
    }

    /// Exact time to transfer `size` at this rate, rounded **up** to the
    /// next picosecond.
    ///
    /// # Panics
    /// Panics if the rate is zero and the size is non-zero.
    pub fn transfer_time(self, size: DataSize) -> TimeDelta {
        if size.is_zero() {
            return TimeDelta::ZERO;
        }
        assert!(self.bps > 0, "cannot transfer data at zero rate");
        let num = size.bits() as u128 * PS_PER_S as u128;
        let den = self.bps as u128;
        let ps = num.div_ceil(den);
        TimeDelta::from_ps(u64::try_from(ps).expect("transfer time overflows u64 picoseconds"))
    }

    /// How much data this rate delivers in `dt` (rounded down to whole bits).
    pub fn data_in(self, dt: TimeDelta) -> DataSize {
        let bits = self.bps as u128 * dt.as_ps() as u128 / PS_PER_S as u128;
        DataSize::from_bits(u64::try_from(bits).expect("data volume overflows u64 bits"))
    }

    /// Scale the rate by a (speedup) factor, rounding to the nearest b/s.
    pub fn scale(self, factor: f64) -> DataRate {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid rate scale factor"
        );
        DataRate {
            bps: (self.bps as f64 * factor).round() as u64,
        }
    }

    /// Fraction `self / total`, as f64.
    pub fn fraction_of(self, total: DataRate) -> f64 {
        self.bps as f64 / total.bps as f64
    }
}

impl Add for DataRate {
    type Output = DataRate;
    fn add(self, rhs: DataRate) -> DataRate {
        DataRate {
            bps: self.bps + rhs.bps,
        }
    }
}

impl Mul<u64> for DataRate {
    type Output = DataRate;
    fn mul(self, rhs: u64) -> DataRate {
        DataRate {
            bps: self.bps * rhs,
        }
    }
}

impl Mul<DataRate> for u64 {
    type Output = DataRate;
    fn mul(self, rhs: DataRate) -> DataRate {
        rhs * self
    }
}

impl Div<u64> for DataRate {
    type Output = DataRate;
    fn div(self, rhs: u64) -> DataRate {
        DataRate {
            bps: self.bps / rhs,
        }
    }
}

impl Div<DataRate> for DataRate {
    type Output = f64;
    fn div(self, rhs: DataRate) -> f64 {
        self.bps as f64 / rhs.bps as f64
    }
}

impl Sum for DataRate {
    fn sum<I: Iterator<Item = DataRate>>(iter: I) -> DataRate {
        iter.fold(DataRate::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.bps;
        if bps >= 1_000_000_000_000 {
            write!(f, "{:.2} Tb/s", self.tbps())
        } else if bps >= 1_000_000_000 {
            write!(f, "{:.2} Gb/s", self.gbps())
        } else if bps >= 1_000_000 {
            write!(f, "{:.2} Mb/s", bps as f64 / 1e6)
        } else {
            write!(f, "{bps} b/s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_rates() {
        // Per-wavelength rate R = 40 Gb/s; per-port P = alpha*W*R = 2.56 Tb/s.
        let r = DataRate::from_gbps(40);
        let p = r * (4 * 16);
        assert_eq!(p, DataRate::from_gbps(2560));
        // Total I/O per direction: N*F*W*R = 655.36 Tb/s.
        let total = r * (16 * 64 * 16);
        assert_eq!(total.bps(), 655_360_000_000_000);
        // HBM4 stack: 2048 bits * 10 Gb/s = 20.48 Tb/s; group of 4 = 81.92.
        let stack = DataRate::from_gbps(10) * 2048;
        assert_eq!(stack.tbps(), 20.48);
        assert_eq!((stack * 4).tbps(), 81.92);
    }

    #[test]
    fn transfer_times_are_exact() {
        // 1 KiB over one 80 GB/s HBM channel = 12.8 ns.
        let ch = DataRate::from_gbps(640);
        assert_eq!(
            ch.transfer_time(DataSize::from_kib(1)),
            TimeDelta::from_ps(12_800)
        );
        // 64 B over the same channel = 0.8 ns.
        assert_eq!(
            ch.transfer_time(DataSize::from_bytes(64)),
            TimeDelta::from_ps(800)
        );
        // 1500 B = 18.75 ns.
        assert_eq!(
            ch.transfer_time(DataSize::from_bytes(1500)),
            TimeDelta::from_ps(18_750)
        );
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 bit at 3 bps = 1/3 s -> rounds up, never down.
        let r = DataRate::from_bps(3);
        let t = r.transfer_time(DataSize::from_bits(1));
        assert_eq!(t.as_ps(), 333_333_333_334);
    }

    #[test]
    fn zero_size_takes_zero_time() {
        assert_eq!(
            DataRate::ZERO.transfer_time(DataSize::ZERO),
            TimeDelta::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "zero rate")]
    fn zero_rate_panics() {
        DataRate::ZERO.transfer_time(DataSize::from_bytes(1));
    }

    #[test]
    fn data_in_inverts_transfer_time() {
        let r = DataRate::from_gbps(40);
        let size = DataSize::from_bytes(1500);
        let t = r.transfer_time(size);
        let back = r.data_in(t);
        // Round-trip can only over-deliver by < 1 bit worth of time rounding.
        assert!(back.bits() >= size.bits());
        assert!(back.bits() - size.bits() <= 1);
    }

    #[test]
    fn scaling_and_fractions() {
        let r = DataRate::from_gbps(100);
        assert_eq!(r.scale(1.5), DataRate::from_gbps(150));
        assert!((DataRate::from_gbps(50).fraction_of(r) - 0.5).abs() < 1e-12);
        let total: DataRate = vec![r, r, r].into_iter().sum();
        assert_eq!(total, DataRate::from_gbps(300));
    }

    #[test]
    fn display_formats() {
        assert_eq!(DataRate::from_tbps(2).to_string(), "2.00 Tb/s");
        assert_eq!(DataRate::from_gbps(40).to_string(), "40.00 Gb/s");
        assert_eq!(DataRate::from_mbps(5).to_string(), "5.00 Mb/s");
        assert_eq!(DataRate::from_bps(12).to_string(), "12 b/s");
    }
}
