//! Silicon / substrate area for the §4 design analysis.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

/// An area in square millimetres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Area {
    mm2: f64,
}

impl Area {
    /// Zero area.
    pub const ZERO: Area = Area { mm2: 0.0 };

    /// Construct from square millimetres.
    pub const fn from_mm2(mm2: f64) -> Self {
        Area { mm2 }
    }

    /// Construct from a rectangle of `w` × `h` millimetres.
    pub const fn from_rect_mm(w: f64, h: f64) -> Self {
        Area { mm2: w * h }
    }

    /// Square millimetres.
    pub const fn mm2(self) -> f64 {
        self.mm2
    }

    /// Fraction `self / total`.
    pub fn fraction_of(self, total: Area) -> f64 {
        self.mm2 / total.mm2
    }
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area {
            mm2: self.mm2 + rhs.mm2,
        }
    }
}

impl Sub for Area {
    type Output = Area;
    fn sub(self, rhs: Area) -> Area {
        Area {
            mm2: self.mm2 - rhs.mm2,
        }
    }
}

impl Mul<f64> for Area {
    type Output = Area;
    fn mul(self, rhs: f64) -> Area {
        Area {
            mm2: self.mm2 * rhs,
        }
    }
}

impl Mul<u64> for Area {
    type Output = Area;
    fn mul(self, rhs: u64) -> Area {
        self * rhs as f64
    }
}

impl Div<f64> for Area {
    type Output = Area;
    fn div(self, rhs: f64) -> Area {
        Area {
            mm2: self.mm2 / rhs,
        }
    }
}

impl Div<Area> for Area {
    type Output = f64;
    fn div(self, rhs: Area) -> f64 {
        self.mm2 / rhs.mm2
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} mm^2", self.mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_area_arithmetic() {
        // One HBM stack footprint: 11 mm x 11 mm = 121 mm^2 (paper §1/§4).
        let hbm = Area::from_rect_mm(11.0, 11.0);
        assert_eq!(hbm.mm2(), 121.0);
        // Per HBM switch: 800 + 4*121 = 1,284 mm^2; 16 switches = 20,544 mm^2.
        let per_switch = Area::from_mm2(800.0) + hbm * 4u64;
        assert_eq!(per_switch.mm2(), 1284.0);
        let total = per_switch * 16u64;
        assert_eq!(total.mm2(), 20_544.0);
        // < 10% of a 500 mm x 500 mm panel.
        let panel = Area::from_rect_mm(500.0, 500.0);
        assert!(total.fraction_of(panel) < 0.10);
    }

    #[test]
    fn arithmetic() {
        let a = Area::from_mm2(100.0);
        let b = Area::from_mm2(30.0);
        assert_eq!((a + b).mm2(), 130.0);
        assert_eq!((a - b).mm2(), 70.0);
        assert_eq!((a * 2.0).mm2(), 200.0);
        assert_eq!((a / 4.0).mm2(), 25.0);
        assert!((a / b - 100.0 / 30.0).abs() < 1e-12);
        let s: Area = vec![a, b].into_iter().sum();
        assert_eq!(s.mm2(), 130.0);
    }

    #[test]
    fn display() {
        assert_eq!(Area::from_mm2(20_544.0).to_string(), "20544 mm^2");
    }
}
