//! Regenerates every quantitative claim in the paper (experiments
//! E1–E17 of DESIGN.md) and prints paper-vs-measured tables.
//!
//! Usage: `repro [--quick] [E1 E5 ...]`
//!   --quick   shrink simulation horizons (CI-friendly)
//!   `E<n>`    run only the listed experiments
//!
//! `repro bench [--quick] [--live-epochs]` instead runs the
//! perf-trajectory benchmarks and writes `BENCH_sps_throughput.json`,
//! `BENCH_hbm_access.json`, `BENCH_streaming_memory.json` and
//! `BENCH_telemetry_overhead.json` (stable schema; all values except
//! the overhead bench's wall-clock fields are sim-time-derived, so two
//! same-seed runs are byte-identical). With `--live-epochs` the SPS
//! throughput run also streams per-plane epoch deltas and sampled
//! packet-lifecycle spans to `BENCH_sps_epochs.jsonl`.
//!
//! `repro parallel-speed [--quick]` measures the sharded switch engine
//! (2 and 4 input-stage worker shards) against the sequential oracle on
//! the soak configuration, asserts byte-identical reports, and writes
//! `BENCH_parallel_speed.json` (stable schema; records
//! `cores_available` so single-core measurements are never mistaken for
//! multi-core scaling).
//!
//! `repro kernel-speed [--quick]` measures the timing-wheel event
//! kernel against the retained binary-heap oracle — an end-to-end
//! same-seed soak pair (byte-identical reports asserted) plus a
//! queue-only replay with a large standing event population — and
//! writes `BENCH_kernel_speed.json` (stable schema; the wall-clock and
//! rate fields are the measurement, everything else is deterministic).
//!
//! `repro soak [--quick] [--live-epochs]` runs the long-horizon
//! streaming soak check: it quadruples the arrival horizon and asserts
//! that offered traffic scales with it while the engine's peak
//! in-flight packet count stays flat (O(in-flight) memory, not
//! O(trace)). With `--live-epochs` both runs stream epoch telemetry,
//! the per-epoch `switch.packets.peak_in_flight` gauge series is
//! asserted flat, and the full stream is written to
//! `SOAK_epochs.jsonl` (byte-identical across same-seed runs — CI
//! diffs it). Exits non-zero on failure.
//!
//! `repro fleet [--quick]` runs the distributed-collector proof: the
//! single-process `run_streamed` oracle and several worker
//! partitionings of the same run through the fleet wire protocol, and
//! asserts the collector's merged telemetry stream and stitched report
//! are byte-identical to the oracle's for every partitioning before
//! writing `BENCH_fleet_collector.json` (stable schema; every field is
//! sim-time-derived, so two same-seed runs are byte-identical).
//!
//! `repro profile-overhead [--quick]` measures the self-profiler's
//! wall-clock cost: interleaved same-seed soak runs with the phase
//! profiler off and on (hub recording to its in-memory ring), min-wall
//! per arm, asserting the report and the live epoch stream stay
//! byte-identical either way, then writes
//! `BENCH_profile_overhead.json` and exits non-zero if the overhead
//! reaches 3%.
//!
//! `repro --version` prints the workspace build line (the same string
//! the metrics endpoints expose as their `_build_info` gauge).

use rip_analysis::{
    area, buffering, capacity, datacenter, internal_traffic, modularity, power, random_access,
    roadmap, sram,
};
use rip_baselines::{
    DesignPoint, LoadBalancedRouter, MeshFabric, ParallelPacketSwitch, SprayingHbmSwitch,
};
use rip_bench::{
    f, switch_trace, uniform_port_sources, uniform_source, uniform_trace, version_line, Table,
};
use rip_core::{
    DrainPolicy, EngineKind, FaultPlan, HbmSwitch, LiveOptions, MimicChecker, RouterConfig,
    SpsRouter, SpsWorkload,
};
use rip_hbm::{
    AccessPattern, Direction, HbmGeometry, HbmGroup, HbmTiming, OpenPageController, PfiConfig,
    PfiController, RandomAccessController, RegionMode,
};
use rip_photonics::SplitPattern;
use rip_sim::{EventQueue, QueueKind};
use rip_traffic::{ArrivalProcess, Attacker, FiberFill, SizeDistribution, TrafficMatrix};
use rip_units::{DataRate, DataSize, SimTime, TimeDelta};

struct Opts {
    quick: bool,
    only: Vec<String>,
}

impl Opts {
    fn wants(&self, id: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|e| e.eq_ignore_ascii_case(id))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--version") {
        println!("{}", version_line("repro"));
        return;
    }
    if args.first().map(String::as_str) == Some("profile-overhead") {
        let quick = args.iter().any(|a| a == "--quick");
        run_profile_overhead(quick);
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        let quick = args.iter().any(|a| a == "--quick");
        let live = args.iter().any(|a| a == "--live-epochs");
        run_bench(quick, live);
        return;
    }
    if args.first().map(String::as_str) == Some("kernel-speed") {
        let quick = args.iter().any(|a| a == "--quick");
        run_kernel_speed(quick);
        return;
    }
    if args.first().map(String::as_str) == Some("parallel-speed") {
        let quick = args.iter().any(|a| a == "--quick");
        run_parallel_speed(quick);
        return;
    }
    if args.first().map(String::as_str) == Some("soak") {
        let quick = args.iter().any(|a| a == "--quick");
        let live = args.iter().any(|a| a == "--live-epochs");
        run_soak(quick, live);
        return;
    }
    if args.first().map(String::as_str) == Some("fleet") {
        let quick = args.iter().any(|a| a == "--quick");
        run_fleet(quick);
        return;
    }
    let opts = Opts {
        quick: args.iter().any(|a| a == "--quick"),
        only: args.into_iter().filter(|a| !a.starts_with("--")).collect(),
    };
    println!("Petabit Router-in-a-Package — experiment reproduction");
    println!("mode: {}", if opts.quick { "quick" } else { "full" });
    if opts.wants("E1") {
        e1(&opts);
    }
    if opts.wants("E2") {
        e2(&opts);
    }
    if opts.wants("E3") {
        e3(&opts);
    }
    if opts.wants("E4") {
        e4(&opts);
    }
    if opts.wants("E5") {
        e5(&opts);
    }
    if opts.wants("E6") {
        e6();
    }
    if opts.wants("E7") {
        e7();
    }
    if opts.wants("E8") {
        e8();
    }
    if opts.wants("E9") {
        e9(&opts);
    }
    if opts.wants("E10") {
        e10();
    }
    if opts.wants("E11") {
        e11();
    }
    if opts.wants("E12") {
        e12();
    }
    if opts.wants("E13") {
        e13();
    }
    if opts.wants("E14") {
        e14(&opts);
    }
    if opts.wants("E15") {
        e15(&opts);
    }
    if opts.wants("E16") {
        e16();
    }
    if opts.wants("E17") {
        e17();
    }
    if opts.wants("E18") {
        e18(&opts);
    }
    if opts.wants("E19") {
        e19();
    }
    if opts.wants("E20") {
        e20(&opts);
    }
    println!("\ndone.");
}

/// A one-stack HBM4 group (32 channels) — big enough to reproduce the
/// full-interface numbers, small enough to simulate quickly.
fn one_stack() -> HbmGroup {
    HbmGroup::new(1, HbmGeometry::hbm4(), HbmTiming::hbm4())
}

// --------------------------------------------------------------------
// E1 — random-access throughput reduction (§3.1 Challenge 6)
// --------------------------------------------------------------------
fn e1(o: &Opts) {
    let n_acc: u64 = if o.quick { 2_000 } else { 20_000 };
    let mut t = Table::new(&["variant", "packet", "analytic x", "simulated x", "paper"]);
    let cases = [
        (
            "parallel channels",
            DataSize::from_bytes(1500),
            AccessPattern::ParallelChannels,
            "2.6x",
        ),
        (
            "parallel channels",
            DataSize::from_bytes(64),
            AccessPattern::ParallelChannels,
            "39x",
        ),
        (
            "single logical interface",
            DataSize::from_bytes(64),
            AccessPattern::SingleLogicalInterface,
            "up to 1,250x",
        ),
    ];
    for (name, size, pattern, paper) in cases {
        let analytic = match pattern {
            AccessPattern::ParallelChannels => random_access::with_parallel_channels(size),
            AccessPattern::SingleLogicalInterface => random_access::single_logical_interface(size),
        };
        let mut group = one_stack();
        let mut ctl = RandomAccessController::new(pattern, 0xE1);
        let acc = if pattern == AccessPattern::SingleLogicalInterface {
            n_acc / 10
        } else {
            n_acc
        };
        let rep = ctl.run(&mut group, acc, size, Direction::Write);
        t.row(&[
            name.into(),
            format!("{size}"),
            f(analytic.reduction, 1),
            f(rep.reduction, 1),
            paper.into(),
        ]);
    }
    t.print("E1  Worst-case random access: throughput reduction vs peak");
    println!("(PFI instead runs at peak — see E2.)");

    // E1b ablation: how much row locality would a demand-oblivious
    // open-page design need? (Pipelined, i.e. more generous than the
    // paper's model.)
    let mut t = Table::new(&["row-hit probability", "reduction vs peak (64 B)"]);
    for locality in [0.0, 0.5, 0.9, 0.99] {
        let mut group = one_stack();
        let mut op = OpenPageController::new(locality, 0xE1B);
        let rep = op.run(
            &mut group,
            n_acc / 2,
            DataSize::from_bytes(64),
            Direction::Write,
        );
        t.row(&[f(locality, 2), format!("{:.1}x", rep.reduction)]);
    }
    t.print("E1b Open-page ablation: locality needed to approach peak (PFI manufactures 1.0)");
}

// --------------------------------------------------------------------
// E2 — PFI reaches peak HBM rate; ~2% transitions; hidden refresh
// --------------------------------------------------------------------
fn e2(o: &Opts) {
    let frames = if o.quick { 400 } else { 4_000 };
    let mut group = one_stack();
    let cfg = PfiConfig::reference();
    let mut pfi = PfiController::new(cfg, &group).expect("valid");
    let rep = pfi.run_sustained(&mut group, frames);
    let mut t = Table::new(&["metric", "measured", "paper"]);
    t.row(&[
        "sustained utilization".into(),
        format!("{:.1}%", rep.utilization * 100.0),
        "peak (100% baseline)".into(),
    ]);
    t.row(&[
        "write/read transition loss".into(),
        format!("{:.2}%", rep.turnaround_fraction * 100.0),
        "~2% of cycle".into(),
    ]);
    t.row(&[
        "achieved rate (1 stack)".into(),
        format!("{}", rep.achieved),
        "20.48 Tb/s peak".into(),
    ]);
    t.row(&[
        "REFsb issued / max gap".into(),
        format!("{} / {}", rep.refreshes, rep.max_refresh_gap),
        "hidden, no cycle impact".into(),
    ]);
    t.print("E2  PFI sustained duty cycle on the HBM4 device model");

    // Ablation: refresh disabled (shows the engine is doing real work).
    let mut group2 = one_stack();
    let mut pfi2 = PfiController::new(cfg, &group2).expect("valid");
    pfi2.set_refresh_enabled(false);
    let rep2 = pfi2.run_sustained(&mut group2, frames);
    println!(
        "ablation: refresh off -> utilization {:.1}% (refresh costs {:.2}% of peak)",
        rep2.utilization * 100.0,
        (rep2.utilization - rep.utilization) * 100.0
    );
}

// --------------------------------------------------------------------
// E3 — 100% throughput for admissible traffic
// --------------------------------------------------------------------
fn e3(o: &Opts) {
    let cfg = RouterConfig::small();
    let horizon_us = if o.quick { 60 } else { 200 };
    let horizon = SimTime::from_ns(horizon_us * 1000);
    let drain = SimTime::from_ns(horizon_us * 4000);
    let mut t = Table::new(&["traffic matrix", "load", "delivered", "drops"]);
    let perm: Vec<usize> = (0..cfg.ribbons).map(|i| (i + 1) % cfg.ribbons).collect();
    let tms: Vec<(String, TrafficMatrix)> = vec![
        ("uniform".into(), TrafficMatrix::uniform(cfg.ribbons, 1.0)),
        (
            "permutation".into(),
            TrafficMatrix::permutation(&perm, 1.0).unwrap(),
        ),
        (
            "hotspot (admissible)".into(),
            TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 1.0 / cfg.ribbons as f64),
        ),
        (
            "log-normal skew".into(),
            TrafficMatrix::log_normal(cfg.ribbons, 1.0, 1.0, 3),
        ),
    ];
    // The 12 (matrix, load) cells are independent simulations: fan them
    // out over scoped threads.
    let cells: Vec<(usize, f64)> = (0..tms.len())
        .flat_map(|i| [0.5, 0.8, 0.95].into_iter().map(move |l| (i, l)))
        .collect();
    let results: Vec<(String, f64, String, String)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .iter()
            .map(|&(i, load)| {
                let (name, tm) = &tms[i];
                let cfg = cfg.clone();
                scope.spawn(move |_| {
                    let trace = switch_trace(
                        &cfg,
                        tm,
                        load,
                        SizeDistribution::Imix,
                        ArrivalProcess::Poisson,
                        horizon,
                        0xE3,
                    );
                    let sw = HbmSwitch::new(cfg).unwrap();
                    let r = sw.run(&trace, drain);
                    (
                        name.clone(),
                        load,
                        format!("{:.3}%", r.delivery_fraction * 100.0),
                        format!("{}", r.dropped_input + r.dropped_frames),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cell"))
            .collect()
    })
    .expect("scope");
    for (name, load, delivered, drops) in results {
        t.row(&[name, f(load, 2), delivered, drops]);
    }
    t.print("E3  HBM switch throughput under admissible traffic (paper: 100%)");
}

// --------------------------------------------------------------------
// E4 — OQ mimicking lag vs speedup
// --------------------------------------------------------------------
fn e4(o: &Opts) {
    let mut cfg = RouterConfig::small();
    cfg.hbm_geometry.channels_per_stack = 16; // headroom for speedup
    cfg.drain = DrainPolicy::HorizonFactor { factor: 8 };
    let horizon_us: u64 = if o.quick { 40 } else { 120 };
    let horizon = SimTime::from_ns(horizon_us * 1000);
    let trace = uniform_trace(&cfg, 0.85, horizon, 0xE4);
    let mut t = Table::new(&["speedup", "mean lag", "p99 lag", "max lag", "compared"]);
    for speedup in [1.0, 1.25, 1.5, 2.0] {
        let mut c = cfg.clone();
        c.speedup = speedup;
        let r = MimicChecker::new(c).run_to_drain(&trace, horizon);
        t.row(&[
            f(speedup, 2),
            format!("{}", r.mean_lag),
            format!("{}", r.p99_lag),
            format!("{}", r.max_lag),
            format!("{}", r.compared),
        ]);
    }
    t.print(
        "E4  OQ-mimicking: departure lag vs ideal OQ switch (paper: finite with small speedup)",
    );
}

// --------------------------------------------------------------------
// E5 — fiber splitting patterns under fill-order skew
// --------------------------------------------------------------------
fn e5(o: &Opts) {
    let cfg = RouterConfig::small();
    let fills: Vec<(String, FiberFill)> = vec![
        ("uniform (hashed)".into(), FiberFill::Uniform),
        (
            "first-filled 25%".into(),
            FiberFill::FirstFilled {
                used: cfg.fibers_per_ribbon / 4,
            },
        ),
        ("linear decay".into(), FiberFill::Linear),
        ("geometric 0.7".into(), FiberFill::Geometric { ratio: 0.7 }),
    ];
    let patterns: Vec<(String, SplitPattern)> = vec![
        ("sequential".into(), SplitPattern::Sequential),
        ("striped".into(), SplitPattern::Striped),
        (
            "pseudo-random".into(),
            SplitPattern::PseudoRandom { seed: 0xE5 },
        ),
    ];
    let mut t = Table::new(&["fiber fill", "split", "max switch load", "fluid loss"]);
    for (fname, fill) in &fills {
        for (pname, pattern) in &patterns {
            let router = SpsRouter::new(cfg.clone(), *pattern).unwrap();
            let mut w = SpsWorkload::uniform(cfg.ribbons, 0.25, 0xE5);
            w.fill = *fill;
            let loads = router.fluid_loads(&w);
            let max = loads.iter().flatten().cloned().fold(0.0, f64::max);
            t.row(&[
                fname.clone(),
                pname.clone(),
                f(max, 3),
                format!("{:.2}%", router.fluid_loss(&w) * 100.0),
            ]);
        }
    }
    t.print("E5  SPS split patterns vs fill-order skew (paper: sequential overloads switch 0)");

    // Packet-level confirmation on the worst case.
    let horizon_us: u64 = if o.quick { 30 } else { 100 };
    let horizon = SimTime::from_ns(horizon_us * 1000);
    for (pname, pattern) in [
        ("sequential", SplitPattern::Sequential),
        ("pseudo-random", SplitPattern::PseudoRandom { seed: 0xE5 }),
    ] {
        let router = SpsRouter::new(cfg.clone(), pattern).unwrap();
        let mut w = SpsWorkload::uniform(cfg.ribbons, 0.22, 0xE5);
        w.fill = FiberFill::FirstFilled {
            used: cfg.fibers_per_ribbon / 4,
        };
        let r = router.run(&w, horizon);
        println!(
            "DES check [{pname}]: offered {}, loss {:.2}%, switch-load imbalance {:.2}x",
            r.offered,
            r.loss_fraction * 100.0,
            r.load_imbalance
        );
    }
}

// --------------------------------------------------------------------
// E6 — mesh guaranteed capacity (§2.1 Challenge 2)
// --------------------------------------------------------------------
fn e6() {
    let mut t = Table::new(&[
        "mesh",
        "bound 2c/k",
        "measured worst case",
        "mean hops",
        "pass-through work",
    ]);
    for k in [4, 6, 8, 10, 12] {
        let m = MeshFabric::new(k, 1.0);
        let tm = m.bisection_tm();
        t.row(&[
            format!("{k}x{k}"),
            format!("{:.0}%", m.worst_case_bound() * 100.0),
            format!("{:.0}%", m.throughput_factor(&tm) * 100.0),
            f(m.mean_hops_uniform(), 2),
            format!("{:.0}%", m.pass_through_fraction() * 100.0),
        ]);
    }
    t.print("E6  Mesh of smaller switches: guaranteed capacity (paper: 20% for 10x10, 80% wasted)");
}

// --------------------------------------------------------------------
// E7 — OEO conversions across the design space (§2.1 Challenge 3)
// --------------------------------------------------------------------
fn e7() {
    let total_io = DataRate::from_bps(1_310_720_000_000_000);
    let mut t = Table::new(&[
        "design",
        "OEO conversions/packet",
        "OEO power @1.31 Pb/s",
        "guaranteed throughput",
    ]);
    for (name, conv, p) in power::oeo_design_space(total_io) {
        let design = match name.as_str() {
            s if s.contains("SPS") => DesignPoint::Sps,
            s if s.contains("centralized") => DesignPoint::Centralized,
            s if s.contains("Clos") => DesignPoint::ThreeStage,
            _ => DesignPoint::Mesh { k: 10 },
        };
        t.row(&[
            name,
            f(conv, 2),
            format!("{p}"),
            format!("{:.0}%", design.guaranteed_throughput() * 100.0),
        ]);
    }
    t.print("E7  Design space: OEO conversion cost (paper: 3 stages => 3x conversions; SPS = 1)");
}

// --------------------------------------------------------------------
// E8 — buffer sizing (§4)
// --------------------------------------------------------------------
fn e8() {
    let r = buffering::reference();
    let mut t = Table::new(&["quantity", "value", "paper"]);
    t.row(&[
        "total buffering".into(),
        format!("{}", r.total),
        "4.096 TB".into(),
    ]);
    t.row(&[
        "ms of buffering at 655.36 Tb/s".into(),
        f(r.milliseconds, 1),
        "~51.2 ms".into(),
    ]);
    t.row(&[
        "vs Van Jacobson 1xBDP (100 ms RTT)".into(),
        format!("{:.2}x", r.vs_van_jacobson),
        "in line".into(),
    ]);
    t.row(&[
        "vs Stanford rule (100k flows)".into(),
        format!("{:.0}x", r.vs_stanford),
        "much more".into(),
    ]);
    t.print("E8  Router buffer sizing");
    let mut c = Table::new(&["buffering datapoint", "ms"]);
    for (name, ms) in buffering::comparison_rows() {
        c.row(&[name, f(ms, 1)]);
    }
    c.print("E8b Industry comparison (§4)");
}

// --------------------------------------------------------------------
// E9 — SRAM budget vs reordering alternative (§4)
// --------------------------------------------------------------------
fn e9(o: &Opts) {
    let (worst, exp) = sram::reference();
    let mut t = Table::new(&["component", "worst case", "expected occupancy"]);
    t.row(&[
        "input ports".into(),
        format!("{}", worst.input_ports),
        format!("{}", exp.input_ports),
    ]);
    t.row(&[
        "tail SRAM".into(),
        format!("{}", worst.tail),
        format!("{}", exp.tail),
    ]);
    t.row(&[
        "head SRAM".into(),
        format!("{}", worst.head),
        format!("{}", exp.head),
    ]);
    t.row(&[
        "total".into(),
        format!("{}", worst.total),
        format!("{}", exp.total),
    ]);
    t.print("E9  SRAM budget per HBM switch (paper total: 14.5 MB, between our two models)");

    // Measured: frame-forming SRAM (PFI) vs resequencing buffer
    // (spraying) at the same scaled configuration and load.
    let cfg = RouterConfig::small();
    let horizon_us: u64 = if o.quick { 50 } else { 150 };
    let horizon = SimTime::from_ns(horizon_us * 1000);
    let trace = uniform_trace(&cfg, 0.9, horizon, 0xE9);
    let sw = HbmSwitch::new(cfg.clone()).unwrap();
    let r = sw.run(&trace, SimTime::from_ns(horizon_us * 4000));
    let pfi_sram = r.tail_peak + r.head_peak + r.input_peak;
    let spray = SprayingHbmSwitch::new(
        cfg.channels(),
        cfg.hbm_geometry.channel_rate(),
        TimeDelta::from_ns(30),
        0xE9,
    );
    let sr = spray.run(&trace, cfg.ribbons);
    println!(
        "measured @small config, load 0.9: PFI staging SRAM peak {} vs spraying reorder buffer peak {} \
         (and spraying only delivers 1/{:.1} of peak)",
        pfi_sram, sr.peak_reorder, sr.reduction
    );
}

// --------------------------------------------------------------------
// E10 — power estimate (§4)
// --------------------------------------------------------------------
fn e10() {
    let r = power::reference();
    let p = r.per_switch;
    let mut t = Table::new(&["component", "per HBM switch", "paper"]);
    t.row(&[
        "processing + SRAM (Tomahawk-5 scaled)".into(),
        format!("{}", p.processing),
        "400 W".into(),
    ]);
    t.row(&[
        "4 x HBM4 stacks".into(),
        format!("{}", p.hbm),
        "300 W".into(),
    ]);
    t.row(&[
        "OEO @81.92 Tb/s".into(),
        format!("{}", p.oeo),
        "94 W".into(),
    ]);
    t.row(&[
        "total per switch".into(),
        format!("{}", p.total()),
        "794 W".into(),
    ]);
    t.row(&[
        "router total (16 switches)".into(),
        format!("{}", r.total()),
        "12.7 kW".into(),
    ]);
    t.row(&[
        "vs Cerebras WSE-3 (23 kW)".into(),
        format!("{:.2}x", r.vs_cerebras()),
        "just above half".into(),
    ]);
    t.row(&[
        "shares proc/HBM/OEO".into(),
        format!(
            "{:.0}% / {:.0}% / {:.0}%",
            r.processing_share() * 100.0,
            r.hbm_share() * 100.0,
            r.oeo_share() * 100.0
        ),
        "~50% / 40% / rest".into(),
    ]);
    t.print("E10 Power estimate");

    // Bottom-up cross-check: activity-based HBM power measured from the
    // commands the device model executed under sustained PFI.
    let mut group = one_stack();
    let mut pfi = PfiController::new(PfiConfig::reference(), &group).expect("valid");
    let rep = pfi.run_sustained(&mut group, 2_000);
    let model = rip_hbm::HbmEnergyModel::hbm4();
    println!(
        "cross-check: activity-based HBM power at peak duty = {} per stack \
         (datasheet figure used above: 75 W)",
        model.stack_power(&group, rep.elapsed)
    );
}

// --------------------------------------------------------------------
// E11 — area estimate (§4)
// --------------------------------------------------------------------
fn e11() {
    let a = area::reference();
    let mut t = Table::new(&["quantity", "value", "paper"]);
    t.row(&[
        "per switch".into(),
        format!("{}", a.per_switch),
        "1,284 mm^2".into(),
    ]);
    t.row(&[
        "16 switches".into(),
        format!("{}", a.total),
        "20,544 mm^2".into(),
    ]);
    t.row(&[
        "fraction of 500x500 mm panel".into(),
        format!("{:.1}%", a.panel_fraction * 100.0),
        "under 10%".into(),
    ]);
    t.print("E11 Area estimate");
}

// --------------------------------------------------------------------
// E12 — capacity increase (§5)
// --------------------------------------------------------------------
fn e12() {
    let c = capacity::reference();
    let mut t = Table::new(&["quantity", "value", "paper"]);
    t.row(&[
        "router ingress".into(),
        format!("{}", c.router_ingress),
        "655.36 Tb/s".into(),
    ]);
    t.row(&[
        "Cisco 8201-32FH (1RU)".into(),
        format!("{}", c.cisco_ingress),
        "12.8 Tb/s".into(),
    ]);
    t.row(&[
        "ratio".into(),
        format!("{:.1}x", c.ratio),
        "over 50x; 1-2 orders of magnitude per area".into(),
    ]);
    t.print("E12 Capacity per space vs today's routers");
}

// --------------------------------------------------------------------
// E13 — memory roadmap (§5)
// --------------------------------------------------------------------
fn e13() {
    let mut t = Table::new(&[
        "generation",
        "stacks needed per switch",
        "memory area",
        "memory power",
        "I/O with 4 stacks",
    ]);
    for p in roadmap::table() {
        t.row(&[
            p.generation.name().into(),
            format!("{}", p.stacks_per_switch),
            format!("{}", p.memory_area_per_switch),
            format!("{}", p.memory_power_per_switch),
            format!("{}", p.io_with_four_stacks),
        ]);
    }
    t.print("E13 Router evolution with future memories (paper: 4x / 10x)");
}

// --------------------------------------------------------------------
// E14 — latency: padding and bypass (§4)
// --------------------------------------------------------------------
fn e14(o: &Opts) {
    let horizon_us: u64 = if o.quick { 40 } else { 120 };
    let horizon = SimTime::from_ns(horizon_us * 1000);
    let drain = SimTime::from_ns(horizon_us * 30_000);
    let mut t = Table::new(&[
        "load",
        "padding+bypass",
        "mean delay",
        "p99 delay",
        "delivered",
        "padding overhead",
    ]);
    for load in [0.05, 0.2, 0.5, 0.8] {
        for pb in [true, false] {
            let mut cfg = RouterConfig::small();
            cfg.padding_and_bypass = pb;
            if !pb {
                cfg.batch_timeout_batches = 0;
            }
            let trace = uniform_trace(&cfg, load, horizon, 0xE14);
            let sw = HbmSwitch::new(cfg).unwrap();
            let r = sw.run(&trace, drain);
            let mean = r.delays_ns.mean().unwrap_or(f64::NAN) / 1000.0;
            let p99 = r.delays_ns.quantile(0.99).unwrap_or(f64::NAN) / 1000.0;
            t.row(&[
                f(load, 2),
                if pb { "on" } else { "off" }.into(),
                format!("{mean:.2} us"),
                format!("{p99:.2} us"),
                format!("{:.1}%", r.delivery_fraction * 100.0),
                format!(
                    "{:.1}%",
                    r.padded_bytes.bytes() as f64 / r.offered_bytes.bytes().max(1) as f64 * 100.0
                ),
            ]);
        }
    }
    t.print("E14 Frame-fill latency: padding & HBM bypass (paper: they cut low-load latency)");
}

// --------------------------------------------------------------------
// E15 — ECMP/LAG hashing evens the per-switch TMs (§4)
// --------------------------------------------------------------------
fn e15(o: &Opts) {
    let cfg = RouterConfig::small();
    // Fluid: per-switch load CV under hashed (uniform) vs skewed fills.
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Sequential).unwrap();
    let mut t = Table::new(&["fiber loading", "per-switch load CV"]);
    for (name, fill) in [
        ("ECMP/LAG-hashed (uniform)", FiberFill::Uniform),
        ("unhashed, first-filled", FiberFill::FirstFilled { used: 4 }),
    ] {
        let mut w = SpsWorkload::uniform(cfg.ribbons, 0.25, 0xE15);
        w.fill = fill;
        let loads = router.fluid_loads(&w);
        let flat: Vec<f64> = loads.iter().flatten().cloned().collect();
        let mean = flat.iter().sum::<f64>() / flat.len() as f64;
        let var = flat.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / flat.len() as f64;
        t.row(&[name.into(), f(var.sqrt() / mean, 3)]);
    }
    t.print("E15 Traffic evenness at HBM switches (paper: hashing => even TMs)");

    // Egress side: output ports hash flows over alpha x W lanes.
    let horizon = SimTime::from_ns(if o.quick { 40_000 } else { 120_000 });
    let trace = uniform_trace(&cfg, 0.8, horizon, 0xE15);
    let sw = HbmSwitch::new(cfg).unwrap();
    let r = sw.run(&trace, SimTime::from_ps(horizon.as_ps() * 4));
    println!(
        "egress lane spread CV across fibers x wavelengths: {:.3} (0 = perfectly even)",
        r.lane_spread_cv
    );
}

// --------------------------------------------------------------------
// E16 — datacenter variant: smaller frames (§5)
// --------------------------------------------------------------------
fn e16() {
    let rows = datacenter::sweep(
        128,
        4,
        DataSize::from_kib(1),
        DataRate::from_gbps(2560),
        0.5,
    );
    let mut t = Table::new(&[
        "stripe T'",
        "frame K'",
        "fill @50%",
        "drain",
        "total latency",
    ]);
    for r in rows.iter().take(6) {
        t.row(&[
            format!("{}", r.stripe_channels),
            format!("{}", r.frame),
            format!("{}", r.fill_latency),
            format!("{}", r.drain_latency),
            format!("{}", r.total_latency),
        ]);
    }
    t.print("E16 Datacenter variant: smaller frames => lower latency (paper §5)");
    let floor = datacenter::min_frame(128, DataRate::from_gbps(640), TimeDelta::from_ns(30));
    println!("full-stripe frame floor at peak rate: {floor} (gamma*S >= tRC x channel rate)");
}

// --------------------------------------------------------------------
// E17 — adversarial exploitation of the split pattern (§2.1)
// --------------------------------------------------------------------
fn e17() {
    let (ribbons, fibers, switches) = (16usize, 64usize, 16usize);
    let mk = |p: SplitPattern| {
        rip_photonics::SplitMap::new(ribbons, fibers, switches, p).expect("valid split")
    };
    let seq = mk(SplitPattern::Sequential);
    let striped = mk(SplitPattern::Striped);
    let secret = mk(SplitPattern::PseudoRandom { seed: 0x5EC1 });
    let wrong = mk(SplitPattern::PseudoRandom { seed: 0xBAD });
    let atk = Attacker::new(32.0);
    let mut t = Table::new(&[
        "true split",
        "attacker belief",
        "victim load",
        "concentration (1=diffuse, H=perfect)",
    ]);
    let cases: [(
        &str,
        &str,
        &rip_photonics::SplitMap,
        &rip_photonics::SplitMap,
    ); 4] = [
        ("sequential", "sequential (correct)", &seq, &seq),
        ("striped", "striped (correct)", &striped, &striped),
        ("pseudo-random", "sequential (wrong)", &seq, &secret),
        (
            "pseudo-random",
            "pseudo-random, wrong seed",
            &wrong,
            &secret,
        ),
    ];
    for (truth_name, belief_name, believed, truth) in cases {
        let out = atk.evaluate(believed, truth, 0);
        t.row(&[
            truth_name.to_string(),
            belief_name.to_string(),
            f(out.victim_load, 2),
            f(out.concentration, 2),
        ]);
    }
    t.print("E17 Adversarial split exploitation (paper: pseudo-random pattern resists)");
}

// --------------------------------------------------------------------
// E18 — buffer sharing: static regions vs dynamic pages (§3.2)
// --------------------------------------------------------------------
fn e18(o: &Opts) {
    let horizon_us: u64 = if o.quick { 200 } else { 500 };
    let mut t = Table::new(&["region allocation", "dropped", "delivered", "pointer SRAM"]);
    for (name, mode) in [
        ("static 1/N regions", RegionMode::Static),
        (
            "dynamic pages (8 rows)",
            RegionMode::DynamicPages { page_rows: 8 },
        ),
    ] {
        let mut cfg = RouterConfig::small();
        cfg.hbm_geometry.stack_capacity = DataSize::from_mib(32);
        cfg.region_mode = mode;
        let tm = TrafficMatrix::hotspot(cfg.ribbons, 1.0, 0, 0.6);
        let trace = switch_trace(
            &cfg,
            &tm,
            0.9,
            SizeDistribution::Imix,
            ArrivalProcess::Poisson,
            SimTime::from_ns(horizon_us * 1000),
            0xE18,
        );
        let sw = HbmSwitch::new(cfg.clone()).unwrap();
        let r = sw.run(&trace, SimTime::from_ns(horizon_us * 1300));
        let pfi = PfiController::new(
            cfg.pfi(),
            &rip_hbm::HbmGroup::new(cfg.stacks_per_switch, cfg.hbm_geometry, cfg.hbm_timing),
        )
        .unwrap();
        t.row(&[
            name.into(),
            format!("{}", r.dropped_bytes),
            format!("{:.1}%", r.delivery_fraction * 100.0),
            format!("{}", pfi.pointer_sram()),
        ]);
    }
    t.print(
        "E18 Buffer sharing under an inadmissible hotspot, 32 MiB stack \
         (paper §3.2: dynamic pages need only a small pointer SRAM)",
    );
}

// --------------------------------------------------------------------
// E19 — internal traffic savings + modularity (§5, §2.2)
// --------------------------------------------------------------------
fn e19() {
    let mut t = Table::new(&[
        "PoP composition",
        "port capacity bought per unit served",
        "internal-traffic share",
    ]);
    for (name, mult, frac) in internal_traffic::table() {
        t.row(&[name, format!("{mult:.2}x"), format!("{:.0}%", frac * 100.0)]);
    }
    t.print("E19 WAN capacity spent interconnecting smaller routers (§5)");
    let (frac, freed) = internal_traffic::reference_savings();
    let boxes = internal_traffic::boxes_needed(
        DataRate::from_bps(655_360_000_000_000),
        DataRate::from_gbps(12_800),
        3,
    );
    println!(
        "serving 655.36 Tb/s with 12.8 Tb/s boxes in a 3-stage Clos: {boxes} boxes, \
         {:.0}% of their ports carrying internal traffic ({freed} of port capacity freed \
         by one package)",
        frac * 100.0
    );

    let mut t = Table::new(&[
        "deployment",
        "switches/package",
        "I/O per package",
        "power per package",
        "area per package",
    ]);
    for d in modularity::table() {
        t.row(&[
            format!("{} package(s)", d.packages),
            format!("{}", d.switches_per_package),
            format!("{}", d.io_per_package),
            format!("{}", d.power_per_package),
            format!("{}", d.area_per_package),
        ]);
    }
    t.print("E19b Modularity: one dense package vs 16 parallel packages (§2.2)");
}

// --------------------------------------------------------------------
// E20 — what SPS avoids: per-packet balancing designs measured
// --------------------------------------------------------------------
fn e20(o: &Opts) {
    let cfg = RouterConfig::small();
    let n = cfg.ribbons;
    let rate = cfg.port_rate();
    let horizon = SimTime::from_ns(if o.quick { 60_000 } else { 200_000 });
    let trace = uniform_trace(&cfg, 0.9, horizon, 0xE20);

    let mut t = Table::new(&[
        "design",
        "OEO stages",
        "mean delay",
        "reordered",
        "peak reorder buffer",
    ]);

    let lb = LoadBalancedRouter::new(n, rate).run(&trace);
    t.row(&[
        "load-balanced router [38]".into(),
        format!("{}", lb.oeo_stages),
        format!("{}", lb.mean_delay),
        format!("{:.1}%", lb.reordered_fraction * 100.0),
        format!("{}", lb.peak_reorder),
    ]);
    let pps = ParallelPacketSwitch::new(n, 4, rate, 2.0).run(&trace);
    t.row(&[
        "parallel packet switch [31] (s=2)".into(),
        format!("{}", pps.oeo_stages),
        format!("{}", pps.mean_delay),
        format!("{:.1}%", pps.reordered_fraction * 100.0),
        format!("{}", pps.peak_reorder),
    ]);
    let sw = HbmSwitch::new(cfg.clone()).unwrap();
    let r = sw.run(&trace, SimTime::from_ps(horizon.as_ps() * 4));
    let mean = r
        .delays_ns
        .clone()
        .mean()
        .map(|ns| format!("{:.3} us", ns / 1000.0))
        .unwrap_or_default();
    t.row(&[
        "SPS HBM switch (this paper)".into(),
        "1".into(),
        mean,
        "0.0% (frame FIFO)".into(),
        "0 B (no resequencer)".into(),
    ]);
    t.print("E20 Per-packet balancing designs vs SPS at 0.9 load (paper §2.1 Design 3)");
}

// --------------------------------------------------------------------
// `repro bench` — the perf trajectory (BENCH_*.json emission)
// --------------------------------------------------------------------

/// `BENCH_sps_throughput.json`: end-to-end SPS throughput/latency on
/// the scaled router. Every value is derived from sim time and
/// deterministic counters — never wall-clock.
#[derive(serde::Serialize)]
struct SpsThroughputBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    horizon_ns: u64,
    offered_bytes: u64,
    delivered_bytes: u64,
    loss_fraction: f64,
    load_imbalance: f64,
    delivered_gbps: f64,
    delay_mean_ns: f64,
    delay_p50_ns: f64,
    delay_p99_ns: f64,
    frame_fill_efficiency: f64,
    frames_written: u64,
    frames_bypassed: u64,
    hbm_row_hit_ratio: f64,
    hbm_faw_stall_ps: u64,
    hbm_wtr_turnaround_ps: u64,
    oeo_energy_joules: f64,
}

/// `BENCH_hbm_access.json`: device-level sustained PFI + random-access
/// baselines on one HBM4 stack.
#[derive(serde::Serialize)]
struct HbmAccessBench {
    schema: &'static str,
    frames: u64,
    pfi_utilization: f64,
    pfi_achieved_gbps: f64,
    pfi_turnaround_fraction: f64,
    pfi_refreshes: u64,
    pfi_row_hit_ratio: f64,
    pfi_faw_stall_ps: u64,
    cmd_act: u64,
    cmd_pre: u64,
    cmd_rd: u64,
    cmd_wr: u64,
    cmd_ref: u64,
    random_1500b_reduction: f64,
    random_64b_reduction: f64,
}

/// `BENCH_streaming_memory.json`: the E22 long-horizon soak sweep. The
/// streaming engine's working set is its peak in-flight packet count;
/// `batch_trace_bytes` is the documented counterfactual — what a
/// materialized trace of the same run would occupy, growing linearly
/// with the horizon while `peak_in_flight_packets` stays flat.
#[derive(serde::Serialize)]
struct StreamingMemoryBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    drain_factor: u64,
    horizons_ns: Vec<u64>,
    offered_packets: Vec<u64>,
    delivered_packets: Vec<u64>,
    peak_in_flight_packets: Vec<u64>,
    batch_trace_bytes: Vec<u64>,
}

/// `BENCH_telemetry_overhead.json` (E23): wall-clock cost of the live
/// epoch/span stream vs the silent path on the standard SPS config.
/// The wall-clock fields are the only non-deterministic values any
/// BENCH file carries — they are what "overhead" means — and CI pins
/// only the schema keys, never values, so they stay outside the
/// byte-diff contract. The stream-shape fields (`epochs_emitted`,
/// `span_events`, `epoch_stream_bytes`) are fully deterministic.
#[derive(serde::Serialize)]
struct TelemetryOverheadBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    horizon_ns: u64,
    epoch_ns: u64,
    sample_one_in: u64,
    epochs_emitted: u64,
    span_events: u64,
    epoch_stream_bytes: u64,
    silent_wall_ms: f64,
    live_wall_ms: f64,
    overhead_fraction: f64,
    /// Wall clock of the HBM switch with no tracing at all.
    trace_silent_wall_ms: f64,
    /// Same run with the Chrome command trace enabled but its recording
    /// window entirely outside the simulated interval: the hook cost of
    /// command capture with zero events exported.
    trace_outwindow_wall_ms: f64,
    trace_outwindow_overhead_fraction: f64,
}

/// Run the streaming engine at `load` over `horizon` and return its
/// consuming report (no trace is ever materialized).
fn stream_run(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
) -> rip_core::SwitchReport {
    let src = uniform_source(cfg, load, horizon, seed);
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    sw.run_source(src, cfg.drain.deadline(horizon), &FaultPlan::default());
    sw.into_report()
}

/// [`stream_run`] with live telemetry: epoch deltas and sampled spans
/// are buffered in a [`MemorySink`](rip_telemetry::MemorySink) and
/// returned alongside the report, with the SLO watchdogs teed into the
/// stream — the returned events must be empty on a healthy run.
fn stream_run_live(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
    period: TimeDelta,
) -> (
    rip_core::SwitchReport,
    rip_telemetry::MemorySink,
    Vec<rip_telemetry::WatchdogEvent>,
) {
    let src = uniform_source(cfg, load, horizon, seed);
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    let staged = rip_telemetry::SharedSink::new();
    let (wd, handle) =
        rip_telemetry::Watchdog::new(rip_telemetry::WatchdogConfig::default(), staged.clone());
    sw.enable_live_telemetry(period, 64, Box::new(wd));
    sw.run_source(src, cfg.drain.deadline(horizon), &FaultPlan::default());
    let report = sw.into_report();
    (report, staged.take(), handle.events())
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) {
    // Serialization and I/O failures are reporting problems, not
    // simulation bugs: report them and exit nonzero instead of
    // panicking with a backtrace.
    let mut body = match serde_json::to_string_pretty(value) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("repro: cannot serialize {path}: {e}");
            std::process::exit(1);
        }
    };
    body.push('\n');
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("repro: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

fn run_bench(quick: bool, live: bool) {
    println!("Petabit Router-in-a-Package — benchmark emission");
    println!("mode: {}", if quick { "quick" } else { "full" });

    // SPS end-to-end throughput at 0.8 load on the scaled router.
    let cfg = RouterConfig::small();
    let seed = 0xBE7C;
    let load = 0.8;
    let horizon = SimTime::from_ns(if quick { 40_000 } else { 200_000 });
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, load, seed);
    let r = if live {
        // Same run, but every plane streams epoch deltas and sampled
        // lifecycle spans; the merged stream lands in a JSONL file.
        let f = match std::fs::File::create("BENCH_sps_epochs.jsonl") {
            Ok(f) => f,
            Err(e) => {
                eprintln!("repro: cannot create BENCH_sps_epochs.jsonl: {e}");
                std::process::exit(1);
            }
        };
        let mut sink = rip_telemetry::JsonlSink::new(std::io::BufWriter::new(f));
        let r = router.run_streamed(
            &w,
            horizon,
            &FaultPlan::default(),
            LiveOptions {
                period: TimeDelta::from_ns(2_000),
                sample_one_in: 64,
            },
            &mut sink,
        );
        sink.flush();
        println!("wrote BENCH_sps_epochs.jsonl ({} records)", sink.records());
        r
    } else {
        router.run(&w, horizon)
    };
    // Merge per-plane delay histograms in plane order (deterministic).
    let mut delays = rip_sim::stats::Histogram::new();
    for s in &r.switches {
        delays.merge_from(&s.report.delays_ns);
    }
    let span_ps: u64 = r
        .switches
        .iter()
        .map(|s| s.report.span.as_ps())
        .max()
        .unwrap_or(0);
    let delivered_gbps = if span_ps == 0 {
        0.0
    } else {
        r.delivered.bits() as f64 / (span_ps as f64 * 1e-12) / 1e9
    };
    let m = &r.metrics;
    let sps = SpsThroughputBench {
        schema: "rip-bench/sps_throughput/v1",
        config: "small",
        seed,
        load,
        horizon_ns: horizon.as_ps() / 1000,
        offered_bytes: r.offered.bytes(),
        delivered_bytes: r.delivered.bytes(),
        loss_fraction: r.loss_fraction,
        load_imbalance: r.load_imbalance,
        delivered_gbps,
        delay_mean_ns: delays.mean().unwrap_or(0.0),
        delay_p50_ns: delays.quantile(0.5).unwrap_or(0.0),
        delay_p99_ns: delays.quantile(0.99).unwrap_or(0.0),
        frame_fill_efficiency: m
            .gauge("switch.frame.fill_efficiency")
            .map_or(0.0, |g| g.value),
        frames_written: m.counter("switch.frames.written"),
        frames_bypassed: m.counter("switch.frames.bypass"),
        hbm_row_hit_ratio: m.gauge("hbm.row_hit_ratio").map_or(0.0, |g| g.value),
        hbm_faw_stall_ps: m.counter("hbm.faw_stall_ps"),
        hbm_wtr_turnaround_ps: m.counter("hbm.wtr_turnaround_ps"),
        oeo_energy_joules: r
            .switches
            .iter()
            .filter_map(|s| s.report.metrics.gauge("phy.oeo_energy_j"))
            .map(|g| g.value)
            .sum(),
    };
    write_json("BENCH_sps_throughput.json", &sps);

    // Device-level: sustained PFI duty cycle + random-access baselines.
    let frames: u64 = if quick { 400 } else { 4_000 };
    let mut group = one_stack();
    let mut pfi = PfiController::new(PfiConfig::reference(), &group).expect("valid");
    let rep = pfi.run_sustained(&mut group, frames);
    let (mut hits, mut misses, mut faw_ps) = (0u64, 0u64, 0u64);
    let (mut act, mut pre, mut rd, mut wr, mut refr) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for ch in group.channels() {
        let s = ch.stats();
        hits += s.row_hits.get();
        misses += s.row_misses.get();
        faw_ps += s.faw_stall.total().as_ps();
        act += s.activates.get();
        pre += s.precharges.get();
        rd += s.reads.get();
        wr += s.writes.get();
        refr += s.refreshes.get();
    }
    let n_acc: u64 = if quick { 1_000 } else { 10_000 };
    let mut g1 = one_stack();
    let r1500 = RandomAccessController::new(AccessPattern::ParallelChannels, 0xBE7C).run(
        &mut g1,
        n_acc,
        DataSize::from_bytes(1500),
        Direction::Write,
    );
    let mut g64 = one_stack();
    let r64 = RandomAccessController::new(AccessPattern::ParallelChannels, 0xBE7C).run(
        &mut g64,
        n_acc,
        DataSize::from_bytes(64),
        Direction::Write,
    );
    let hbm = HbmAccessBench {
        schema: "rip-bench/hbm_access/v1",
        frames,
        pfi_utilization: rep.utilization,
        pfi_achieved_gbps: rep.achieved.bps() as f64 / 1e9,
        pfi_turnaround_fraction: rep.turnaround_fraction,
        pfi_refreshes: rep.refreshes,
        pfi_row_hit_ratio: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        pfi_faw_stall_ps: faw_ps,
        cmd_act: act,
        cmd_pre: pre,
        cmd_rd: rd,
        cmd_wr: wr,
        cmd_ref: refr,
        random_1500b_reduction: r1500.reduction,
        random_64b_reduction: r64.reduction,
    };
    write_json("BENCH_hbm_access.json", &hbm);

    // E22 — streaming-engine memory vs horizon: offered work grows with
    // the horizon, the engine's in-flight working set does not.
    let soak_cfg = RouterConfig::small();
    let soak_seed = 0x50AC;
    let soak_load = 0.8;
    let base_ns: u64 = if quick { 20_000 } else { 100_000 };
    let horizons_ns: Vec<u64> = vec![base_ns, base_ns * 2, base_ns * 4];
    let mut offered = Vec::new();
    let mut delivered = Vec::new();
    let mut peaks = Vec::new();
    let mut batch_bytes = Vec::new();
    for &h_ns in &horizons_ns {
        let r = stream_run(&soak_cfg, soak_load, SimTime::from_ns(h_ns), soak_seed);
        offered.push(r.offered_packets);
        delivered.push(r.delivered_packets);
        peaks.push(r.peak_in_flight_packets);
        batch_bytes.push(r.offered_packets * std::mem::size_of::<rip_traffic::Packet>() as u64);
    }
    let streaming = StreamingMemoryBench {
        schema: "rip-bench/streaming_memory/v1",
        config: "small",
        seed: soak_seed,
        load: soak_load,
        drain_factor: match soak_cfg.drain {
            DrainPolicy::HorizonFactor { factor } => factor,
        },
        horizons_ns,
        offered_packets: offered,
        delivered_packets: delivered,
        peak_in_flight_packets: peaks,
        batch_trace_bytes: batch_bytes,
    };
    write_json("BENCH_streaming_memory.json", &streaming);

    // E23 — telemetry overhead: the live epoch/span stream vs the
    // silent path, identical seed and horizon, min-of-3 wall clock.
    let tel_seed = 0x0B5E;
    let tel_load = 0.8;
    let tel_horizon = SimTime::from_ns(if quick { 20_000 } else { 60_000 });
    let tel_opts = LiveOptions {
        period: TimeDelta::from_ns(5_000),
        sample_one_in: 256,
    };
    let tel_router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let tel_w = SpsWorkload::uniform(cfg.ribbons, tel_load, tel_seed);
    // Interleave silent and live reps and keep the min of each: on a
    // multi-threaded 100 ms workload, back-to-back blocks of reps pick
    // up machine drift that dwarfs the real streaming cost.
    let reps = 5;
    let mut silent_ms = f64::INFINITY;
    let mut live_ms = f64::INFINITY;
    let mut stream = Vec::new();
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = tel_router.run(&tel_w, tel_horizon);
        silent_ms = silent_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(r.offered.bytes() > 0);

        let mut buf: Vec<u8> = Vec::with_capacity(1 << 20);
        let mut sink = rip_telemetry::JsonlSink::new(&mut buf);
        let t0 = std::time::Instant::now();
        let r = tel_router.run_streamed(
            &tel_w,
            tel_horizon,
            &FaultPlan::default(),
            tel_opts,
            &mut sink,
        );
        live_ms = live_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        drop(sink);
        assert!(r.offered.bytes() > 0);
        stream = buf;
    }
    let (mut epochs, mut spans) = (0u64, 0u64);
    for line in stream.split(|&b| b == b'\n') {
        if line.starts_with(b"{\"record\":\"epoch\"") {
            epochs += 1;
        } else if line.starts_with(b"{\"record\":\"span\"") {
            spans += 1;
        }
    }
    let overhead = (live_ms - silent_ms) / silent_ms;

    // The same question for the command-level Chrome trace: an HBM
    // switch run with tracing enabled but the recording window entirely
    // past the simulated interval must stay within the <5% budget too —
    // the per-command capture hook is the whole cost, no events export.
    let far =
        rip_telemetry::TraceWindow::new(SimTime::from_ps(u64::MAX - 1), SimTime::from_ps(u64::MAX))
            .expect("valid out-of-range window");
    let mut trace_silent_ms = f64::INFINITY;
    let mut trace_out_ms = f64::INFINITY;
    for _ in 0..reps {
        let src = uniform_source(&cfg, tel_load, tel_horizon, tel_seed);
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        let t0 = std::time::Instant::now();
        sw.run_source(src, cfg.drain.deadline(tel_horizon), &FaultPlan::default());
        trace_silent_ms = trace_silent_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(sw.into_report().offered_packets > 0);

        let src = uniform_source(&cfg, tel_load, tel_horizon, tel_seed);
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        sw.enable_chrome_trace(far);
        let t0 = std::time::Instant::now();
        sw.run_source(src, cfg.drain.deadline(tel_horizon), &FaultPlan::default());
        trace_out_ms = trace_out_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let rec = sw.take_chrome_trace().expect("trace enabled");
        assert!(
            rec.is_empty(),
            "out-of-window trace exported {} events",
            rec.len()
        );
    }
    let trace_overhead = (trace_out_ms - trace_silent_ms) / trace_silent_ms;

    let tel = TelemetryOverheadBench {
        schema: "rip-bench/telemetry_overhead/v2",
        config: "small",
        seed: tel_seed,
        load: tel_load,
        horizon_ns: tel_horizon.as_ps() / 1000,
        epoch_ns: tel_opts.period.as_ps() / 1000,
        sample_one_in: tel_opts.sample_one_in,
        epochs_emitted: epochs,
        span_events: spans,
        epoch_stream_bytes: stream.len() as u64,
        silent_wall_ms: silent_ms,
        live_wall_ms: live_ms,
        overhead_fraction: overhead,
        trace_silent_wall_ms: trace_silent_ms,
        trace_outwindow_wall_ms: trace_out_ms,
        trace_outwindow_overhead_fraction: trace_overhead,
    };
    write_json("BENCH_telemetry_overhead.json", &tel);
    println!(
        "telemetry overhead: silent {silent_ms:.1} ms, live {live_ms:.1} ms \
         ({:+.1}%, target < 5%), {epochs} epochs + {spans} spans = {} bytes",
        overhead * 100.0,
        stream.len()
    );
    println!(
        "trace overhead (out-of-window): silent {trace_silent_ms:.1} ms, \
         traced {trace_out_ms:.1} ms ({:+.1}%, target < 5%)",
        trace_overhead * 100.0
    );
    println!("\ndone.");
}

// --------------------------------------------------------------------
// `repro kernel-speed` — timing-wheel kernel vs binary-heap oracle
// --------------------------------------------------------------------

/// `BENCH_kernel_speed.json`: throughput of the timing-wheel event
/// kernel against the retained binary-heap oracle. The `*_wall_ms`,
/// `*_per_sec` and `*speedup*` fields are wall-clock measurements (what
/// the bench exists to report); every simulated quantity (`offered_*`,
/// `delivered_*`, `microkernel_checksum`) is deterministic and identical
/// across kernels by construction — the run asserts it.
#[derive(serde::Serialize)]
struct KernelSpeedBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    horizon_ns: u64,
    offered_packets: u64,
    delivered_packets: u64,
    wheel_wall_ms: f64,
    heap_wall_ms: f64,
    wheel_packets_per_sec: f64,
    heap_packets_per_sec: f64,
    end_to_end_speedup: f64,
    microkernel_standing_events: u64,
    microkernel_ops: u64,
    microkernel_checksum: u64,
    wheel_events_per_sec: f64,
    heap_events_per_sec: f64,
    speedup_vs_heap: f64,
}

/// One end-to-end run under `kind`; returns the serialized report (for
/// the byte-identity assert) and the min-of-`reps` wall clock of the
/// event loop itself (source construction excluded).
fn kernel_speed_run(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
    kind: QueueKind,
    reps: u32,
) -> (rip_core::SwitchReport, String, f64) {
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let src = uniform_source(cfg, load, horizon, seed);
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        sw.set_queue_kind(kind);
        let t0 = std::time::Instant::now();
        sw.run_source(src, cfg.drain.deadline(horizon), &FaultPlan::default());
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        report = Some(sw.into_report());
    }
    let report = report.expect("at least one rep");
    let json = serde_json::to_string(&report).expect("report serializes");
    (report, json, best_ms)
}

/// Queue-only replay: hold `standing` events in the queue and run
/// `ops` pop-then-reschedule steps, timing only the steady state. The
/// delta stream is a fixed LCG so both kernels replay the identical
/// workload; the returned checksum folds every popped (time, event)
/// pair and must match across kernels — that both proves the pop
/// sequences are identical and keeps the loop from being optimized out.
fn kernel_speed_microkernel(kind: QueueKind, standing: u64, ops: u64, reps: u32) -> (f64, u64) {
    fn next(lcg: &mut u64) -> u64 {
        *lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *lcg >> 33
    }
    let mut best_eps = 0.0f64;
    let mut checksum = 0u64;
    for _ in 0..reps {
        let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
        let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..standing {
            q.schedule(SimTime::from_ps(next(&mut lcg) % (1 << 20)), i);
        }
        let mut sum = 0u64;
        let t0 = std::time::Instant::now();
        for op in 0..ops {
            let (t, ev) = q.pop().expect("standing population never drains");
            sum = sum.wrapping_mul(31).wrapping_add(t.as_ps() ^ ev);
            // Mostly short reschedules (the hot levels of the wheel)
            // with an occasional far-future hop to touch upper levels.
            let delta = if op % 61 == 0 {
                next(&mut lcg) % (1 << 30)
            } else {
                next(&mut lcg) % (1 << 16)
            };
            q.schedule(SimTime::from_ps(t.as_ps() + delta + 1), ev);
        }
        let secs = t0.elapsed().as_secs_f64();
        best_eps = best_eps.max(ops as f64 / secs);
        checksum = std::hint::black_box(sum);
    }
    (best_eps, checksum)
}

fn run_kernel_speed(quick: bool) {
    println!("Petabit Router-in-a-Package — event-kernel speed benchmark");
    println!("mode: {}", if quick { "quick" } else { "full" });
    let cfg = RouterConfig::small();
    let seed = 42u64;
    let load = 0.8;
    let horizon = SimTime::from_ns(if quick { 8_000 } else { 20_000 });
    let reps = 3;

    // End-to-end: the soak configuration under each kernel. The two
    // serialized reports must be byte-identical — the differential
    // contract the equivalence suite pins, re-checked here so the
    // speed numbers are never quoted for diverging runs.
    let (report, wheel_json, wheel_ms) =
        kernel_speed_run(&cfg, load, horizon, seed, QueueKind::TimingWheel, reps);
    let (_, heap_json, heap_ms) =
        kernel_speed_run(&cfg, load, horizon, seed, QueueKind::BinaryHeap, reps);
    assert_eq!(
        wheel_json, heap_json,
        "kernel-speed runs diverged across kernels"
    );
    let offered = report.offered_packets;
    let delivered = report.delivered_packets;
    assert!(offered > 0, "kernel-speed run offered no packets");

    // Queue-only replay: a large standing population makes the
    // comparator cost of the heap (O(log n) with hot cache misses)
    // visible, which is exactly what the wheel removes.
    // Standing population scales with the op count so the quick mode
    // measures the same steady state: enough ops must flow through the
    // wheel to amortize the initial bucket cascade.
    let standing: u64 = if quick { 1 << 18 } else { 1 << 20 };
    let ops: u64 = if quick { 2_000_000 } else { 8_000_000 };
    let (wheel_eps, wheel_sum) =
        kernel_speed_microkernel(QueueKind::TimingWheel, standing, ops, reps);
    let (heap_eps, heap_sum) = kernel_speed_microkernel(QueueKind::BinaryHeap, standing, ops, reps);
    assert_eq!(
        wheel_sum, heap_sum,
        "microkernel pop sequences diverged across kernels"
    );

    let bench = KernelSpeedBench {
        schema: "rip-bench/kernel_speed/v1",
        config: "small",
        seed,
        load,
        horizon_ns: horizon.as_ps() / 1000,
        offered_packets: offered,
        delivered_packets: delivered,
        wheel_wall_ms: wheel_ms,
        heap_wall_ms: heap_ms,
        wheel_packets_per_sec: offered as f64 / (wheel_ms / 1e3),
        heap_packets_per_sec: offered as f64 / (heap_ms / 1e3),
        end_to_end_speedup: heap_ms / wheel_ms,
        microkernel_standing_events: standing,
        microkernel_ops: ops,
        microkernel_checksum: wheel_sum,
        wheel_events_per_sec: wheel_eps,
        heap_events_per_sec: heap_eps,
        speedup_vs_heap: wheel_eps / heap_eps,
    };
    write_json("BENCH_kernel_speed.json", &bench);
    println!(
        "end-to-end: wheel {wheel_ms:.1} ms vs heap {heap_ms:.1} ms ({:.2}x), \
         reports byte-identical",
        heap_ms / wheel_ms
    );
    println!(
        "microkernel ({standing} standing, {ops} ops): wheel {:.1} M events/s \
         vs heap {:.1} M events/s ({:.2}x)",
        wheel_eps / 1e6,
        heap_eps / 1e6,
        wheel_eps / heap_eps
    );
    println!("\ndone.");
}

// --------------------------------------------------------------------
// `repro parallel-speed` — sharded engine vs sequential oracle
// --------------------------------------------------------------------

/// `BENCH_parallel_speed.json`: wall-clock of the sharded switch engine
/// (2 and 4 input-stage worker shards) against the sequential oracle on
/// the soak configuration. The `*_wall_ms`, `*_per_sec` and `speedup_*`
/// fields are wall-clock measurements; every simulated quantity is
/// byte-identical across engines by construction — the run asserts it
/// before quoting any number. `cores_available` records the parallelism
/// the measuring host actually offered: on a single hardware thread the
/// shards time-slice one core and the speedup columns measure pure
/// coordination overhead, not the multi-core scaling the engine exists
/// for (see EXPERIMENTS.md E28 for the projection).
#[derive(serde::Serialize)]
struct ParallelSpeedBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    horizon_ns: u64,
    cores_available: u64,
    offered_packets: u64,
    delivered_packets: u64,
    sequential_wall_ms: f64,
    sharded2_wall_ms: f64,
    sharded4_wall_ms: f64,
    sequential_packets_per_sec: f64,
    sharded2_packets_per_sec: f64,
    sharded4_packets_per_sec: f64,
    speedup_sharded2: f64,
    speedup_sharded4: f64,
}

/// One end-to-end run under `engine`; returns the serialized report
/// (for the byte-identity assert) and the min-of-`reps` wall clock of
/// the engine itself (source construction excluded, worker spawn and
/// join included — they are part of the engine's cost).
fn parallel_speed_run(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
    engine: EngineKind,
    reps: u32,
) -> (rip_core::SwitchReport, String, f64) {
    let mut cfg = cfg.clone();
    cfg.engine = engine;
    let mut best_ms = f64::INFINITY;
    let mut report = None;
    for _ in 0..reps {
        let ports = uniform_port_sources(&cfg, load, horizon, seed);
        let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
        let t0 = std::time::Instant::now();
        sw.run_ports(ports, cfg.drain.deadline(horizon), &FaultPlan::default());
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        report = Some(sw.into_report());
    }
    let report = report.expect("at least one rep");
    let json = serde_json::to_string(&report).expect("report serializes");
    (report, json, best_ms)
}

fn run_parallel_speed(quick: bool) {
    println!("Petabit Router-in-a-Package — sharded-engine speed benchmark");
    println!("mode: {}", if quick { "quick" } else { "full" });
    let cfg = RouterConfig::small();
    let seed = 42u64;
    let load = 0.8;
    let horizon = SimTime::from_ns(if quick { 8_000 } else { 20_000 });
    let reps = 3;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);

    let (report, seq_json, seq_ms) =
        parallel_speed_run(&cfg, load, horizon, seed, EngineKind::Sequential, reps);
    let (_, s2_json, s2_ms) = parallel_speed_run(
        &cfg,
        load,
        horizon,
        seed,
        EngineKind::Sharded { shards: 2 },
        reps,
    );
    let (_, s4_json, s4_ms) = parallel_speed_run(
        &cfg,
        load,
        horizon,
        seed,
        EngineKind::Sharded { shards: 4 },
        reps,
    );
    assert_eq!(
        seq_json, s2_json,
        "parallel-speed runs diverged: Sharded(2) vs Sequential"
    );
    assert_eq!(
        seq_json, s4_json,
        "parallel-speed runs diverged: Sharded(4) vs Sequential"
    );
    let offered = report.offered_packets;
    assert!(offered > 0, "parallel-speed run offered no packets");

    let bench = ParallelSpeedBench {
        schema: "rip-bench/parallel_speed/v1",
        config: "small",
        seed,
        load,
        horizon_ns: horizon.as_ps() / 1000,
        cores_available: cores,
        offered_packets: offered,
        delivered_packets: report.delivered_packets,
        sequential_wall_ms: seq_ms,
        sharded2_wall_ms: s2_ms,
        sharded4_wall_ms: s4_ms,
        sequential_packets_per_sec: offered as f64 / (seq_ms / 1e3),
        sharded2_packets_per_sec: offered as f64 / (s2_ms / 1e3),
        sharded4_packets_per_sec: offered as f64 / (s4_ms / 1e3),
        speedup_sharded2: seq_ms / s2_ms,
        speedup_sharded4: seq_ms / s4_ms,
    };
    write_json("BENCH_parallel_speed.json", &bench);
    println!(
        "end-to-end ({cores} core(s) available): sequential {seq_ms:.1} ms, \
         2 shards {s2_ms:.1} ms ({:.2}x), 4 shards {s4_ms:.1} ms ({:.2}x), \
         reports byte-identical",
        seq_ms / s2_ms,
        seq_ms / s4_ms
    );
    if cores < 4 {
        println!(
            "note: fewer cores than shards — the ratios above measure coordination \
             overhead under time-slicing, not multi-core scaling (see EXPERIMENTS.md E28)"
        );
    }
    println!("\ndone.");
}

// --------------------------------------------------------------------
// `repro soak` — self-asserting long-horizon streaming check
// --------------------------------------------------------------------

/// Quadruple the arrival horizon and assert that offered traffic scales
/// with it while the streaming engine's peak in-flight packet count
/// stays flat. With `live`, both runs also stream epoch telemetry: the
/// per-epoch `switch.packets.peak_in_flight` gauge series must be
/// non-decreasing, plateau early (flat), and end at the report's value,
/// and the whole stream is written to `SOAK_epochs.jsonl`. Exits
/// non-zero if any property fails.
fn run_soak(quick: bool, live: bool) {
    println!("Petabit Router-in-a-Package — streaming soak check");
    println!("mode: {}", if quick { "quick" } else { "full" });
    let cfg = RouterConfig::small();
    let seed = 0x50AC;
    let load = 0.8;
    let h1 = SimTime::from_ns(if quick { 20_000 } else { 100_000 });
    let h2 = SimTime::from_ps(h1.as_ps() * 4);
    let period = TimeDelta::from_ns(2_000);
    let (r1, r2, sinks) = if live {
        let (r1, m1, wd1) = stream_run_live(&cfg, load, h1, seed, period);
        let (r2, m2, wd2) = stream_run_live(&cfg, load, h2, seed, period);
        // Always-on telemetry accounting, alarm or not: the same
        // counts the Prometheus families (`rip_watchdog_alarms_total`,
        // `rip_telemetry_dropped_records`) would report for this run.
        println!(
            "soak telemetry: watchdog_alarms={} dropped_records={}",
            wd1.len() + wd2.len(),
            m1.dropped_records() + m2.dropped_records()
        );
        // A healthy soak must not trip any SLO watchdog (stall,
        // drop-rate, degraded capacity): no false alarms.
        if !wd1.is_empty() || !wd2.is_empty() {
            for e in wd1.iter().chain(&wd2) {
                eprintln!(
                    "watchdog: {} epoch {} at {} ps: {:?}",
                    e.source,
                    e.epoch,
                    e.at.as_ps(),
                    e.kind
                );
            }
            eprintln!("soak FAILED: SLO watchdog fired on a healthy run");
            std::process::exit(1);
        }
        println!("SLO watchdogs silent on both healthy runs");
        (r1, r2, Some((m1, m2)))
    } else {
        (
            stream_run(&cfg, load, h1, seed),
            stream_run(&cfg, load, h2, seed),
            None,
        )
    };
    for (h, r) in [(h1, &r1), (h2, &r2)] {
        println!(
            "horizon {h}: offered {} packets, delivered {}, peak in-flight {}",
            r.offered_packets, r.delivered_packets, r.peak_in_flight_packets
        );
    }
    // 4x the horizon must offer at least ~3x the packets (Poisson noise
    // margin) while the working set stays bounded: flat up to a small
    // additive allowance, nowhere near the 4x a materialized trace pays.
    let offered_scales = r2.offered_packets >= 3 * r1.offered_packets;
    let peak_flat = r2.peak_in_flight_packets <= 2 * r1.peak_in_flight_packets + 64;
    if !offered_scales || !peak_flat {
        eprintln!(
            "soak FAILED: offered {} -> {} (want >= 3x), peak in-flight {} -> {} (want flat)",
            r1.offered_packets,
            r2.offered_packets,
            r1.peak_in_flight_packets,
            r2.peak_in_flight_packets
        );
        std::process::exit(1);
    }
    println!(
        "soak OK: offered scaled {:.2}x, peak in-flight {:.2}x (bounded)",
        r2.offered_packets as f64 / r1.offered_packets.max(1) as f64,
        r2.peak_in_flight_packets as f64 / r1.peak_in_flight_packets.max(1) as f64
    );
    if let Some((m1, m2)) = sinks {
        // The live stamp makes `switch.packets.peak_in_flight` a
        // per-epoch gauge series (re-stamped at every boundary). On
        // the 4x run it must be non-decreasing (it is a cumulative
        // peak), plateau by the quarter mark — i.e. stay flat past the
        // 1x-horizon-equivalent prefix — and end at the report value.
        let series: Vec<f64> = m2
            .records()
            .iter()
            .filter_map(|rec| match rec {
                rip_telemetry::SinkRecord::Epoch { delta, .. } => delta
                    .gauges()
                    .get("switch.packets.peak_in_flight")
                    .map(|g| g.value),
                _ => None,
            })
            .collect();
        let monotone = series.windows(2).all(|w| w[0] <= w[1]);
        let last = series.last().copied().unwrap_or(0.0);
        let quarter = series.get(series.len() / 4).copied().unwrap_or(0.0);
        let flat = last <= 2.0 * quarter + 64.0;
        let matches_report = last == r2.peak_in_flight_packets as f64;
        if series.len() < 4 || !monotone || !flat || !matches_report {
            eprintln!(
                "soak FAILED: peak gauge series bad (epochs {}, monotone {monotone}, \
                 quarter {quarter}, last {last}, report {})",
                series.len(),
                r2.peak_in_flight_packets
            );
            std::process::exit(1);
        }
        println!(
            "peak gauge series OK: {} epochs, quarter-mark {quarter}, final {last} (flat)",
            series.len()
        );
        let f = std::fs::File::create("SOAK_epochs.jsonl").expect("create epochs file");
        let mut sink = rip_telemetry::JsonlSink::new(std::io::BufWriter::new(f));
        m1.replay_renamed("soak1x", &mut sink);
        m2.replay_renamed("soak4x", &mut sink);
        sink.flush();
        println!("wrote SOAK_epochs.jsonl ({} records)", sink.records());
    }
}

// --------------------------------------------------------------------
// `repro fleet` — distributed collector byte-identity proof
// --------------------------------------------------------------------

/// `BENCH_fleet_collector.json`: the fleet collector's proof
/// obligation as a pinned artifact. Every field is sim-time-derived
/// (no wall clock anywhere in the fleet path), so two same-seed runs
/// of `repro fleet` produce byte-identical files; `byte_identical`
/// records the assertion the run makes before writing anything — the
/// merged stream and stitched report of every partitioning equal the
/// single-process oracle's, byte for byte.
#[derive(serde::Serialize)]
struct FleetBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    horizon_ns: u64,
    epoch_ps: u64,
    planes: u64,
    partitionings: u64,
    stream_records: u64,
    stream_bytes: u64,
    dropped_records: u64,
    watchdog_alarms: u64,
    offered_bytes: u64,
    delivered_bytes: u64,
    byte_identical: bool,
}

fn run_fleet(quick: bool) {
    use rip_bench::fleet::{push_worker_stream, Collector, FleetJob};
    use rip_telemetry::{JsonlSink, Watchdog, WatchdogConfig};

    println!("Petabit Router-in-a-Package — fleet collector byte-identity");
    println!("mode: {}", if quick { "quick" } else { "full" });
    let cfg = RouterConfig::small();
    let seed = 42u64;
    let load = 0.7;
    let horizon = SimTime::from_ns(if quick { 20_000 } else { 60_000 });
    let live = LiveOptions {
        period: TimeDelta::from_ps(2_000_000),
        sample_one_in: 256,
    };
    let router = SpsRouter::new(cfg.clone(), SplitPattern::Striped).expect("valid config");
    let w = SpsWorkload::uniform(cfg.ribbons, load, seed);
    let plan = FaultPlan::default();
    let echo = serde_json::parse("{\"bench\":\"repro-fleet\"}").expect("echo parses");

    // The oracle: one process, all planes, watchdogs on — the exact
    // chain `ripsim collect --oracle` runs.
    let mut oracle = Vec::new();
    let (oracle_report, oracle_alarms) = {
        let sink = JsonlSink::new(&mut oracle);
        let (mut wd, handle) = Watchdog::new(WatchdogConfig::default(), sink);
        let report = router.run_streamed(&w, horizon, &plan, live, &mut wd);
        drop(wd);
        (report, handle.events().len() as u64)
    };
    let oracle_json = serde_json::to_string(&oracle_report).expect("report serializes");
    println!(
        "oracle: {} bytes of telemetry, {} planes, offered {}",
        oracle.len(),
        cfg.switches,
        oracle_report.offered
    );

    let planes = cfg.switches;
    let partitionings: Vec<Vec<Vec<usize>>> = vec![
        // one worker per plane
        (0..planes).map(|p| vec![p]).collect(),
        // two workers, interleaved even/odd subsets
        vec![
            (0..planes).step_by(2).collect(),
            (1..planes).step_by(2).collect(),
        ],
        // one worker owning everything (degenerate fleet)
        vec![(0..planes).collect()],
    ];
    let job = FleetJob {
        router: &router,
        workload: &w,
        plan: &plan,
        horizon,
        live,
        echo: echo.clone(),
    };
    let mut records = 0u64;
    let mut dropped = 0u64;
    for (i, partition) in partitionings.iter().enumerate() {
        let mut collector = Collector::new(echo.clone(), planes);
        let mut streams: Vec<Vec<u8>> = Vec::new();
        for (worker, subset) in partition.iter().enumerate() {
            streams.push(
                push_worker_stream(&job, worker as u64, subset, Vec::new()).expect("worker pushes"),
            );
        }
        // Reverse arrival order: the merge must not care who got there
        // first.
        for stream in streams.iter().rev() {
            collector.ingest(&stream[..]).expect("stream ingests");
        }
        let mut merged = Vec::new();
        let outcome = {
            let sink = JsonlSink::new(&mut merged);
            let (mut wd, _handle) = Watchdog::new(WatchdogConfig::default(), sink);
            collector
                .finish(&router, horizon, &mut wd)
                .expect("full coverage")
        };
        assert_eq!(
            merged,
            oracle,
            "partitioning {i} ({} workers): merged stream diverges from the oracle",
            partition.len()
        );
        assert_eq!(
            serde_json::to_string(&outcome.report).expect("report serializes"),
            oracle_json,
            "partitioning {i}: stitched report diverges from the oracle"
        );
        println!(
            "partitioning {i}: {} workers -> {} records, byte-identical",
            partition.len(),
            outcome.records
        );
        records = outcome.records;
        dropped = outcome.dropped_records;
    }

    let bench = FleetBench {
        schema: "rip-bench/fleet_collector/v1",
        config: "small",
        seed,
        load,
        horizon_ns: horizon.as_ps() / 1000,
        epoch_ps: live.period.as_ps(),
        planes: planes as u64,
        partitionings: partitionings.len() as u64,
        stream_records: records,
        stream_bytes: oracle.len() as u64,
        dropped_records: dropped,
        watchdog_alarms: oracle_alarms,
        offered_bytes: oracle_report.offered.bytes(),
        delivered_bytes: oracle_report.delivered.bytes(),
        byte_identical: true,
    };
    write_json("BENCH_fleet_collector.json", &bench);
    println!(
        "fleet OK: {} partitionings x {} planes, merged stream and report \
         byte-identical to the single-process oracle",
        partitionings.len(),
        planes
    );
    println!("\ndone.");
}

// --------------------------------------------------------------------
// `repro profile-overhead` — self-profiler wall-clock cost
// --------------------------------------------------------------------

/// `BENCH_profile_overhead.json` (E30): wall-clock cost of the phase
/// profiler on the streaming soak workload. `wall_off_ms`,
/// `wall_on_ms` and `overhead_frac` are the measurement (the only
/// non-deterministic fields); `byte_identical` records the assertion
/// the run makes before writing anything — the switch report and the
/// live epoch stream are byte-for-byte the same with the profiler off
/// and on, across every rep. CI pins the schema keys and gates
/// `overhead_frac < 0.03`.
#[derive(serde::Serialize)]
struct ProfileOverheadBench {
    schema: &'static str,
    config: &'static str,
    seed: u64,
    load: f64,
    horizon_ns: u64,
    epoch_ns: u64,
    reps: u64,
    wall_off_ms: f64,
    wall_on_ms: f64,
    overhead_frac: f64,
    byte_identical: bool,
    profile_records: u64,
}

/// One live-telemetry soak run, profiler optionally attached; returns
/// the serialized report, the replayed epoch/span stream bytes (the
/// deterministic surfaces the byte-identity assert compares), and the
/// wall clock of the event loop itself.
fn profile_overhead_run(
    cfg: &RouterConfig,
    load: f64,
    horizon: SimTime,
    seed: u64,
    period: TimeDelta,
    hub: Option<&rip_telemetry::ProfileHub>,
) -> (String, Vec<u8>, f64) {
    let src = uniform_source(cfg, load, horizon, seed);
    let mut sw = HbmSwitch::new(cfg.clone()).expect("valid config");
    if let Some(h) = hub {
        sw.enable_profiler(h.clone());
    }
    let staged = rip_telemetry::SharedSink::new();
    sw.enable_live_telemetry(period, 64, Box::new(staged.clone()));
    let t0 = std::time::Instant::now();
    sw.run_source(src, cfg.drain.deadline(horizon), &FaultPlan::default());
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = sw.into_report();
    let json = serde_json::to_string(&report).expect("report serializes");
    let mut stream = Vec::new();
    {
        let mut sink = rip_telemetry::JsonlSink::new(&mut stream);
        staged.take().replay_into(&mut sink);
        sink.flush();
    }
    (json, stream, ms)
}

fn run_profile_overhead(quick: bool) {
    println!("Petabit Router-in-a-Package — self-profiler overhead check");
    println!("mode: {}", if quick { "quick" } else { "full" });
    let cfg = RouterConfig::small();
    let seed = 0x0F11;
    let load = 0.8;
    let horizon = SimTime::from_ns(if quick { 20_000 } else { 60_000 });
    let period = TimeDelta::from_ns(2_000);
    let reps: u64 = 5;

    // The profiled arm's hub records into its in-memory ring only: the
    // cost under measurement is the phase timers and the per-epoch
    // flush, not output I/O (which `--profile-out` buffers separately
    // and the soak path pays off the hot loop).
    let hub = rip_telemetry::ProfileHub::new();

    // Interleave the arms and keep the min of each: back-to-back
    // blocks of reps pick up machine drift that dwarfs the timer cost.
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut baseline: Option<(String, Vec<u8>)> = None;
    let mut identical = true;
    for _ in 0..reps {
        let (r_off, s_off, ms) = profile_overhead_run(&cfg, load, horizon, seed, period, None);
        off_ms = off_ms.min(ms);
        let (r_on, s_on, ms) = profile_overhead_run(&cfg, load, horizon, seed, period, Some(&hub));
        on_ms = on_ms.min(ms);
        identical &= r_off == r_on && s_off == s_on;
        match &baseline {
            Some((bj, bs)) => identical &= *bj == r_off && *bs == s_off,
            None => baseline = Some((r_off, s_off)),
        }
    }
    let profile_records = hub.records_total();
    let overhead = (on_ms - off_ms) / off_ms;
    if !identical {
        eprintln!("profile-overhead FAILED: deterministic outputs diverged with the profiler on");
        std::process::exit(1);
    }
    if profile_records == 0 {
        eprintln!("profile-overhead FAILED: profiled arm recorded no profile records");
        std::process::exit(1);
    }

    let bench = ProfileOverheadBench {
        schema: "rip-bench/profile_overhead/v1",
        config: "small",
        seed,
        load,
        horizon_ns: horizon.as_ps() / 1000,
        epoch_ns: period.as_ps() / 1000,
        reps,
        wall_off_ms: off_ms,
        wall_on_ms: on_ms,
        overhead_frac: overhead,
        byte_identical: identical,
        profile_records,
    };
    write_json("BENCH_profile_overhead.json", &bench);
    println!(
        "profiler overhead: off {off_ms:.1} ms, on {on_ms:.1} ms ({:+.1}%, target < 3%), \
         {profile_records} profile records, outputs byte-identical",
        overhead * 100.0
    );
    if overhead >= 0.03 {
        eprintln!(
            "profile-overhead FAILED: overhead {:.2}% >= 3%",
            overhead * 100.0
        );
        std::process::exit(1);
    }
    println!("\ndone.");
}
