//! `ripsim` — run an HBM-switch simulation from a JSON specification.
//!
//! The downstream-user entry point: describe a router configuration and
//! a workload in one JSON file, get the switch report. Writes a sample
//! spec with `--example-spec`.
//!
//! ```text
//! ripsim --example-spec > my_sim.json
//! ripsim my_sim.json
//! ```

use rip_bench::Table;
use rip_core::{HbmSwitch, RouterConfig};
use rip_traffic::{
    merge_streams, ArrivalProcess, PacketGenerator, SizeDistribution, TrafficMatrix,
};
use rip_units::SimTime;
use serde::{Deserialize, Serialize};

/// Destination mix of the workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum MatrixSpec {
    /// Uniform over all outputs.
    Uniform,
    /// A fraction of each input's traffic targets one output.
    Hotspot { output: usize, fraction: f64 },
    /// Input `i` sends to output `(i + shift) mod N`.
    Permutation { shift: usize },
    /// Log-normally skewed demands.
    LogNormal { sigma: f64, seed: u64 },
}

impl MatrixSpec {
    fn build(&self, n: usize) -> Result<TrafficMatrix, String> {
        Ok(match *self {
            MatrixSpec::Uniform => TrafficMatrix::uniform(n, 1.0),
            MatrixSpec::Hotspot { output, fraction } => {
                if output >= n || !(0.0..=1.0).contains(&fraction) {
                    return Err("bad hotspot spec".into());
                }
                TrafficMatrix::hotspot(n, 1.0, output, fraction)
            }
            MatrixSpec::Permutation { shift } => {
                let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
                TrafficMatrix::permutation(&perm, 1.0)?
            }
            MatrixSpec::LogNormal { sigma, seed } => TrafficMatrix::log_normal(n, 1.0, sigma, seed),
        })
    }
}

/// Packet-size mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum SizeSpec {
    Fixed { bytes: u64 },
    Uniform { min: u64, max: u64 },
    Imix,
}

impl SizeSpec {
    fn build(&self) -> SizeDistribution {
        match *self {
            SizeSpec::Fixed { bytes } => {
                SizeDistribution::Fixed(rip_units::DataSize::from_bytes(bytes))
            }
            SizeSpec::Uniform { min, max } => SizeDistribution::Uniform { min, max },
            SizeSpec::Imix => SizeDistribution::Imix,
        }
    }
}

/// Arrival process.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum ProcessSpec {
    Poisson,
    Cbr,
    OnOff { mean_burst_packets: f64 },
}

impl ProcessSpec {
    fn build(&self) -> ArrivalProcess {
        match *self {
            ProcessSpec::Poisson => ArrivalProcess::Poisson,
            ProcessSpec::Cbr => ArrivalProcess::Cbr,
            ProcessSpec::OnOff { mean_burst_packets } => ArrivalProcess::OnOff {
                mean_burst_packets,
            },
        }
    }
}

/// The complete simulation specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SimSpec {
    /// The switch configuration (every §2.2/§3.2 parameter).
    router: RouterConfig,
    /// Offered load per port, 0..=1.
    load: f64,
    /// Destination mix.
    matrix: MatrixSpec,
    /// Packet sizes.
    sizes: SizeSpec,
    /// Arrival process.
    process: ProcessSpec,
    /// Flows per port.
    flows: usize,
    /// RNG seed.
    seed: u64,
    /// Simulated arrival horizon, microseconds.
    horizon_us: u64,
    /// Extra drain time after the last arrival, as a multiple of the
    /// horizon.
    drain_factor: u64,
}

impl SimSpec {
    fn example() -> Self {
        SimSpec {
            router: RouterConfig::small(),
            load: 0.8,
            matrix: MatrixSpec::Uniform,
            sizes: SizeSpec::Imix,
            process: ProcessSpec::Poisson,
            flows: 256,
            seed: 42,
            horizon_us: 100,
            drain_factor: 4,
        }
    }
}

fn run(spec: &SimSpec) -> Result<(), String> {
    spec.router.validate()?;
    if !(0.0..=1.0).contains(&spec.load) {
        return Err(format!("load {} out of [0, 1]", spec.load));
    }
    if spec.horizon_us == 0 || spec.drain_factor == 0 {
        return Err("horizon and drain factor must be positive".into());
    }
    let n = spec.router.ribbons;
    let tm = spec.matrix.build(n)?;
    let horizon = SimTime::from_ns(spec.horizon_us * 1000);
    let streams: Vec<_> = (0..n)
        .map(|port| {
            let mut g = PacketGenerator::new(
                port,
                spec.router.port_rate(),
                (spec.load * tm.row_load(port)).min(1.0),
                tm.row(port).to_vec(),
                spec.sizes.build(),
                spec.process.build(),
                spec.flows,
                rip_sim::rng::derive_seed(spec.seed, port as u64),
            )?;
            Ok(g.generate_until(horizon))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let trace = merge_streams(streams);
    println!(
        "spec: {} ports x {}, frame {}, load {:.2}, {} packets over {} us",
        n,
        spec.router.port_rate(),
        spec.router.frame_size(),
        spec.load,
        trace.len(),
        spec.horizon_us
    );
    let mut sw = HbmSwitch::new(spec.router.clone())?;
    let drain = SimTime::from_ns(spec.horizon_us * 1000 * (1 + spec.drain_factor));
    let mut r = sw.run(&trace, drain);

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["offered packets".into(), r.offered_packets.to_string()]);
    t.row(&["delivered packets".into(), r.delivered_packets.to_string()]);
    t.row(&[
        "delivery fraction".into(),
        format!("{:.3}%", r.delivery_fraction * 100.0),
    ]);
    t.row(&["delivered rate".into(), format!("{}", r.delivered_rate)]);
    t.row(&[
        "drops input / HBM-region".into(),
        format!("{} / {}", r.dropped_input, r.dropped_frames),
    ]);
    t.row(&[
        "delay mean / p99".into(),
        format!(
            "{:.2} us / {:.2} us",
            r.delays_ns.mean().unwrap_or(f64::NAN) / 1e3,
            r.delays_ns.quantile(0.99).unwrap_or(f64::NAN) / 1e3
        ),
    ]);
    t.row(&[
        "HBM utilization".into(),
        format!("{:.1}%", r.hbm_utilization * 100.0),
    ]);
    t.row(&[
        "SRAM peaks in/tail/head".into(),
        format!("{} / {} / {}", r.input_peak, r.tail_peak, r.head_peak),
    ]);
    t.row(&["padding injected".into(), format!("{}", r.padded_bytes)]);
    t.print("ripsim report");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--example-spec") {
        println!(
            "{}",
            serde_json::to_string_pretty(&SimSpec::example()).expect("spec serializes")
        );
        return;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: ripsim <spec.json> | ripsim --example-spec");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ripsim: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let spec: SimSpec = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ripsim: bad spec: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&spec) {
        eprintln!("ripsim: {e}");
        std::process::exit(1);
    }
}
